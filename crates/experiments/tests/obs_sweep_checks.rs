//! Obs-sweep checks: the CI smoke rungs (alert contract under a wall
//! budget), `--jobs`/`--shards` invariance of the record and of every
//! per-rung artifact, and the goldens for `pc-trace schema` over the
//! obs traces and `pc-obs report` over a rung's report.
//!
//! Golden files live in `ci/`; regenerate them after a deliberate
//! instrumentation change with:
//!
//! ```text
//! PC_BLESS=1 cargo test --release -p experiments --test obs_sweep_checks
//! ```

use experiments::{obs_sweep, Lab, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;
use telemetry::obs::{AlertKind, ObsReport};

/// The CI smoke: every alert rung of the quick ladder must fire its
/// expected kinds and every control rung must stay silent — `run_cell`
/// asserts both — inside a 20 s budget. (The budget only binds in
/// release builds.)
#[test]
fn obs_smoke_within_wall_budget() {
    let mut lab = Lab::new();
    // Calibration is warmed outside the timed region; the budget covers
    // the simulations themselves.
    let cals = obs_sweep::cell_calibrations(
        &mut lab,
        &obs_sweep::cell_config(Scale::Quick, &obs_sweep::SCENARIOS[0]),
    );
    let t0 = Instant::now();
    let mut fired = [0u64; AlertKind::ALL.len()];
    for scenario in obs_sweep::SCENARIOS {
        let (row, obs) = obs_sweep::run_cell(Scale::Quick, scenario, &cals);
        assert!(row.expected_fired && row.silent_ok, "{}: alert contract", scenario.name);
        assert!(row.completed > 0, "{}: the fleet must keep serving", scenario.name);
        assert!(
            row.provenance_entries > 0,
            "{}: small rungs collect provenance",
            scenario.name
        );
        assert_eq!(row.windows, obs.report.series["power_w/fleet"].total_count());
        for (i, n) in row.alerts.iter().enumerate() {
            fired[i] += n;
        }
    }
    let elapsed = t0.elapsed();
    assert!(
        fired.iter().all(|&n| n > 0),
        "the ladder must exercise every alert kind, got {fired:?}"
    );
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 20.0,
            "obs smoke rungs took {:.1}s — observability-path throughput regressed",
            elapsed.as_secs_f64()
        );
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted; if deliberate, regenerate with PC_BLESS=1 cargo test \
         --release -p experiments --test obs_sweep_checks"
    );
}

/// Runs the full quick ladder with tracing into a sandbox (pre-seeded
/// with the committed calibration caches) at the given job and shard
/// counts; returns (sandbox dir, record JSON).
fn traced_quick_ladder(jobs: usize, shards: usize) -> (PathBuf, String) {
    let tmp = std::env::temp_dir()
        .join(format!("pc-obs-golden-{jobs}-{shards}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let results = tmp.join("results");
    std::fs::create_dir_all(&results).expect("create sandbox");
    let repo_results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for entry in std::fs::read_dir(repo_results).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), results.join(&name)).expect("copy calibration cache");
        }
    }
    std::env::set_var("PC_RESULTS_DIR", &results);
    experiments::runner::set_jobs(jobs);
    experiments::runner::set_shards(shards);
    experiments::runner::set_trace_dir(Some(tmp.join("traces")));
    let record = obs_sweep::run(Scale::Quick);
    experiments::runner::set_trace_dir(None);
    experiments::runner::set_shards(1);
    assert!(record.alerts_fired, "every alert rung must fire its expected kinds");
    assert!(record.controls_silent, "every control rung must stay silent");
    let json = std::fs::read_to_string(results.join("obs_sweep.json")).expect("record file");
    (tmp, json)
}

/// The ladder is byte-identical at any `--jobs` *and* `--shards`
/// count — record, telemetry traces, `.obs.json` reports and `.folded`
/// provenance alike — and the committed goldens pin the trace schema
/// (union of every rung, exactly what CI's `schema --check` sees) and
/// the rendered report of the cap-burn rung.
#[test]
fn obs_artifacts_match_goldens_at_any_job_and_shard_count() {
    // Serialized against other golden tests via the results-dir env
    // var: each sandbox sets PC_RESULTS_DIR before running, so keep
    // both sweeps inside one test body.
    let (tmp1, serial) = traced_quick_ladder(1, 1);
    let (tmp4, fanned) = traced_quick_ladder(4, 4);
    assert_eq!(
        serial, fanned,
        "obs_sweep record must be byte-identical at any --jobs/--shards"
    );
    let dir = tmp4.join("traces/obs_sweep");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("obs_sweep trace dir")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".jsonl") || n.ends_with(".obs.json") || n.ends_with(".folded"))
        .collect();
    names.sort();
    let rungs = obs_sweep::SCENARIOS.len();
    assert_eq!(
        names.iter().filter(|n| n.ends_with(".jsonl")).count(),
        rungs,
        "one trace per rung: {names:?}"
    );
    assert_eq!(
        names.iter().filter(|n| n.ends_with(".obs.json")).count(),
        rungs,
        "one report per rung: {names:?}"
    );
    assert!(
        names.iter().filter(|n| n.ends_with(".folded")).count() >= rungs - 1,
        "provenance export per rung (controls may complete zero-energy): {names:?}"
    );
    let mut merged = String::new();
    for n in &names {
        let body = std::fs::read_to_string(dir.join(n)).expect("read artifact");
        let other =
            std::fs::read_to_string(tmp1.join("traces/obs_sweep").join(n)).expect("serial artifact");
        assert_eq!(body, other, "{n} must be byte-identical at any --jobs/--shards");
        if n.ends_with(".jsonl") {
            merged.push_str(&body);
        }
    }
    check_golden("trace_schema_obs.golden", &telemetry::summary::schema(&merged));
    // The alert events are in the trace stream, not only in the report.
    assert!(
        merged.contains("\"cat\":\"obs\""),
        "fired alerts must appear as typed telemetry events"
    );
    let report_json =
        std::fs::read_to_string(dir.join("cap-burn.obs.json")).expect("cap-burn report");
    let report = ObsReport::from_json(&report_json).expect("well-formed obs report");
    assert!(report.alert_count(AlertKind::CapBurn) > 0);
    check_golden("obs_report.golden", &report.render());
    let _ = std::fs::remove_dir_all(&tmp1);
    let _ = std::fs::remove_dir_all(&tmp4);
}
