//! Determinism under parallelism: `run_all --jobs N` must write
//! byte-identical `results/*.json` — and, with `--trace`, byte-identical
//! telemetry traces — for every N, because each experiment (and each
//! sweep cell) is an independent seeded simulation, results are
//! assembled in input order, and traces carry only simulated
//! timestamps. This test runs a representative subset (including the
//! parallelized sweeps fig05/fig08/fault_sweep/scale_sweep and the
//! intra-cell-sharded megafleet) serially and with 4 workers × 2 shards
//! into sandboxed results + trace directories and compares every
//! produced file byte for byte — one run covering both axes of
//! parallelism at once.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const SUBSET: &str = "fig02,fig05,fig08,fault_sweep,scale_sweep,megafleet";

fn repo_results() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Creates a sandbox results dir pre-seeded with the committed
/// calibration caches (so the test exercises the experiments, not the
/// §4.1 calibration procedure).
fn sandbox(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pc-parallel-identity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create sandbox");
    for entry in std::fs::read_dir(repo_results()).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), dir.join(&name)).expect("copy calibration cache");
        }
    }
    dir
}

fn run_all(results_dir: &Path, jobs: &str, shards: &str) {
    let trace_dir = results_dir.join("traces");
    let status = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--quick", "--only", SUBSET, "--jobs", jobs, "--shards", shards])
        .arg("--trace")
        .arg(&trace_dir)
        .env("PC_RESULTS_DIR", results_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn run_all");
    assert!(status.success(), "run_all --jobs {jobs} --shards {shards} failed: {status}");
}

/// All non-calibration JSON files in a directory, name → bytes.
fn records(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.ends_with(".json") && !name.starts_with("calibration-") {
            out.insert(name, std::fs::read(entry.path()).expect("read record"));
        }
    }
    out
}

/// All trace files under `<dir>/traces`, relative path → bytes.
fn traces(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let root = dir.join("traces");
    let mut out = BTreeMap::new();
    let mut stack = vec![root.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("trace dir") {
            let entry = entry.expect("dir entry");
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(&root)
                    .expect("under trace root")
                    .to_string_lossy()
                    .to_string();
                out.insert(rel, std::fs::read(&path).expect("read trace"));
            }
        }
    }
    out
}

#[test]
fn parallel_run_all_output_is_byte_identical_to_serial() {
    let serial_dir = sandbox("serial");
    let parallel_dir = sandbox("parallel");
    run_all(&serial_dir, "1", "1");
    run_all(&parallel_dir, "4", "2");
    let serial = records(&serial_dir);
    let parallel = records(&parallel_dir);
    assert!(!serial.is_empty(), "serial run produced no records");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "record sets differ"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            bytes, &parallel[name],
            "{name} differs between serial and --jobs 4 --shards 2"
        );
    }
    // The telemetry traces must be deterministic too: only simulated
    // timestamps, recorded in dispatch order within each cell's own
    // sink.
    let serial_traces = traces(&serial_dir);
    let parallel_traces = traces(&parallel_dir);
    assert!(
        serial_traces.keys().any(|k| k.starts_with("fig05/") && k.ends_with(".jsonl")),
        "no fig05 .jsonl traces produced"
    );
    assert!(
        serial_traces
            .keys()
            .any(|k| k.starts_with("fault_sweep/") && k.ends_with(".trace.json")),
        "no fault_sweep .trace.json traces produced"
    );
    assert!(
        serial_traces
            .keys()
            .any(|k| k.starts_with("scale_sweep/") && k.ends_with(".jsonl")),
        "no scale_sweep traces produced"
    );
    assert!(
        serial_traces
            .keys()
            .any(|k| k.starts_with("megafleet/") && k.ends_with(".jsonl")),
        "no megafleet traces produced"
    );
    assert_eq!(
        serial_traces.keys().collect::<Vec<_>>(),
        parallel_traces.keys().collect::<Vec<_>>(),
        "trace file sets differ"
    );
    for (name, bytes) in &serial_traces {
        assert_eq!(
            bytes, &parallel_traces[name],
            "trace {name} differs between serial and --jobs 4 --shards 2"
        );
    }
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}

#[test]
fn run_all_rejects_unknown_only_names() {
    let dir = sandbox("reject");
    let status = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--quick", "--only", "no_such_experiment"])
        .env("PC_RESULTS_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn run_all");
    assert_eq!(status.code(), Some(2), "unknown --only name must exit 2");
    let _ = std::fs::remove_dir_all(&dir);
}
