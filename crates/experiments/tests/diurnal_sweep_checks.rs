//! Diurnal-sweep checks: the CI smoke cells (with a wall-time budget),
//! `--jobs` invariance of the record, and the trace goldens for
//! `pc-trace schema` / `pc-trace summarize` on the diurnal_sweep traces.
//!
//! Golden files live in `ci/`; regenerate them after a deliberate
//! instrumentation change with:
//!
//! ```text
//! PC_BLESS=1 cargo test --release -p experiments --test diurnal_sweep_checks
//! ```

use experiments::{diurnal_sweep, Lab, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The CI smoke: the diurnal rung head-to-head (the experiment's
/// headline comparison) plus the capped diurnal-flash autoscaled cell
/// (brownout ladder + elasticity under a tight cap) must pass every
/// invariant — `run_cell` asserts them — inside a 30 s budget. (The
/// budget only binds in release builds.)
#[test]
fn diurnal_smoke_within_wall_budget() {
    let mut lab = Lab::new();
    let diurnal = diurnal_sweep::SCENARIOS
        .iter()
        .find(|s| s.name == "diurnal")
        .expect("diurnal rung");
    let flash = diurnal_sweep::SCENARIOS
        .iter()
        .find(|s| s.name == "diurnal-flash")
        .expect("diurnal-flash rung");
    assert!(flash.capped && flash.flash, "the flash rung must run capped flash crowds");
    // Calibration is warmed outside the timed region; the budget covers
    // the simulations themselves.
    let cals = diurnal_sweep::cell_calibrations(
        &mut lab,
        &diurnal_sweep::cell_config(Scale::Quick, diurnal, false),
    );
    let t0 = Instant::now();
    let fixed = diurnal_sweep::run_cell(Scale::Quick, diurnal, false, &cals);
    let auto = diurnal_sweep::run_cell(Scale::Quick, diurnal, true, &cals);
    let browned = diurnal_sweep::run_cell(Scale::Quick, flash, true, &cals);
    let elapsed = t0.elapsed();
    assert_eq!(fixed.dispatched, auto.dispatched, "both arms must face identical traffic");
    assert!(auto.scale_outs > 0 && auto.scale_ins > 0, "a diurnal day must resize the fleet");
    assert!(
        auto.j_per_req <= fixed.j_per_req * (1.0 - diurnal_sweep::DIURNAL_WIN_FLOOR),
        "autoscaled J/request {:.3} must beat fixed {:.3} by ≥{:.0}%",
        auto.j_per_req,
        fixed.j_per_req,
        diurnal_sweep::DIURNAL_WIN_FLOOR * 100.0
    );
    assert!(browned.brownout_engagements > 0, "the capped flash cell must brown out");
    assert!(browned.completed > 0, "a browned-out fleet must keep serving");
    for r in [&fixed, &auto, &browned] {
        assert!(r.requests_conserved && r.energy_conserved && r.cap_ok);
    }
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 30.0,
            "diurnal smoke cells took {:.1}s — elasticity-path throughput regressed",
            elapsed.as_secs_f64()
        );
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted; if deliberate, regenerate with PC_BLESS=1 cargo test \
         --release -p experiments --test diurnal_sweep_checks"
    );
}

/// Runs the full quick ladder with tracing into a sandbox (pre-seeded
/// with the committed calibration caches) at the given job count and
/// returns (sandbox dir, record JSON).
fn traced_quick_ladder(jobs: usize) -> (PathBuf, String) {
    let tmp =
        std::env::temp_dir().join(format!("pc-diurnal-golden-{}-{jobs}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let results = tmp.join("results");
    std::fs::create_dir_all(&results).expect("create sandbox");
    let repo_results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for entry in std::fs::read_dir(repo_results).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), results.join(&name)).expect("copy calibration cache");
        }
    }
    std::env::set_var("PC_RESULTS_DIR", &results);
    experiments::runner::set_jobs(jobs);
    experiments::runner::set_trace_dir(Some(tmp.join("traces")));
    let record = diurnal_sweep::run(Scale::Quick);
    experiments::runner::set_trace_dir(None);
    assert!(record.requests_conserved, "request conservation must be exact");
    assert!(record.energy_conserved, "energy must balance modulo loss windows");
    assert!(record.caps_held, "capped cells must hold their cap");
    assert!(record.brownouts_fired, "capped rungs must engage the brownout ladder");
    assert!(record.upgrades_completed, "the upgrade rung must finish its swaps");
    assert!(record.diurnal_win >= diurnal_sweep::DIURNAL_WIN_FLOOR);
    let json = std::fs::read_to_string(results.join("diurnal_sweep.json")).expect("record file");
    (tmp, json)
}

/// The ladder is byte-identical at any `--jobs` count, and its traces
/// match the committed goldens: the schema golden covers the union of
/// every cell (exactly what CI's `schema --check` sees), the summarize
/// golden pins the capped flash-crowd autoscaled cell — the one with
/// resize, brownout and admission events all live at once.
#[test]
fn diurnal_traces_match_goldens_at_any_job_count() {
    let (tmp1, serial) = traced_quick_ladder(1);
    let (tmp4, fanned) = traced_quick_ladder(4);
    assert_eq!(serial, fanned, "diurnal_sweep record must be byte-identical at any --jobs");
    let dir = tmp4.join("traces/diurnal_sweep");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("diurnal_sweep trace dir")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    assert_eq!(
        names.len(),
        2 * diurnal_sweep::SCENARIOS.len(),
        "one trace per arm per rung: {names:?}"
    );
    let mut merged = String::new();
    for n in &names {
        let body = std::fs::read_to_string(dir.join(n)).expect("read trace");
        let other = std::fs::read_to_string(tmp1.join("traces/diurnal_sweep").join(n))
            .expect("read serial trace");
        assert_eq!(body, other, "{n} must be byte-identical at any --jobs");
        merged.push_str(&body);
    }
    check_golden("trace_schema_diurnal.golden", &telemetry::summary::schema(&merged));
    let flash = std::fs::read_to_string(dir.join("diurnal-flash-autoscaled.jsonl"))
        .expect("diurnal-flash-autoscaled trace");
    let s = telemetry::summary::summarize(&flash);
    assert_eq!(s.unparsed_lines, 0, "trace must be well-formed");
    check_golden("trace_summarize_diurnal.golden", &telemetry::summary::render_summary(&s));
    let _ = std::fs::remove_dir_all(&tmp1);
    let _ = std::fs::remove_dir_all(&tmp4);
}
