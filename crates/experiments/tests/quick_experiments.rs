//! Quick-scale runs of the heavier experiments: each must produce the
//! paper's qualitative outcome even at reduced duration.

use experiments::Scale;

#[test]
fn fig2_alignment_recovers_both_meter_delays() {
    let record = experiments::fig02::run(Scale::Quick);
    for scan in &record.scans {
        let err = (scan.estimated_delay_ms - scan.true_delay_ms).abs();
        assert!(
            err <= scan.true_delay_ms.max(1.0) * 0.25 + 1.0,
            "{}: estimated {} vs true {}",
            scan.meter,
            scan.estimated_delay_ms,
            scan.true_delay_ms
        );
        assert!(scan.peak_score > 0.5, "{} peak score {}", scan.meter, scan.peak_score);
        assert!(!scan.curve.is_empty());
    }
}

#[test]
fn fig9_background_share_is_substantial() {
    let record = experiments::fig09::run(Scale::Quick);
    let peak = &record.cells[0];
    assert!(
        (0.12..0.55).contains(&peak.background_share),
        "background share {:.2}",
        peak.background_share
    );
    // Modeled total tracks the measurement.
    let modeled = peak.requests_w + peak.background_w;
    let err = (modeled - peak.measured_w).abs() / peak.measured_w;
    assert!(err < 0.15, "modeled {modeled:.1} vs measured {:.1}", peak.measured_w);
}

#[test]
fn fig13_rsa_prefers_the_new_machine_most() {
    let record = experiments::fig13::run(Scale::Quick);
    let rsa = record
        .rows
        .iter()
        .find(|r| r.workload == "RSA-crypto")
        .expect("RSA row");
    for row in &record.rows {
        assert!(
            row.ratio >= rsa.ratio - 1e-9,
            "{} ratio {:.2} below RSA {:.2}",
            row.workload,
            row.ratio,
            rsa.ratio
        );
    }
    assert!(rsa.ratio < 0.35, "RSA ratio {:.2}", rsa.ratio);
}

#[test]
fn coefficients_recover_the_chipshare_term() {
    let record = experiments::coefficients::run(Scale::Quick);
    let chipshare = record
        .rows
        .iter()
        .find(|(name, ..)| name == "chipshare")
        .expect("chipshare row");
    // The ground truth's 5.6 W maintenance power must be recovered.
    assert!(
        (4.0..7.5).contains(&chipshare.3),
        "chipshare C·M_max {:.1} W",
        chipshare.3
    );
    assert!((record.idle_w - 26.1).abs() < 1.0, "idle {:.1} W", record.idle_w);
}
