//! Megafleet checks: the CI smoke cell (100 nodes × 10⁵ requests under
//! a wall budget), shard invariance of the full experiment record, and
//! the trace goldens for `pc-trace summarize` / `pc-trace schema` on
//! the megafleet traces.
//!
//! Golden files live in `ci/`; regenerate them after a deliberate
//! instrumentation change with:
//!
//! ```text
//! PC_BLESS=1 cargo test --release -p experiments --test megafleet_checks
//! ```

use cluster::{run_cluster, SimpleBalance};
use experiments::{megafleet, Lab, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The CI smoke cell is exactly the issue's smoke grid point: 100 nodes
/// serving 10⁵ requests, conservation exact, inside a 30 s wall budget.
/// (The budget only binds in release builds — CI runs this under
/// `cargo test --release`.)
#[test]
fn smoke_cell_100_nodes_within_wall_budget() {
    // Calibration is warmed outside the timed region; the budget covers
    // the simulation itself.
    let mut lab = Lab::new();
    let cfg = megafleet::cell_config(100, 100_000);
    let cals = megafleet::cell_calibrations(&mut lab, &cfg);
    let t0 = Instant::now();
    let outcome = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    let elapsed = t0.elapsed();
    megafleet::assert_cell_conserved("megafleet smoke 100x100000", &outcome);
    assert!(
        outcome.dispatched >= 100_000,
        "cell must offer its target load, got {}",
        outcome.dispatched
    );
    assert_eq!(outcome.dropped, 0, "healthy cell must not drop requests");
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 30.0,
            "100-node smoke cell took {:.1}s — dispatcher throughput regressed",
            elapsed.as_secs_f64()
        );
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted; if deliberate, regenerate with PC_BLESS=1 cargo test \
         --release -p experiments --test megafleet_checks"
    );
}

/// Runs the quick megafleet sweep with tracing into a sandbox
/// (pre-seeded with the committed calibration caches) at the given
/// shard count; returns the sandbox root.
fn traced_quick_sweep(shards: usize) -> PathBuf {
    let tmp = std::env::temp_dir()
        .join(format!("pc-megafleet-golden-{shards}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let results = tmp.join("results");
    std::fs::create_dir_all(&results).expect("create sandbox");
    let repo_results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for entry in std::fs::read_dir(repo_results).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), results.join(&name)).expect("copy calibration cache");
        }
    }
    std::env::set_var("PC_RESULTS_DIR", &results);
    experiments::runner::set_shards(shards);
    experiments::runner::set_trace_dir(Some(tmp.join("traces")));
    let record = megafleet::run(Scale::Quick);
    experiments::runner::set_trace_dir(None);
    experiments::runner::set_shards(1);
    assert!(record.conserved, "megafleet cells must conserve");
    assert!(record.largest_dispatched >= 100_000);
    tmp
}

/// The full experiment — records and telemetry traces — must be
/// byte-identical whether cells run serially or sharded 4 ways, and the
/// trace CLI output is pinned by goldens over the traced (smallest)
/// cell: schema (exactly what CI's `schema --check` sees) and
/// summarize.
#[test]
fn megafleet_record_and_traces_shard_invariant_and_match_goldens() {
    // Serialized against other golden tests via the results-dir env var:
    // each sandbox sets PC_RESULTS_DIR before running, so keep the two
    // sweeps inside one test body.
    let serial = traced_quick_sweep(1);
    let sharded = traced_quick_sweep(4);
    let record = |root: &Path| {
        std::fs::read(root.join("results/megafleet.json")).expect("megafleet record")
    };
    assert_eq!(
        record(&serial),
        record(&sharded),
        "megafleet.json differs between --shards 1 and --shards 4"
    );
    let trace_dir = |root: &Path| root.join("traces/megafleet");
    let mut names: Vec<String> = std::fs::read_dir(trace_dir(&serial))
        .expect("megafleet trace dir")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    // Only the grid's smallest cell is traced (a recording sink holds
    // every event in memory; the megacells would emit gigabytes).
    assert_eq!(names.len(), 1, "expected the smallest cell's trace, got {names:?}");
    let mut merged = String::new();
    for n in &names {
        let a = std::fs::read_to_string(trace_dir(&serial).join(n)).expect("serial trace");
        let b = std::fs::read_to_string(trace_dir(&sharded).join(n)).expect("sharded trace");
        assert_eq!(a, b, "trace {n} differs between --shards 1 and --shards 4");
        merged.push_str(&a);
    }
    check_golden("trace_schema_megafleet.golden", &telemetry::summary::schema(&merged));
    let smallest =
        std::fs::read_to_string(trace_dir(&serial).join(&names[0])).expect("smallest cell trace");
    let s = telemetry::summary::summarize(&smallest);
    assert_eq!(s.unparsed_lines, 0, "trace must be well-formed");
    check_golden(
        "trace_summarize_megafleet.golden",
        &telemetry::summary::render_summary(&s),
    );
    let _ = std::fs::remove_dir_all(&serial);
    let _ = std::fs::remove_dir_all(&sharded);
}
