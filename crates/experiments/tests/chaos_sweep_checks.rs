//! Chaos-sweep checks: the CI smoke cells (with a wall-time budget),
//! `--jobs` invariance of the record, and the trace goldens for
//! `pc-trace schema` / `pc-trace summarize` on the chaos_sweep traces.
//!
//! Golden files live in `ci/`; regenerate them after a deliberate
//! instrumentation change with:
//!
//! ```text
//! PC_BLESS=1 cargo test --release -p experiments --test chaos_sweep_checks
//! ```

use experiments::{chaos_sweep, Lab, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The CI smoke: the heaviest rungs of the ladder (high crash rate, and
/// the simultaneous crash + slowdown + tag-fault mix) must pass all
/// three invariants — `run_cell` asserts them — inside a 20 s budget.
/// (The budget only binds in release builds.)
#[test]
fn chaos_smoke_within_wall_budget() {
    let mut lab = Lab::new();
    let crash_high = chaos_sweep::SCENARIOS
        .iter()
        .find(|s| s.name == "crash-high")
        .expect("crash-high rung");
    let chaos_full = chaos_sweep::SCENARIOS
        .iter()
        .find(|s| s.name == "chaos-full")
        .expect("chaos-full rung");
    assert!(
        chaos_full.simultaneous(),
        "the chaos-full rung must mix crash, slowdown and tag faults in one cell"
    );
    // Calibration is warmed outside the timed region; the budget covers
    // the simulations themselves.
    let cals = chaos_sweep::cell_calibrations(
        &mut lab,
        &chaos_sweep::cell_config(Scale::Quick, crash_high),
    );
    let t0 = Instant::now();
    let high = chaos_sweep::run_cell(Scale::Quick, crash_high, &cals);
    let full = chaos_sweep::run_cell(Scale::Quick, chaos_full, &cals);
    let elapsed = t0.elapsed();
    for r in [&high, &full] {
        assert!(r.crashes > 0, "{}: the crash clock must fire", r.scenario);
        assert!(r.checkpoints > 0, "{}: crashes imply journaling", r.scenario);
        assert!(r.completed > 0, "{}: the fleet must keep serving", r.scenario);
        assert!(r.requests_conserved && r.energy_conserved && r.cap_ok);
    }
    assert!(full.tag_faults > 0, "chaos-full must actually corrupt tags");
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 20.0,
            "chaos smoke cells took {:.1}s — recovery-path throughput regressed",
            elapsed.as_secs_f64()
        );
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted; if deliberate, regenerate with PC_BLESS=1 cargo test \
         --release -p experiments --test chaos_sweep_checks"
    );
}

/// Runs the full quick ladder with tracing into a sandbox (pre-seeded
/// with the committed calibration caches) at the given job count and
/// returns (sandbox dir, record JSON).
fn traced_quick_ladder(jobs: usize) -> (PathBuf, String) {
    let tmp = std::env::temp_dir().join(format!("pc-chaos-golden-{}-{jobs}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let results = tmp.join("results");
    std::fs::create_dir_all(&results).expect("create sandbox");
    let repo_results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for entry in std::fs::read_dir(repo_results).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), results.join(&name)).expect("copy calibration cache");
        }
    }
    std::env::set_var("PC_RESULTS_DIR", &results);
    experiments::runner::set_jobs(jobs);
    experiments::runner::set_trace_dir(Some(tmp.join("traces")));
    let record = chaos_sweep::run(Scale::Quick);
    experiments::runner::set_trace_dir(None);
    assert!(record.requests_conserved, "request conservation must be exact");
    assert!(record.energy_conserved, "energy must balance modulo loss windows");
    assert!(record.caps_held, "capped cells must hold their cap");
    assert!(record.faults_fired, "every rung must exercise its fault mix");
    let json = std::fs::read_to_string(results.join("chaos_sweep.json")).expect("record file");
    (tmp, json)
}

/// The ladder is byte-identical at any `--jobs` count, and its traces
/// match the committed goldens: the schema golden covers the union of
/// every rung (exactly what CI's `schema --check` sees), the summarize
/// golden pins the simultaneous-fault rung.
#[test]
fn chaos_traces_match_goldens_at_any_job_count() {
    let (tmp1, serial) = traced_quick_ladder(1);
    let (tmp4, fanned) = traced_quick_ladder(4);
    assert_eq!(serial, fanned, "chaos_sweep record must be byte-identical at any --jobs");
    let dir = tmp4.join("traces/chaos_sweep");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("chaos_sweep trace dir")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    assert_eq!(names.len(), chaos_sweep::SCENARIOS.len(), "one trace per rung: {names:?}");
    let mut merged = String::new();
    for n in &names {
        let body = std::fs::read_to_string(dir.join(n)).expect("read trace");
        let other = std::fs::read_to_string(tmp1.join("traces/chaos_sweep").join(n))
            .expect("read serial trace");
        assert_eq!(body, other, "{n} must be byte-identical at any --jobs");
        merged.push_str(&body);
    }
    check_golden("trace_schema_chaos.golden", &telemetry::summary::schema(&merged));
    let full = std::fs::read_to_string(dir.join("chaos-full.jsonl")).expect("chaos-full trace");
    let s = telemetry::summary::summarize(&full);
    assert_eq!(s.unparsed_lines, 0, "trace must be well-formed");
    check_golden("trace_summarize_chaos.golden", &telemetry::summary::render_summary(&s));
    let _ = std::fs::remove_dir_all(&tmp1);
    let _ = std::fs::remove_dir_all(&tmp4);
}
