//! Sched-sweep checks: the CI smoke cells (with a wall-time budget),
//! `--jobs`/`--shards` invariance of the record and traces, and the
//! trace goldens for `pc-trace schema` / `pc-trace summarize` on the
//! sched_sweep traces.
//!
//! Golden files live in `ci/`; regenerate them after a deliberate
//! instrumentation change with:
//!
//! ```text
//! PC_BLESS=1 cargo test --release -p experiments --test sched_sweep_checks
//! ```

use experiments::{sched_sweep, Lab, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;
use workloads::WorkloadKind;

/// The CI smoke: one RSA-crypto attribution cell per scheduler at quick
/// scale must conserve energy and keep the non-RR error within the
/// sweep's bound, inside a 20 s budget. (The budget only binds in
/// release builds.)
#[test]
fn sched_smoke_within_wall_budget() {
    let mut lab = Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let secs = Scale::Quick.run_secs();
    let t0 = Instant::now();
    let cells: Vec<_> = sched_sweep::swept_kinds()
        .into_iter()
        .map(|kind| {
            sched_sweep::attribution_cell(
                kind,
                "sandybridge",
                spec.clone(),
                cal.clone(),
                WorkloadKind::RsaCrypto,
                secs,
            )
        })
        .collect();
    let elapsed = t0.elapsed();
    let rr = cells.iter().find(|c| c.sched == "rr").expect("rr cell");
    assert!(rr.picks > 0, "the rr scheduler must dispatch work");
    let bound = (2.0 * rr.error).max(sched_sweep::ERROR_FLOOR);
    for c in &cells {
        assert!(
            c.error <= sched_sweep::CLEAN_TOL,
            "{}: energy not conserved ({:.1}%)",
            c.sched,
            c.error * 100.0
        );
        assert!(
            c.error <= bound,
            "{}: attribution error {:.2}% exceeds the 2x-rr bound {:.2}%",
            c.sched,
            c.error * 100.0,
            bound * 100.0
        );
    }
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 20.0,
            "sched smoke cells took {:.1}s — scheduler dispatch overhead regressed",
            elapsed.as_secs_f64()
        );
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted; if deliberate, regenerate with PC_BLESS=1 cargo test \
         --release -p experiments --test sched_sweep_checks"
    );
}

/// Runs the full quick sweep with tracing into a sandbox (pre-seeded
/// with the committed calibration caches) at the given job and shard
/// counts and returns (sandbox dir, record JSON).
fn traced_quick_sweep(jobs: usize, shards: usize) -> (PathBuf, String) {
    let tmp = std::env::temp_dir()
        .join(format!("pc-sched-golden-{}-{jobs}-{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let results = tmp.join("results");
    std::fs::create_dir_all(&results).expect("create sandbox");
    let repo_results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for entry in std::fs::read_dir(repo_results).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), results.join(&name)).expect("copy calibration cache");
        }
    }
    std::env::set_var("PC_RESULTS_DIR", &results);
    experiments::runner::set_jobs(jobs);
    experiments::runner::set_shards(shards);
    experiments::runner::set_trace_dir(Some(tmp.join("traces")));
    let record = sched_sweep::run(Scale::Quick);
    experiments::runner::set_trace_dir(None);
    experiments::runner::set_shards(1);
    assert!(record.attribution_bounded, "attribution bound must hold on the quick sweep");
    assert!(record.conserved, "conservation must hold under every scheduler");
    assert!(record.caps_held, "conditioning must hold under every scheduler");
    assert!(record.ordering_invariant, "fig14 ordering must be scheduler-invariant");
    let json = std::fs::read_to_string(results.join("sched_sweep.json")).expect("record file");
    (tmp, json)
}

/// The sweep is byte-identical at any `--jobs`/`--shards` combination,
/// and its traces match the committed goldens: the schema golden covers
/// the union of every attribution cell (exactly what CI's
/// `schema --check` sees), the summarize golden pins the priority
/// scheduler's Stress cell (the one exercising starvation boosts).
#[test]
fn sched_traces_match_goldens_at_any_job_count() {
    let (tmp1, serial) = traced_quick_sweep(1, 1);
    let (tmp4, fanned) = traced_quick_sweep(4, 2);
    assert_eq!(
        serial, fanned,
        "sched_sweep record must be byte-identical at any --jobs/--shards"
    );
    let dir = tmp4.join("traces/sched_sweep");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("sched_sweep trace dir")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    assert_eq!(
        names.len(),
        sched_sweep::swept_kinds().len() * WorkloadKind::ALL.len(),
        "one trace per (scheduler × workload): {names:?}"
    );
    let mut merged = String::new();
    for n in &names {
        let body = std::fs::read_to_string(dir.join(n)).expect("read trace");
        let other = std::fs::read_to_string(tmp1.join("traces/sched_sweep").join(n))
            .expect("read serial trace");
        assert_eq!(body, other, "{n} must be byte-identical at any --jobs/--shards");
        merged.push_str(&body);
    }
    check_golden("trace_schema_sched.golden", &telemetry::summary::schema(&merged));
    let full = std::fs::read_to_string(dir.join("priority-sandybridge-stress.jsonl"))
        .expect("priority-sandybridge-stress trace");
    let s = telemetry::summary::summarize(&full);
    assert_eq!(s.unparsed_lines, 0, "trace must be well-formed");
    check_golden("trace_summarize_sched.golden", &telemetry::summary::render_summary(&s));
    let _ = std::fs::remove_dir_all(&tmp1);
    let _ = std::fs::remove_dir_all(&tmp4);
}
