//! Drift-sweep checks: the CI smoke cells (with a wall-time budget),
//! `--jobs` invariance of the record, and the trace goldens for
//! `pc-trace schema` / `pc-trace summarize` on the drift_sweep traces.
//!
//! Golden files live in `ci/`; regenerate them after a deliberate
//! instrumentation change with:
//!
//! ```text
//! PC_BLESS=1 cargo test --release -p experiments --test drift_sweep_checks
//! ```

use experiments::{drift_sweep, Lab, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The CI smoke: the heaviest rung (DVFS square + rolling generation
/// swaps + meter dropout) runs both metering engines at quick scale and
/// must show the headline result — the bank recovers within bound after
/// every edge while the single model stays diverged — inside a 20 s
/// budget. (The budget only binds in release builds.)
#[test]
fn drift_smoke_within_wall_budget() {
    let mut lab = Lab::new();
    let chaos = drift_sweep::SCENARIOS
        .iter()
        .find(|s| s.name == "chaos-combined")
        .expect("chaos-combined rung");
    assert!(
        chaos.dvfs && chaos.generation && chaos.meter_faults,
        "the chaos-combined rung must mix DVFS, generation and meter faults"
    );
    // Calibration is warmed outside the timed region; the budget covers
    // the simulations themselves.
    let cal = lab.calibration("sandybridge");
    let t0 = Instant::now();
    let mut single = drift_sweep::run_cell(Scale::Quick, chaos, false, &cal);
    let mut bank = drift_sweep::run_cell(Scale::Quick, chaos, true, &cal);
    let elapsed = t0.elapsed();
    // Mirror of the sweep's rung analysis: one shared bound from the
    // pooled pre-shift steady error.
    let steady = 0.5 * (single.steady_err + bank.steady_err);
    let bound =
        (drift_sweep::RECOVERY_FACTOR * steady).max(drift_sweep::ERR_FLOOR);
    drift_sweep::apply_bound(&mut single, bound);
    drift_sweep::apply_bound(&mut bank, bound);
    assert!(!bank.edge_buckets.is_empty(), "the rung must shift regimes");
    assert!(
        bank.recovered_all,
        "bank must recover after every edge: {:?}",
        bank.recovery_buckets
    );
    assert!(
        single.post_err >= drift_sweep::DIVERGE_FACTOR * bank.post_err,
        "single model must stay diverged: {:.3} vs bank {:.3}",
        single.post_err,
        bank.post_err
    );
    assert!(bank.drift_events > 0, "regime shifts must trip the CUSUM");
    assert!(bank.model_switches > 0, "regime shifts must switch slots");
    assert!(bank.faults_injected > 0, "the meter-dropout fault must fire");
    assert!(bank.completions > 0, "the workload must keep serving");
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 20.0,
            "drift smoke cells took {:.1}s — metering-path throughput regressed",
            elapsed.as_secs_f64()
        );
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted; if deliberate, regenerate with PC_BLESS=1 cargo test \
         --release -p experiments --test drift_sweep_checks"
    );
}

/// Runs the full quick ladder with tracing into a sandbox (pre-seeded
/// with the committed calibration caches) at the given job count and
/// returns (sandbox dir, record JSON).
fn traced_quick_ladder(jobs: usize) -> (PathBuf, String) {
    let tmp = std::env::temp_dir().join(format!("pc-drift-golden-{}-{jobs}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let results = tmp.join("results");
    std::fs::create_dir_all(&results).expect("create sandbox");
    let repo_results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for entry in std::fs::read_dir(repo_results).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), results.join(&name)).expect("copy calibration cache");
        }
    }
    std::env::set_var("PC_RESULTS_DIR", &results);
    experiments::runner::set_jobs(jobs);
    experiments::runner::set_trace_dir(Some(tmp.join("traces")));
    let record = drift_sweep::run(Scale::Quick);
    experiments::runner::set_trace_dir(None);
    assert!(record.bank_recovered_all, "bank recovery must hold on the quick ladder");
    assert!(record.single_stayed_diverged, "baseline divergence must hold");
    assert!(record.bank_steady_ok, "the bank must cost nothing at steady state");
    let json = std::fs::read_to_string(results.join("drift_sweep.json")).expect("record file");
    (tmp, json)
}

/// The ladder is byte-identical at any `--jobs` count, and its traces
/// match the committed goldens: the schema golden covers the union of
/// every (rung × engine) cell (exactly what CI's `schema --check`
/// sees), the summarize golden pins the banked chaos-combined cell.
#[test]
fn drift_traces_match_goldens_at_any_job_count() {
    let (tmp1, serial) = traced_quick_ladder(1);
    let (tmp4, fanned) = traced_quick_ladder(4);
    assert_eq!(serial, fanned, "drift_sweep record must be byte-identical at any --jobs");
    let dir = tmp4.join("traces/drift_sweep");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("drift_sweep trace dir")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    assert_eq!(
        names.len(),
        drift_sweep::SCENARIOS.len() * 2,
        "one trace per (rung × engine): {names:?}"
    );
    let mut merged = String::new();
    for n in &names {
        let body = std::fs::read_to_string(dir.join(n)).expect("read trace");
        let other = std::fs::read_to_string(tmp1.join("traces/drift_sweep").join(n))
            .expect("read serial trace");
        assert_eq!(body, other, "{n} must be byte-identical at any --jobs");
        merged.push_str(&body);
    }
    check_golden("trace_schema_drift.golden", &telemetry::summary::schema(&merged));
    let full = std::fs::read_to_string(dir.join("chaos-combined-bank.jsonl"))
        .expect("chaos-combined-bank trace");
    let s = telemetry::summary::summarize(&full);
    assert_eq!(s.unparsed_lines, 0, "trace must be well-formed");
    check_golden("trace_summarize_drift.golden", &telemetry::summary::render_summary(&s));
    let _ = std::fs::remove_dir_all(&tmp1);
    let _ = std::fs::remove_dir_all(&tmp4);
}
