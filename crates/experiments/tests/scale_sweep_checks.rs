//! Scale-sweep checks: the CI smoke cells (with a wall-time budget) and
//! the trace goldens for `pc-trace summarize` / `pc-trace schema` on the
//! scale_sweep traces.
//!
//! Golden files live in `ci/`; regenerate them after a deliberate
//! instrumentation change with:
//!
//! ```text
//! PC_BLESS=1 cargo test --release -p experiments --test scale_sweep_checks
//! ```

use cluster::{run_pipeline, ClusterOutcome, DistributionPolicy, SimpleBalance};
use experiments::{scale_sweep, Lab, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn run_cell(nodes: usize) -> ClusterOutcome {
    let mut lab = Lab::new();
    let cfg = scale_sweep::cell_config(Scale::Quick, nodes, None);
    let cals = scale_sweep::cell_calibrations(&mut lab, &cfg);
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    run_pipeline(&mut policies, &cfg, &cals)
}

/// The smallest sweep cells must serve their load and finish fast: the
/// tick-batched dispatcher keeps per-request work independent of fleet
/// size, so even the 16-node cell stays comfortably inside the budget.
/// (The budget only binds in release builds — CI runs this under
/// `cargo test --release`.)
#[test]
fn smallest_cell_smoke_within_wall_budget() {
    // Calibration is warmed outside the timed region; the budget covers
    // the simulation itself.
    let mut lab = Lab::new();
    for name in ["sandybridge", "westmere", "woodcrest"] {
        let _ = lab.calibration(name);
    }
    let t0 = Instant::now();
    let small = run_cell(4);
    let large = run_cell(16);
    let elapsed = t0.elapsed();
    for o in [&small, &large] {
        assert!(o.completed > 1_000, "cell must serve load, got {}", o.completed);
        assert_eq!(o.dispatched, o.completed as u64 + o.dropped + o.in_flight);
        assert_eq!(o.dropped, 0, "healthy cells must not drop requests");
        // Decisions scale with requests (one per pipeline stage), not
        // with node count — the batched-dispatch design point. Requests
        // still in flight at the end have made only part of their three
        // decisions.
        assert!(o.decisions >= o.completed as u64 * 3);
        assert!(o.decisions <= o.dispatched * 3);
    }
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_secs_f64() < 15.0,
            "4- and 16-node quick cells took {:.1}s — dispatcher throughput regressed",
            elapsed.as_secs_f64()
        );
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted; if deliberate, regenerate with PC_BLESS=1 cargo test \
         --release -p experiments --test scale_sweep_checks"
    );
}

/// Runs the full quick sweep with tracing into a sandbox (pre-seeded
/// with the committed calibration caches) and returns the trace dir.
fn traced_quick_sweep() -> PathBuf {
    let tmp = std::env::temp_dir().join(format!("pc-scale-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let results = tmp.join("results");
    std::fs::create_dir_all(&results).expect("create sandbox");
    let repo_results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for entry in std::fs::read_dir(repo_results).expect("repo results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("calibration-") && name.ends_with(".json") {
            std::fs::copy(entry.path(), results.join(&name)).expect("copy calibration cache");
        }
    }
    std::env::set_var("PC_RESULTS_DIR", &results);
    experiments::runner::set_trace_dir(Some(tmp.join("traces")));
    let record = scale_sweep::run(Scale::Quick);
    experiments::runner::set_trace_dir(None);
    assert!(record.ordering_at_scale, "fig14 ordering must hold at scale");
    assert!(record.caps_held, "cluster power caps must hold");
    tmp
}

/// `pc-trace summarize` and `pc-trace schema` output on the scale_sweep
/// traces is pinned by golden files: the schema golden covers the union
/// of every quick-sweep cell (exactly what CI's `schema --check` sees),
/// the summarize golden pins the smallest cell. The CLI is a thin
/// wrapper over `telemetry::summary`, which this exercises directly; CI
/// additionally runs the real binary against the same schema golden.
#[test]
fn scale_sweep_traces_match_goldens() {
    let tmp = traced_quick_sweep();
    let dir = tmp.join("traces/scale_sweep");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("scale_sweep trace dir")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    assert!(names.len() >= 9, "expected a trace per sweep cell, got {names:?}");
    let mut merged = String::new();
    for n in &names {
        merged.push_str(&std::fs::read_to_string(dir.join(n)).expect("read trace"));
    }
    check_golden("trace_schema_scale.golden", &telemetry::summary::schema(&merged));
    let smallest = std::fs::read_to_string(dir.join("04nodes-simple-uncapped.jsonl"))
        .expect("smallest cell trace");
    let s = telemetry::summary::summarize(&smallest);
    assert_eq!(s.unparsed_lines, 0, "trace must be well-formed");
    check_golden(
        "trace_summarize_scale.golden",
        &telemetry::summary::render_summary(&s),
    );
    let _ = std::fs::remove_dir_all(&tmp);
}
