//! Summary statistics and error metrics.
//!
//! The Fig. 8 validation compares aggregate profiled request power against
//! measured system power with a relative-error metric; Fig. 10 does the same
//! for predictions. [`relative_error`] implements exactly the paper's
//! definition. [`Summary`] collects the usual running aggregates used in the
//! experiment tables.

/// The paper's validation error metric:
/// `|estimate − reference| / reference`.
///
/// Returns `f64::INFINITY` when `reference` is zero but `estimate` is not,
/// and `0.0` when both are zero.
///
/// # Example
///
/// ```
/// use analysis::stats::relative_error;
///
/// assert_eq!(relative_error(11.0, 10.0), 0.1);
/// assert_eq!(relative_error(9.0, 10.0), 0.1);
/// ```
pub fn relative_error(estimate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - reference).abs() / reference.abs()
    }
}

/// Streaming summary statistics (count, mean, variance via Welford, min,
/// max, sum).
///
/// # Example
///
/// ```
/// use analysis::stats::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// The `p`-quantile (0 ≤ p ≤ 1) of a sample set, by linear interpolation on
/// a sorted copy. Returns `None` for an empty input.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or any value is NaN.
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "quantile fraction out of range: {p}");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_matches_paper_definition() {
        assert!((relative_error(29.0, 25.0) - 0.16).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn summary_basic_moments() {
        let s: Summary = (1..=5).map(|i| i as f64).collect();
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.sum(), 15.0);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::NEG_INFINITY);
        s.record(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_single_stream() {
        let all: Summary = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut left: Summary = (0..37).map(|i| (i as f64).sin() * 10.0).collect();
        let right: Summary = (37..100).map(|i| (i as f64).sin() * 10.0).collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_into_empty() {
        let mut a = Summary::new();
        let b: Summary = [4.0, 6.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 5.0);
        let mut c: Summary = [1.0].into_iter().collect();
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.mean(), 2.0);
    }
}
