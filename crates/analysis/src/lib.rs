//! Numerical building blocks for the Power Containers reproduction.
//!
//! The paper's facility needs a small amount of numerics, all implemented
//! here from scratch:
//!
//! * [`linreg`] — least-squares linear regression via normal equations and
//!   partial-pivot Gaussian elimination (used for offline calibration and
//!   the §3.2 online recalibration).
//! * [`xcorr`] — the Eq. 4 cross-correlation used to align delayed power
//!   measurements with model estimates.
//! * [`hist`] — fixed-bin histograms for the Fig. 6/7 request power and
//!   energy distributions.
//! * [`stats`] — summary statistics and the relative-error metric used by
//!   the Fig. 8/10 validations.
//!
//! # Example
//!
//! ```
//! use analysis::linreg::LeastSquares;
//!
//! // Fit y = 2 + 3x from noisy-free samples.
//! let mut ls = LeastSquares::new(2);
//! for x in 0..10 {
//!     let x = x as f64;
//!     ls.add_sample(&[1.0, x], 2.0 + 3.0 * x, 1.0);
//! }
//! let beta = ls.solve().unwrap();
//! assert!((beta[0] - 2.0).abs() < 1e-9);
//! assert!((beta[1] - 3.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod linreg;
pub mod stats;
pub mod xcorr;
