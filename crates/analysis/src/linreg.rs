//! Least-squares linear regression.
//!
//! Both the offline model calibration (§4.1) and the online recalibration
//! (§3.2) of the paper fit the coefficients of a linear power model by
//! minimizing squared error. We accumulate the normal equations
//! `XᵀWX β = XᵀWy` incrementally — so online recalibration can stream new
//! samples in — and solve the small dense system with partial-pivot
//! Gaussian elimination.

use std::fmt;

/// Error produced when a least-squares system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Fewer (weighted) samples than coefficients were provided.
    Underdetermined {
        /// Number of samples accumulated so far.
        samples: usize,
        /// Number of coefficients requested.
        coefficients: usize,
    },
    /// The normal-equation matrix is singular (e.g. a feature is constant
    /// zero or two features are perfectly collinear) and no ridge term was
    /// configured.
    Singular,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Underdetermined { samples, coefficients } => write!(
                f,
                "underdetermined system: {samples} samples for {coefficients} coefficients"
            ),
            SolveError::Singular => write!(f, "singular normal-equation matrix"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Incremental weighted least-squares accumulator.
///
/// Samples are `(features, target, weight)` triples. The solver returns the
/// coefficient vector `β` minimizing `Σ wᵢ (yᵢ − xᵢ·β)²`.
///
/// # Example
///
/// ```
/// use analysis::linreg::LeastSquares;
///
/// let mut ls = LeastSquares::new(1);
/// ls.add_sample(&[2.0], 4.0, 1.0);
/// ls.add_sample(&[3.0], 6.0, 1.0);
/// assert!((ls.solve().unwrap()[0] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LeastSquares {
    dim: usize,
    /// Upper-triangular-agnostic dense XᵀWX, row-major `dim × dim`.
    xtx: Vec<f64>,
    /// XᵀWy.
    xty: Vec<f64>,
    samples: usize,
    ridge: f64,
}

impl LeastSquares {
    /// Creates an accumulator for `dim` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> LeastSquares {
        assert!(dim > 0, "dimension must be positive");
        LeastSquares {
            dim,
            xtx: vec![0.0; dim * dim],
            xty: vec![0.0; dim],
            samples: 0,
            ridge: 0.0,
        }
    }

    /// Creates an accumulator with a ridge (Tikhonov) regularization term
    /// `lambda`, which keeps the system solvable when some features never
    /// vary in the calibration set.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `lambda < 0`.
    pub fn with_ridge(dim: usize, lambda: f64) -> LeastSquares {
        assert!(lambda >= 0.0, "ridge parameter must be non-negative");
        let mut ls = LeastSquares::new(dim);
        ls.ridge = lambda;
        ls
    }

    /// Number of coefficients being fit.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of samples accumulated so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Adds one weighted sample.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != dim` or `weight < 0`.
    pub fn add_sample(&mut self, features: &[f64], target: f64, weight: f64) {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        assert!(weight >= 0.0, "weight must be non-negative");
        for i in 0..self.dim {
            let wfi = weight * features[i];
            for (j, &fj) in features.iter().enumerate() {
                self.xtx[i * self.dim + j] += wfi * fj;
            }
            self.xty[i] += wfi * target;
        }
        self.samples += 1;
    }

    /// Removes a previously-added sample by rank-1 downdate of the normal
    /// equations — the exact inverse of [`LeastSquares::add_sample`] up to
    /// floating-point rounding.
    ///
    /// This is what makes windowed online recalibration O(k²) per sample:
    /// evicting the oldest sample from a sliding window subtracts its
    /// contribution instead of rebuilding XᵀWX from the survivors. Callers
    /// that downdate millions of times should periodically rebuild from the
    /// retained samples to shed accumulated rounding (see
    /// [`RollingLeastSquares`], which does so automatically).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != dim`, if `weight < 0`, or if no samples
    /// are accumulated.
    pub fn remove_sample(&mut self, features: &[f64], target: f64, weight: f64) {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        assert!(weight >= 0.0, "weight must be non-negative");
        assert!(self.samples > 0, "no samples to remove");
        for i in 0..self.dim {
            let wfi = weight * features[i];
            for (j, &fj) in features.iter().enumerate() {
                self.xtx[i * self.dim + j] -= wfi * fj;
            }
            self.xty[i] -= wfi * target;
        }
        self.samples -= 1;
    }

    /// Resets the accumulator to the empty state, keeping `dim` and ridge.
    pub fn clear(&mut self) {
        self.xtx.iter_mut().for_each(|v| *v = 0.0);
        self.xty.iter_mut().for_each(|v| *v = 0.0);
        self.samples = 0;
    }

    /// Merges the accumulated statistics of `other` into `self`.
    ///
    /// The paper's recalibration weighs offline calibration samples and
    /// online measurement samples equally; this lets the recalibrator keep
    /// the offline normal equations around and fold fresh online windows in
    /// without reprocessing the calibration set.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn merge(&mut self, other: &LeastSquares) {
        assert_eq!(self.dim, other.dim, "dimension mismatch in merge");
        for (a, b) in self.xtx.iter_mut().zip(&other.xtx) {
            *a += b;
        }
        for (a, b) in self.xty.iter_mut().zip(&other.xty) {
            *a += b;
        }
        self.samples += other.samples;
    }

    /// Solves the normal equations and returns the coefficient vector.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Underdetermined`] when fewer samples than
    /// coefficients have been added, or [`SolveError::Singular`] when the
    /// system has no unique solution and no ridge term was configured.
    pub fn solve(&self) -> Result<Vec<f64>, SolveError> {
        self.solve_conditioned().map(|(beta, _)| beta)
    }

    /// Like [`LeastSquares::solve`], but also returns a cheap condition
    /// estimate of the normal-equation matrix: the ratio of the largest
    /// to the smallest pivot magnitude met during elimination. A
    /// well-posed fit stays within a few orders of magnitude; a
    /// near-singular system (e.g. online samples all describing the same
    /// operating point) blows the ratio up, and a robust consumer should
    /// reject the fit rather than trust coefficients solved across a
    /// nearly-degenerate pivot.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LeastSquares::solve`].
    pub fn solve_conditioned(&self) -> Result<(Vec<f64>, f64), SolveError> {
        if self.samples < self.dim && self.ridge == 0.0 {
            return Err(SolveError::Underdetermined {
                samples: self.samples,
                coefficients: self.dim,
            });
        }
        let n = self.dim;
        let mut a = self.xtx.clone();
        for i in 0..n {
            a[i * n + i] += self.ridge;
        }
        let mut b = self.xty.clone();
        let condition = solve_dense(&mut a, &mut b, n)?;
        Ok((b, condition))
    }
}

/// Solves `A x = b` in place (result left in `b`) with partial pivoting;
/// returns the max/min pivot-magnitude ratio as a condition estimate.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Result<f64, SolveError> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    let mut pivot_max = 0.0f64;
    let mut pivot_min = f64::INFINITY;
    for col in 0..n {
        // Find pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let mag = a[row * n + col].abs();
            if mag > best {
                best = mag;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return Err(SolveError::Singular);
        }
        pivot_max = pivot_max.max(best);
        pivot_min = pivot_min.min(best);
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col * n + k] * b[k];
        }
        b[col] = acc / a[col * n + col];
    }
    Ok(if pivot_min > 0.0 { pivot_max / pivot_min } else { f64::INFINITY })
}

/// Rebuild the rolling accumulator from scratch after this many evictions,
/// bounding the rounding drift that rank-1 downdates accumulate.
const ROLLING_REBUILD_EVERY: usize = 4096;

/// A sliding-window least-squares accumulator: the most recent `capacity`
/// samples, with the normal equations maintained incrementally.
///
/// `push` is O(k²) — a rank-1 update, plus a rank-1 downdate of the evicted
/// sample once the window is full — so a solve over the current window costs
/// O(k³) regardless of how many samples have ever streamed through. This is
/// the structure behind the paper's continuous online recalibration (§3.2):
/// model refits must stay cheap at any uptime, which rules out batch
/// re-accumulation over a growing sample set.
///
/// Downdates are exact in exact arithmetic but accumulate rounding in
/// floating point; the accumulator transparently rebuilds itself from the
/// retained window every [`ROLLING_REBUILD_EVERY`] evictions, so drift is
/// bounded and callers never see it.
///
/// # Example
///
/// ```
/// use analysis::linreg::RollingLeastSquares;
///
/// let mut win = RollingLeastSquares::new(1, 3);
/// for y in [1.0, 2.0, 30.0, 30.0, 30.0] {
///     win.push(&[1.0], y, 1.0);
/// }
/// // Only the last three samples remain.
/// assert_eq!(win.len(), 3);
/// assert!((win.solve().unwrap()[0] - 30.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RollingLeastSquares {
    acc: LeastSquares,
    /// Flat ring storage: `capacity` rows of `dim` features each.
    features: Vec<f64>,
    targets: Vec<f64>,
    weights: Vec<f64>,
    capacity: usize,
    /// Index of the oldest sample's row.
    head: usize,
    len: usize,
    evictions_since_rebuild: usize,
}

impl RollingLeastSquares {
    /// Creates a window for `dim` coefficients holding up to `capacity`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `capacity == 0`.
    pub fn new(dim: usize, capacity: usize) -> RollingLeastSquares {
        assert!(capacity > 0, "capacity must be positive");
        RollingLeastSquares {
            acc: LeastSquares::new(dim),
            features: vec![0.0; dim * capacity],
            targets: vec![0.0; capacity],
            weights: vec![0.0; capacity],
            capacity,
            head: 0,
            len: 0,
            evictions_since_rebuild: 0,
        }
    }

    /// Number of coefficients being fit.
    pub fn dim(&self) -> usize {
        self.acc.dim()
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a sample, evicting (and downdating) the oldest one if the
    /// window is full. Returns `true` if an eviction happened.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != dim` or `weight < 0`.
    pub fn push(&mut self, features: &[f64], target: f64, weight: f64) -> bool {
        let dim = self.acc.dim();
        assert_eq!(features.len(), dim, "feature dimension mismatch");
        let evicted = if self.len == self.capacity {
            let row = self.head * dim;
            // Split borrow: copy the evicted row out before mutating.
            let old: Vec<f64> = self.features[row..row + dim].to_vec();
            self.acc.remove_sample(&old, self.targets[self.head], self.weights[self.head]);
            self.head = (self.head + 1) % self.capacity;
            self.len -= 1;
            self.evictions_since_rebuild += 1;
            true
        } else {
            false
        };
        let slot = (self.head + self.len) % self.capacity;
        self.features[slot * dim..(slot + 1) * dim].copy_from_slice(features);
        self.targets[slot] = target;
        self.weights[slot] = weight;
        self.len += 1;
        self.acc.add_sample(features, target, weight);
        if self.evictions_since_rebuild >= ROLLING_REBUILD_EVERY {
            self.rebuild();
        }
        evicted
    }

    /// Drops every sample from the window.
    pub fn clear(&mut self) {
        self.acc.clear();
        self.head = 0;
        self.len = 0;
        self.evictions_since_rebuild = 0;
    }

    /// The normal-equation accumulator over the current window, e.g. for
    /// merging into an offline calibration fit.
    pub fn accumulator(&self) -> &LeastSquares {
        &self.acc
    }

    /// Iterates the window's samples oldest-first as
    /// `(features, target, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64, f64)> + '_ {
        let dim = self.acc.dim();
        (0..self.len).map(move |i| {
            let slot = (self.head + i) % self.capacity;
            (&self.features[slot * dim..(slot + 1) * dim], self.targets[slot], self.weights[slot])
        })
    }

    /// Solves the normal equations over the current window.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LeastSquares::solve`].
    pub fn solve(&self) -> Result<Vec<f64>, SolveError> {
        self.acc.solve()
    }

    /// Re-accumulates the normal equations from the retained samples,
    /// discarding downdate rounding drift.
    fn rebuild(&mut self) {
        let dim = self.acc.dim();
        self.acc.clear();
        for i in 0..self.len {
            let slot = (self.head + i) % self.capacity;
            let row = slot * dim;
            // Rebuild uses the same add order as streaming, so the result
            // matches a fresh accumulator fed the window oldest-first.
            let feats: Vec<f64> = self.features[row..row + dim].to_vec();
            self.acc.add_sample(&feats, self.targets[slot], self.weights[slot]);
        }
        self.evictions_since_rebuild = 0;
    }
}

/// Convenience one-shot fit of `targets ≈ features · β` with unit weights.
///
/// # Errors
///
/// Propagates [`SolveError`] from [`LeastSquares::solve`].
///
/// # Panics
///
/// Panics if `features.len() != targets.len()`, if `features` is empty, or
/// if rows have inconsistent lengths.
pub fn fit(features: &[Vec<f64>], targets: &[f64]) -> Result<Vec<f64>, SolveError> {
    assert_eq!(features.len(), targets.len(), "row count mismatch");
    assert!(!features.is_empty(), "no samples provided");
    let dim = features[0].len();
    let mut ls = LeastSquares::new(dim);
    for (row, &y) in features.iter().zip(targets) {
        ls.add_sample(row, y, 1.0);
    }
    ls.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_fit() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![1.0, i as f64]).collect();
        let ys: Vec<f64> = (0..5).map(|i| 1.5 + 0.5 * i as f64).collect();
        let beta = fit(&xs, &ys).unwrap();
        assert!((beta[0] - 1.5).abs() < 1e-10);
        assert!((beta[1] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn multi_feature_fit() {
        // y = 2a - b + 3c
        let rows = vec![
            (vec![1.0, 0.0, 0.0], 2.0),
            (vec![0.0, 1.0, 0.0], -1.0),
            (vec![0.0, 0.0, 1.0], 3.0),
            (vec![1.0, 1.0, 1.0], 4.0),
            (vec![2.0, 1.0, 0.5], 4.5),
        ];
        let (xs, ys): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let beta = fit(&xs, &ys).unwrap();
        for (got, want) in beta.iter().zip([2.0, -1.0, 3.0]) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn weighted_samples_dominate() {
        let mut ls = LeastSquares::new(1);
        ls.add_sample(&[1.0], 10.0, 1000.0);
        ls.add_sample(&[1.0], 0.0, 1.0);
        ls.add_sample(&[1.0], 0.0, 1.0);
        let beta = ls.solve().unwrap();
        assert!(beta[0] > 9.9, "weighted mean should be near 10, got {}", beta[0]);
    }

    #[test]
    fn underdetermined_reports_error() {
        let mut ls = LeastSquares::new(3);
        ls.add_sample(&[1.0, 2.0, 3.0], 1.0, 1.0);
        assert!(matches!(
            ls.solve(),
            Err(SolveError::Underdetermined { samples: 1, coefficients: 3 })
        ));
    }

    #[test]
    fn singular_reports_error() {
        let mut ls = LeastSquares::new(2);
        // Second feature is always zero → singular without ridge.
        for i in 0..5 {
            ls.add_sample(&[i as f64, 0.0], i as f64, 1.0);
        }
        assert_eq!(ls.solve(), Err(SolveError::Singular));
    }

    #[test]
    fn ridge_rescues_singular_system() {
        let mut ls = LeastSquares::with_ridge(2, 1e-6);
        for i in 0..5 {
            ls.add_sample(&[i as f64, 0.0], 2.0 * i as f64, 1.0);
        }
        let beta = ls.solve().unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-3);
        assert!(beta[1].abs() < 1e-3);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut all = LeastSquares::new(2);
        let mut left = LeastSquares::new(2);
        let mut right = LeastSquares::new(2);
        for i in 0..10 {
            let row = [1.0, i as f64];
            let y = 3.0 + 0.25 * i as f64;
            all.add_sample(&row, y, 1.0);
            if i % 2 == 0 {
                left.add_sample(&row, y, 1.0);
            } else {
                right.add_sample(&row, y, 1.0);
            }
        }
        left.merge(&right);
        let a = all.solve().unwrap();
        let b = left.solve().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_diagonal() {
        // First normal-equation pivot would be zero without row exchange.
        let rows = vec![
            (vec![0.0, 1.0], 5.0),
            (vec![1.0, 0.0], 7.0),
            (vec![1.0, 1.0], 12.0),
        ];
        let (xs, ys): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let beta = fit(&xs, &ys).unwrap();
        assert!((beta[0] - 7.0).abs() < 1e-9);
        assert!((beta[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn condition_estimate_separates_good_from_bad() {
        // Well-spread features: pivots stay comparable.
        let mut good = LeastSquares::new(2);
        for i in 0..10 {
            good.add_sample(&[1.0, i as f64 / 10.0], i as f64, 1.0);
        }
        let (_, cond_good) = good.solve_conditioned().unwrap();
        // Nearly collinear features: pivot ratio explodes.
        let mut bad = LeastSquares::new(2);
        for i in 0..10 {
            let x = i as f64 / 10.0;
            let jitter = 1e-6 * (i % 3) as f64;
            bad.add_sample(&[x, x + jitter], x, 1.0);
        }
        let (_, cond_bad) = bad.solve_conditioned().unwrap();
        assert!(cond_good < 1e3, "good condition {cond_good}");
        assert!(cond_bad > 1e6, "bad condition {cond_bad}");
    }

    #[test]
    fn solve_matches_solve_conditioned() {
        let mut ls = LeastSquares::new(2);
        for i in 0..6 {
            ls.add_sample(&[1.0, i as f64], 2.0 + 3.0 * i as f64, 1.0);
        }
        let a = ls.solve().unwrap();
        let (b, cond) = ls.solve_conditioned().unwrap();
        assert_eq!(a, b);
        assert!(cond.is_finite() && cond >= 1.0);
    }

    #[test]
    fn remove_sample_inverts_add() {
        let mut ls = LeastSquares::new(2);
        for i in 0..6 {
            ls.add_sample(&[1.0, i as f64], 2.0 + 3.0 * i as f64, 1.0);
        }
        let before = ls.solve().unwrap();
        ls.add_sample(&[4.0, -2.0], 100.0, 2.5);
        ls.remove_sample(&[4.0, -2.0], 100.0, 2.5);
        let after = ls.solve().unwrap();
        for (x, y) in before.iter().zip(&after) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        assert_eq!(ls.samples(), 6);
    }

    #[test]
    fn rolling_window_matches_batch_over_tail() {
        let mut win = RollingLeastSquares::new(2, 8);
        let mut all: Vec<(Vec<f64>, f64)> = Vec::new();
        for i in 0..50 {
            let row = vec![1.0, (i % 13) as f64];
            let y = 4.0 - 0.75 * row[1] + 0.01 * (i % 7) as f64;
            win.push(&row, y, 1.0);
            all.push((row, y));
        }
        assert_eq!(win.len(), 8);
        // Batch-fit only the retained tail.
        let mut batch = LeastSquares::new(2);
        for (row, y) in &all[42..] {
            batch.add_sample(row, *y, 1.0);
        }
        let a = win.solve().unwrap();
        let b = batch.solve().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn rolling_iter_is_oldest_first() {
        let mut win = RollingLeastSquares::new(1, 3);
        for y in [1.0, 2.0, 3.0, 4.0, 5.0] {
            win.push(&[1.0], y, 1.0);
        }
        let targets: Vec<f64> = win.iter().map(|(_, y, _)| y).collect();
        assert_eq!(targets, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn rolling_rebuild_bounds_drift() {
        // Stream far past the rebuild threshold; the window must still
        // agree with a fresh batch fit of its contents.
        let mut win = RollingLeastSquares::new(2, 4);
        for i in 0..(super::ROLLING_REBUILD_EVERY as u64 + 100) {
            let x = (i % 17) as f64 * 1e3;
            win.push(&[1.0, x], 5.0 + 2.0 * x, 1.0);
        }
        let mut batch = LeastSquares::new(2);
        for (row, y, w) in win.iter() {
            batch.add_sample(row, y, w);
        }
        let a = win.solve().unwrap();
        let b = batch.solve().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn rolling_clear_resets() {
        let mut win = RollingLeastSquares::new(1, 4);
        win.push(&[1.0], 2.0, 1.0);
        win.clear();
        assert!(win.is_empty());
        assert_eq!(win.accumulator().samples(), 0);
        assert!(win.solve().is_err());
    }

    #[test]
    fn display_messages() {
        let e = SolveError::Underdetermined { samples: 1, coefficients: 2 };
        assert!(e.to_string().contains("underdetermined"));
        assert!(SolveError::Singular.to_string().contains("singular"));
    }
}
