//! Measurement/model alignment cross-correlation (paper Eq. 4).
//!
//! Power measurements arrive with an unknown delivery delay (≈1 ms for the
//! SandyBridge on-chip meter, ≈1.2 s for the Wattsup meter in the paper).
//! The paper aligns the measurement and model sample sequences by computing
//! their cross-correlation at a range of hypothetical delays and picking the
//! delay with the highest correlation.
//!
//! # Fast curve evaluation
//!
//! The naive scan recomputes means, variances, and the cross term from
//! scratch at every lag — `O(N·L)` for `N` samples and `L` lags, plus an
//! allocation per lag. [`normalized_correlation_curve`] instead:
//!
//! * centers both series by their global means (Pearson correlation is
//!   shift-invariant, and centering avoids catastrophic cancellation in
//!   the `Σx² − (Σx)²/n` forms),
//! * keeps prefix sums of values and squared values, so each lag's window
//!   sums, means, and variances are `O(1)`,
//! * computes the per-lag cross products `Σ aᵢ·bᵢ₊ₖ` either with one fused
//!   pass per lag (small inputs) or a single FFT cross-correlation
//!   (large inputs), making the whole curve `O((N+L) log (N+L))`.
//!
//! The naive implementation is retained as the reference oracle
//! ([`find_alignment_naive`], [`normalized_cross_correlation`]); property
//! tests pin the two to within `1e-9` of each other.
//!
//! # Ties and poisoned samples
//!
//! Delay scans break exact score ties toward the **smallest lag**: the
//! earliest hypothesis wins, so a flat or periodic correlation curve yields
//! a stable, deterministic answer. Non-finite scores (a NaN measurement or
//! model sample poisons every window containing it) are never selected as
//! the peak; if no lag produces a finite score the scan reports `None`
//! rather than letting a poisoned lag win silently.

/// The cross-correlation of a measurement series against a model series at
/// one hypothetical delay of `lag` samples (Eq. 4).
///
/// `measure[i]` is compared against `model[i + lag]`: the measurement is
/// hypothesized to describe what the model estimated `lag` samples earlier.
/// Series are expected most-recent-first, matching the paper's notation.
/// Returns 0.0 when the overlap is empty.
///
/// # Example
///
/// ```
/// use analysis::xcorr::cross_correlation;
///
/// let model = [1.0, 5.0, 1.0, 1.0];
/// let measure = [5.0, 1.0, 1.0];
/// // The spike appears one sample later in the measurement.
/// assert!(cross_correlation(&measure, &model, 1) > cross_correlation(&measure, &model, 0));
/// ```
pub fn cross_correlation(measure: &[f64], model: &[f64], lag: usize) -> f64 {
    let overlap = measure.len().min(model.len().saturating_sub(lag));
    (0..overlap).map(|i| measure[i] * model[i + lag]).sum()
}

/// A normalized (Pearson-style) variant of [`cross_correlation`] that is
/// robust to differing sample counts per lag: raw Eq. 4 sums grow with the
/// overlap length, so comparing lags with very different overlaps can be
/// skewed. Returns a value in `[-1, 1]`, or 0.0 when the overlap is shorter
/// than two samples or either side is constant.
///
/// This is the *reference* per-lag implementation; use
/// [`normalized_correlation_curve`] to evaluate every lag at once.
pub fn normalized_cross_correlation(measure: &[f64], model: &[f64], lag: usize) -> f64 {
    let overlap = measure.len().min(model.len().saturating_sub(lag));
    if overlap < 2 {
        return 0.0;
    }
    let ms = &measure[..overlap];
    let mm: Vec<f64> = (0..overlap).map(|i| model[i + lag]).collect();
    let mean_a = ms.iter().sum::<f64>() / overlap as f64;
    let mean_b = mm.iter().sum::<f64>() / overlap as f64;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..overlap {
        let da = ms[i] - mean_a;
        let db = mm[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Above this many multiply-adds the cross terms are computed by FFT
/// instead of one fused pass per lag.
const FFT_CUTOFF: usize = 1 << 17;

/// Computes [`normalized_cross_correlation`] for every lag `0..=max_lag`
/// in one pass: prefix sums give each lag's means and variances in `O(1)`
/// and the cross products come from a fused sweep (or an FFT for large
/// inputs), for `O((N+L) log (N+L))` total instead of the naive `O(N·L)`.
///
/// Entries agree with the naive per-lag scan to ~1e-9 for finite inputs;
/// windows the naive scan treats as constant come out 0.0 here too.
///
/// # Example
///
/// ```
/// use analysis::xcorr::{normalized_correlation_curve, normalized_cross_correlation};
///
/// let model: Vec<f64> = (0..100).map(|i| ((i * i) % 31) as f64).collect();
/// let measure: Vec<f64> = model[4..].to_vec();
/// let curve = normalized_correlation_curve(&measure, &model, 10);
/// for (lag, score) in curve.iter().enumerate() {
///     let naive = normalized_cross_correlation(&measure, &model, lag);
///     assert!((score - naive).abs() < 1e-9);
/// }
/// ```
pub fn normalized_correlation_curve(measure: &[f64], model: &[f64], max_lag: usize) -> Vec<f64> {
    let n_m = measure.len();
    let l_m = model.len();
    let mut curve = vec![0.0; max_lag + 1];
    if n_m < 2 || l_m < 2 {
        return curve;
    }
    // Center by the global means: Pearson correlation is invariant under
    // shifting either series by a constant, and small centered values keep
    // the Σx² − (Σx)²/n windowed forms well conditioned.
    let ga = measure.iter().sum::<f64>() / n_m as f64;
    let gb = model.iter().sum::<f64>() / l_m as f64;
    let a: Vec<f64> = measure.iter().map(|v| v - ga).collect();
    let b: Vec<f64> = model.iter().map(|v| v - gb).collect();
    // Prefix sums: pa[i] = Σ a[0..i], paa[i] = Σ a[0..i]².
    let mut pa = vec![0.0; n_m + 1];
    let mut paa = vec![0.0; n_m + 1];
    for i in 0..n_m {
        pa[i + 1] = pa[i] + a[i];
        paa[i + 1] = paa[i] + a[i] * a[i];
    }
    let mut pb = vec![0.0; l_m + 1];
    let mut pbb = vec![0.0; l_m + 1];
    for j in 0..l_m {
        pb[j + 1] = pb[j] + b[j];
        pbb[j + 1] = pbb[j] + b[j] * b[j];
    }
    // Cross terms T[k] = Σ_i a[i]·b[i+k] over each lag's overlap.
    let k_max = max_lag.min(l_m.saturating_sub(2));
    let cross = sliding_cross_products(&a, &b, k_max);
    for (k, curve_k) in curve.iter_mut().enumerate().take(k_max + 1) {
        let n = n_m.min(l_m - k);
        if n < 2 {
            continue;
        }
        let nf = n as f64;
        let sum_a = pa[n];
        let sum_aa = paa[n];
        let sum_b = pb[k + n] - pb[k];
        let sum_bb = pbb[k + n] - pbb[k];
        let cov = cross[k] - sum_a * sum_b / nf;
        let var_a = sum_aa - sum_a * sum_a / nf;
        let var_b = sum_bb - sum_b * sum_b / nf;
        // Relative floor: a window whose computed variance is within
        // accumulated-rounding distance of zero is constant for our
        // purposes (the naive scan sees an exact zero there).
        let tol = 8.0 * f64::EPSILON * nf;
        if var_a <= tol * (sum_aa + sum_a * sum_a / nf) || var_b <= tol * (sum_bb + sum_b * sum_b / nf)
        {
            continue;
        }
        *curve_k = cov / (var_a.sqrt() * var_b.sqrt());
    }
    curve
}

/// Sliding cross products `T[k] = Σ_i a[i]·b[i+k]` for `k = 0..=k_max`,
/// each summed over the natural overlap `i < min(a.len(), b.len() − k)`.
/// Small inputs use one fused pass per lag; large inputs switch to a
/// single FFT cross-correlation. Building block for correlation curves
/// over pre-centered series (used by `core::align`'s gridded delay scan).
pub fn sliding_cross_products(a: &[f64], b: &[f64], k_max: usize) -> Vec<f64> {
    let work: usize = (0..=k_max)
        .map(|k| a.len().min(b.len().saturating_sub(k)))
        .sum();
    if work <= FFT_CUTOFF {
        let mut out = vec![0.0; k_max + 1];
        for (k, out_k) in out.iter_mut().enumerate() {
            let n = a.len().min(b.len().saturating_sub(k));
            if n == 0 {
                continue; // empty overlap: k may exceed b.len() entirely
            }
            *out_k = a[..n].iter().zip(&b[k..k + n]).map(|(x, y)| x * y).sum();
        }
        out
    } else {
        fft_cross_products(a, b, k_max)
    }
}

/// Cross products via the correlation theorem:
/// `T = IFFT(conj(FFT(a)) · FFT(b))`, zero-padded so nothing wraps.
///
/// Both inputs are real, so they share one complex transform (`c = a +
/// i·b`, split by Hermitian symmetry) and the transform length only
/// needs to cover `a.len() + k_max` — the highest `b` index any
/// returned lag touches — rather than the two series end to end.
fn fft_cross_products(a: &[f64], b: &[f64], k_max: usize) -> Vec<f64> {
    // b[i + k] with i < a.len(), k <= k_max never reads past this.
    let nb = b.len().min(a.len() + k_max);
    let m = (a.len() + k_max).max(2).next_power_of_two();
    let mut c: Vec<(f64, f64)> = (0..m)
        .map(|j| {
            (
                if j < a.len() { a[j] } else { 0.0 },
                if j < nb { b[j] } else { 0.0 },
            )
        })
        .collect();
    let tw = twiddle_table(m);
    fft_in_place(&mut c, &tw, false);
    // Unpack A[k] = (C[k] + conj(C[m−k]))/2 and B[k] = (C[k] −
    // conj(C[m−k]))/2i, then form D = conj(A)·B. D is Hermitian (both
    // spectra come from real series), so IFFT(D) is real.
    let mut d = vec![(0.0, 0.0); m];
    for (k, dk) in d.iter_mut().enumerate() {
        let (cr, ci) = c[k];
        let (sr, si) = c[(m - k) & (m - 1)];
        let (ar, ai) = ((cr + sr) * 0.5, (ci - si) * 0.5);
        let (br, bi) = ((ci + si) * 0.5, (sr - cr) * 0.5);
        *dk = (ar * br + ai * bi, ar * bi - ai * br);
    }
    fft_in_place(&mut d, &tw, true);
    // Lags past the transform length have empty overlap.
    (0..=k_max).map(|k| if k < m { d[k].0 / m as f64 } else { 0.0 }).collect()
}

/// Forward twiddle factors `e^(−2πik/m)` for `k < m/2`, built by a
/// multiplicative recurrence resynced against `sin`/`cos` every 32
/// entries so the error stays at a few ulps without paying a libm call
/// per entry.
fn twiddle_table(m: usize) -> Vec<(f64, f64)> {
    let step = -2.0 * std::f64::consts::PI / m as f64;
    let (wr, wi) = (step.cos(), step.sin());
    let (mut cr, mut ci) = (1.0f64, 0.0f64);
    let mut tw = Vec::with_capacity(m / 2);
    for k in 0..m / 2 {
        if k % 32 == 0 {
            let ang = step * k as f64;
            cr = ang.cos();
            ci = ang.sin();
        }
        tw.push((cr, ci));
        let (nr, ni) = (cr * wr - ci * wi, cr * wi + ci * wr);
        cr = nr;
        ci = ni;
    }
    tw
}

/// Iterative radix-2 complex FFT (Cooley–Tukey); `inverse` leaves the
/// result unscaled (callers divide by the length).
fn fft_in_place(x: &mut [(f64, f64)], tw: &[(f64, f64)], inverse: bool) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    debug_assert!(tw.len() == n / 2);
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
    // Table lookups keep each butterfly independent — no serial twiddle
    // recurrence stalling the pipeline.
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let (cr, mut ci) = tw[k * stride];
                if inverse {
                    ci = -ci;
                }
                let (ur, ui) = x[start + k];
                let (vr, vi) = x[start + k + len / 2];
                let (tr, ti) = (vr * cr - vi * ci, vr * ci + vi * cr);
                x[start + k] = (ur + tr, ui + ti);
                x[start + k + len / 2] = (ur - tr, ui - ti);
            }
        }
        len <<= 1;
    }
}

/// Result of scanning hypothetical delays for the best alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentPeak {
    /// The delay (in samples) with the highest correlation.
    pub lag: usize,
    /// The correlation score at that delay.
    pub score: f64,
}

/// Two scores within this distance are considered tied: correlation values
/// that close are indistinguishable from floating-point noise (a periodic
/// signal's aliased lags land here), so the scan must not let summation
/// order pick the winner.
const TIE_EPS: f64 = 1e-12;

/// Picks the peak of a correlation curve under the scan's selection rules:
/// a lag is eligible when its overlap is at least two samples and its
/// score is finite; ties (exact, or within [`TIE_EPS`]) go to the
/// **smallest** lag, so a flat or periodic curve yields a deterministic
/// answer regardless of which implementation computed it.
fn pick_peak(curve: &[f64], measure_len: usize, model_len: usize) -> Option<AlignmentPeak> {
    let mut best: Option<AlignmentPeak> = None;
    for (lag, &score) in curve.iter().enumerate() {
        let overlap = measure_len.min(model_len.saturating_sub(lag));
        if overlap < 2 || !score.is_finite() {
            continue;
        }
        match best {
            Some(b) if score <= b.score + TIE_EPS => {}
            _ => best = Some(AlignmentPeak { lag, score }),
        }
    }
    best
}

/// Scans delays `0..=max_lag` and returns the best-correlated one, plus the
/// full correlation curve (index = lag), using the normalized correlation.
///
/// Uses the prefix-sum/FFT fast path ([`normalized_correlation_curve`]);
/// inputs containing non-finite values fall back to the per-lag reference
/// scan so one poisoned sample cannot contaminate every lag. In either
/// case a non-finite score never wins: exact ties break toward the
/// smallest lag, and if no lag yields a finite score with at least two
/// overlapping samples the scan returns `None`.
///
/// # Example
///
/// ```
/// use analysis::xcorr::find_alignment;
///
/// let model: Vec<f64> = (0..100).map(|i| ((i % 10) as f64)).collect();
/// // Measurement sees the same signal 3 samples late.
/// let measure: Vec<f64> = model[3..].to_vec();
/// let (peak, _curve) = find_alignment(&measure, &model, 10).unwrap();
/// assert_eq!(peak.lag, 3);
/// ```
pub fn find_alignment(
    measure: &[f64],
    model: &[f64],
    max_lag: usize,
) -> Option<(AlignmentPeak, Vec<f64>)> {
    let finite =
        measure.iter().all(|v| v.is_finite()) && model.iter().all(|v| v.is_finite());
    if !finite {
        return find_alignment_naive(measure, model, max_lag);
    }
    let curve = normalized_correlation_curve(measure, model, max_lag);
    pick_peak(&curve, measure.len(), model.len()).map(|p| (p, curve))
}

/// Reference implementation of [`find_alignment`]: the naive per-lag
/// Pearson scan, kept as the correctness oracle for the fast path (and
/// used by it when inputs contain non-finite values). Same selection
/// rules: first lag wins exact ties, non-finite scores never win.
pub fn find_alignment_naive(
    measure: &[f64],
    model: &[f64],
    max_lag: usize,
) -> Option<(AlignmentPeak, Vec<f64>)> {
    let curve: Vec<f64> = (0..=max_lag)
        .map(|lag| normalized_cross_correlation(measure, model, lag))
        .collect();
    pick_peak(&curve, measure.len(), model.len()).map(|p| (p, curve))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sawtooth(n: usize, period: usize) -> Vec<f64> {
        (0..n).map(|i| (i % period) as f64).collect()
    }

    #[test]
    fn zero_lag_identity() {
        let s = sawtooth(50, 7);
        let c = normalized_cross_correlation(&s, &s, 0);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_known_lag() {
        let model = sawtooth(200, 13);
        for true_lag in [0usize, 1, 5, 12] {
            let measure: Vec<f64> = model[true_lag..].to_vec();
            let (peak, _) = find_alignment(&measure, &model, 20).unwrap();
            assert_eq!(peak.lag, true_lag, "failed for lag {true_lag}");
        }
    }

    #[test]
    fn detects_lag_with_noise() {
        let mut rng = 0x12345u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % 1000) as f64 / 1000.0 - 0.5
        };
        let model: Vec<f64> = (0..500).map(|i| ((i / 20) % 2) as f64 * 10.0 + next()).collect();
        let measure: Vec<f64> = model[7..].iter().map(|v| v + next() * 0.3).collect();
        let (peak, _) = find_alignment(&measure, &model, 40).unwrap();
        assert_eq!(peak.lag, 7);
    }

    #[test]
    fn raw_correlation_empty_overlap_is_zero() {
        let a = [1.0, 2.0];
        let b = [3.0];
        assert_eq!(cross_correlation(&a, &b, 5), 0.0);
    }

    #[test]
    fn normalized_constant_series_is_zero() {
        let a = [2.0; 10];
        let b = [3.0; 20];
        assert_eq!(normalized_cross_correlation(&a, &b, 0), 0.0);
        assert_eq!(normalized_correlation_curve(&a, &b, 5), vec![0.0; 6]);
    }

    #[test]
    fn curve_length_matches_lags() {
        let model = sawtooth(100, 5);
        let measure = sawtooth(80, 5);
        let (_, curve) = find_alignment(&measure, &model, 30).unwrap();
        assert_eq!(curve.len(), 31);
    }

    #[test]
    fn no_alignment_for_tiny_series() {
        assert!(find_alignment(&[1.0], &[1.0], 5).is_none());
    }

    #[test]
    fn anticorrelated_signal_scores_negative() {
        let model: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        let measure: Vec<f64> = model.iter().map(|v| 1.0 - v).collect();
        let c = normalized_cross_correlation(&measure, &model, 0);
        assert!(c < -0.9);
    }

    #[test]
    fn fast_curve_matches_naive_on_noisy_signal() {
        let mut rng = 0xABCDEFu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % 10_000) as f64 / 50.0 - 100.0
        };
        let model: Vec<f64> = (0..400).map(|_| next()).collect();
        let measure: Vec<f64> = model[9..309].iter().map(|v| v * 1.1 + next() * 0.1).collect();
        let curve = normalized_correlation_curve(&measure, &model, 60);
        for (lag, score) in curve.iter().enumerate() {
            let naive = normalized_cross_correlation(&measure, &model, lag);
            assert!(
                (score - naive).abs() < 1e-9,
                "lag {lag}: fast {score} vs naive {naive}"
            );
        }
        let fast = find_alignment(&measure, &model, 60).unwrap().0;
        let naive = find_alignment_naive(&measure, &model, 60).unwrap().0;
        assert_eq!(fast.lag, naive.lag);
    }

    #[test]
    fn fft_path_matches_naive() {
        // Large enough to cross FFT_CUTOFF (5000 × 501 ≫ 2^17).
        let mut rng = 0x5EEDu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % 1000) as f64 - 500.0
        };
        let model: Vec<f64> = (0..5500).map(|i| ((i / 40) % 3) as f64 * 25.0 + next() * 0.05).collect();
        let measure: Vec<f64> = model[137..5137].to_vec();
        let curve = normalized_correlation_curve(&measure, &model, 500);
        for lag in [0usize, 1, 13, 137, 200, 499, 500] {
            let naive = normalized_cross_correlation(&measure, &model, lag);
            assert!(
                (curve[lag] - naive).abs() < 1e-9,
                "lag {lag}: fft {} vs naive {naive}",
                curve[lag]
            );
        }
        let (peak, _) = find_alignment(&measure, &model, 500).unwrap();
        assert_eq!(peak.lag, 137);
    }

    #[test]
    fn exact_tie_breaks_to_first_lag() {
        // A 4-periodic signal: lags 0, 4, 8 correlate identically; the
        // scan must deterministically report the earliest.
        let model: Vec<f64> = (0..64).map(|i| (i % 4) as f64).collect();
        let measure: Vec<f64> = (0..40).map(|i| (i % 4) as f64).collect();
        let (peak, curve) = find_alignment(&measure, &model, 12).unwrap();
        assert_eq!(peak.lag, 0);
        assert!((curve[4] - curve[0]).abs() < 1e-9, "periodic lags tie");
        let (naive_peak, _) = find_alignment_naive(&measure, &model, 12).unwrap();
        assert_eq!(naive_peak.lag, 0);
    }

    #[test]
    fn nan_sample_cannot_win_the_scan() {
        let model = sawtooth(60, 7);
        let mut measure: Vec<f64> = model[3..].to_vec();
        measure[10] = f64::NAN;
        // Every overlap contains the poisoned sample: no finite score
        // exists, so the scan must refuse rather than return a NaN peak.
        match find_alignment(&measure, &model, 10) {
            None => {}
            Some((peak, _)) => {
                assert!(peak.score.is_finite(), "NaN peak leaked: {peak:?}");
            }
        }
        let naive = find_alignment_naive(&measure, &model, 10);
        match naive {
            None => {}
            Some((peak, _)) => assert!(peak.score.is_finite()),
        }
    }

    #[test]
    fn infinite_model_sample_is_guarded() {
        let model: Vec<f64> = {
            let mut m = sawtooth(60, 7);
            m[55] = f64::INFINITY;
            m
        };
        let measure: Vec<f64> = sawtooth(40, 7);
        // Lags whose overlap excludes the poisoned tail still score; the
        // peak must carry a finite score.
        if let Some((peak, _)) = find_alignment(&measure, &model, 10) {
            assert!(peak.score.is_finite());
        }
    }
}
