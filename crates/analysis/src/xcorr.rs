//! Measurement/model alignment cross-correlation (paper Eq. 4).
//!
//! Power measurements arrive with an unknown delivery delay (≈1 ms for the
//! SandyBridge on-chip meter, ≈1.2 s for the Wattsup meter in the paper).
//! The paper aligns the measurement and model sample sequences by computing
//! their cross-correlation at a range of hypothetical delays and picking the
//! delay with the highest correlation.

/// The cross-correlation of a measurement series against a model series at
/// one hypothetical delay of `lag` samples (Eq. 4).
///
/// `measure[i]` is compared against `model[i + lag]`: the measurement is
/// hypothesized to describe what the model estimated `lag` samples earlier.
/// Series are expected most-recent-first, matching the paper's notation.
/// Returns 0.0 when the overlap is empty.
///
/// # Example
///
/// ```
/// use analysis::xcorr::cross_correlation;
///
/// let model = [1.0, 5.0, 1.0, 1.0];
/// let measure = [5.0, 1.0, 1.0];
/// // The spike appears one sample later in the measurement.
/// assert!(cross_correlation(&measure, &model, 1) > cross_correlation(&measure, &model, 0));
/// ```
pub fn cross_correlation(measure: &[f64], model: &[f64], lag: usize) -> f64 {
    let overlap = measure.len().min(model.len().saturating_sub(lag));
    (0..overlap).map(|i| measure[i] * model[i + lag]).sum()
}

/// A normalized (Pearson-style) variant of [`cross_correlation`] that is
/// robust to differing sample counts per lag: raw Eq. 4 sums grow with the
/// overlap length, so comparing lags with very different overlaps can be
/// skewed. Returns a value in `[-1, 1]`, or 0.0 when the overlap is shorter
/// than two samples or either side is constant.
pub fn normalized_cross_correlation(measure: &[f64], model: &[f64], lag: usize) -> f64 {
    let overlap = measure.len().min(model.len().saturating_sub(lag));
    if overlap < 2 {
        return 0.0;
    }
    let ms = &measure[..overlap];
    let mm: Vec<f64> = (0..overlap).map(|i| model[i + lag]).collect();
    let mean_a = ms.iter().sum::<f64>() / overlap as f64;
    let mean_b = mm.iter().sum::<f64>() / overlap as f64;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..overlap {
        let da = ms[i] - mean_a;
        let db = mm[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Result of scanning hypothetical delays for the best alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentPeak {
    /// The delay (in samples) with the highest correlation.
    pub lag: usize,
    /// The correlation score at that delay.
    pub score: f64,
}

/// Scans delays `0..=max_lag` and returns the best-correlated one, plus the
/// full correlation curve (index = lag), using the normalized correlation.
///
/// Returns `None` when no lag produced at least two overlapping samples.
///
/// # Example
///
/// ```
/// use analysis::xcorr::find_alignment;
///
/// let model: Vec<f64> = (0..100).map(|i| ((i % 10) as f64)).collect();
/// // Measurement sees the same signal 3 samples late.
/// let measure: Vec<f64> = model[3..].to_vec();
/// let (peak, _curve) = find_alignment(&measure, &model, 10).unwrap();
/// assert_eq!(peak.lag, 3);
/// ```
pub fn find_alignment(
    measure: &[f64],
    model: &[f64],
    max_lag: usize,
) -> Option<(AlignmentPeak, Vec<f64>)> {
    let mut curve = Vec::with_capacity(max_lag + 1);
    let mut best: Option<AlignmentPeak> = None;
    for lag in 0..=max_lag {
        let score = normalized_cross_correlation(measure, model, lag);
        curve.push(score);
        let overlap = measure.len().min(model.len().saturating_sub(lag));
        if overlap >= 2 {
            match best {
                Some(b) if b.score >= score => {}
                _ => best = Some(AlignmentPeak { lag, score }),
            }
        }
    }
    best.map(|b| (b, curve))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sawtooth(n: usize, period: usize) -> Vec<f64> {
        (0..n).map(|i| (i % period) as f64).collect()
    }

    #[test]
    fn zero_lag_identity() {
        let s = sawtooth(50, 7);
        let c = normalized_cross_correlation(&s, &s, 0);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_known_lag() {
        let model = sawtooth(200, 13);
        for true_lag in [0usize, 1, 5, 12] {
            let measure: Vec<f64> = model[true_lag..].to_vec();
            let (peak, _) = find_alignment(&measure, &model, 20).unwrap();
            assert_eq!(peak.lag, true_lag, "failed for lag {true_lag}");
        }
    }

    #[test]
    fn detects_lag_with_noise() {
        let mut rng = 0x12345u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % 1000) as f64 / 1000.0 - 0.5
        };
        let model: Vec<f64> = (0..500).map(|i| ((i / 20) % 2) as f64 * 10.0 + next()).collect();
        let measure: Vec<f64> = model[7..].iter().map(|v| v + next() * 0.3).collect();
        let (peak, _) = find_alignment(&measure, &model, 40).unwrap();
        assert_eq!(peak.lag, 7);
    }

    #[test]
    fn raw_correlation_empty_overlap_is_zero() {
        let a = [1.0, 2.0];
        let b = [3.0];
        assert_eq!(cross_correlation(&a, &b, 5), 0.0);
    }

    #[test]
    fn normalized_constant_series_is_zero() {
        let a = [2.0; 10];
        let b = [3.0; 20];
        assert_eq!(normalized_cross_correlation(&a, &b, 0), 0.0);
    }

    #[test]
    fn curve_length_matches_lags() {
        let model = sawtooth(100, 5);
        let measure = sawtooth(80, 5);
        let (_, curve) = find_alignment(&measure, &model, 30).unwrap();
        assert_eq!(curve.len(), 31);
    }

    #[test]
    fn no_alignment_for_tiny_series() {
        assert!(find_alignment(&[1.0], &[1.0], 5).is_none());
    }

    #[test]
    fn anticorrelated_signal_scores_negative() {
        let model: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        let measure: Vec<f64> = model.iter().map(|v| 1.0 - v).collect();
        let c = normalized_cross_correlation(&measure, &model, 0);
        assert!(c < -0.9);
    }
}
