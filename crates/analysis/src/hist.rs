//! Fixed-bin histograms for request power/energy distributions (Fig. 6/7).

use std::fmt;

/// A histogram over a fixed range with uniformly sized bins.
///
/// Values below the range clamp into the first bin and values above clamp
/// into the last bin, so the total count always equals the number of
/// observations — matching how the paper's distribution plots bound their
/// axes.
///
/// # Example
///
/// ```
/// use analysis::hist::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [1.0, 1.5, 9.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_counts()[0], 2);
/// assert_eq!(h.bin_counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if `lo >= hi`, or if either bound is not
    /// finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        Histogram { lo, hi, counts: vec![0; bins], total: 0, sum: 0.0 }
    }

    /// Records one observation.
    ///
    /// Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all recorded observations (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Raw per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `(low, high)` edges of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bin_edges(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * idx as f64, self.lo + width * (idx + 1) as f64)
    }

    /// Per-bin probability density (count / total / bin-width); all zeros if
    /// no observations were recorded.
    pub fn density(&self) -> Vec<f64> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64 / width)
            .collect()
    }

    /// Index of the fullest bin (`None` if empty).
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }

    /// Renders a simple ASCII bar chart, one bin per line — used by the
    /// figure binaries to print paper-style distribution plots.
    pub fn ascii_plot(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:7.2},{hi:7.2}) |{bar}\n"));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram[{:.2},{:.2}) n={} bins={}",
            self.lo,
            self.hi,
            self.total,
            self.counts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.0);
        h.record(9.99);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.bin_counts()[9], 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(99.0);
        h.record(1.0); // exactly hi clamps to last bin
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[3], 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn mean_tracks_observations() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 8.0, 16);
        for i in 0..1000 {
            h.record((i % 8) as f64 + 0.5);
        }
        let width = 0.5;
        let integral: f64 = h.density().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn edges_partition_range() {
        let h = Histogram::new(2.0, 6.0, 4);
        assert_eq!(h.bin_edges(0), (2.0, 3.0));
        assert_eq!(h.bin_edges(3), (5.0, 6.0));
    }

    #[test]
    fn ascii_plot_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 2.0, 4);
        h.record(0.1);
        let plot = h.ascii_plot(20);
        assert_eq!(plot.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
