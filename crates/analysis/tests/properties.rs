//! Property-based tests for the numerics crate.

use analysis::hist::Histogram;
use analysis::linreg::LeastSquares;
use analysis::stats::{quantile, Summary};
use analysis::xcorr::{find_alignment, normalized_cross_correlation};
use proptest::prelude::*;

proptest! {
    /// Least squares recovers random 3-coefficient linear models exactly
    /// from noise-free samples.
    #[test]
    fn linreg_recovers_random_models(
        c in prop::collection::vec(-100.0f64..100.0, 3),
        xs in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 8..40),
    ) {
        let mut ls = LeastSquares::with_ridge(3, 1e-9);
        for row in &xs {
            let y: f64 = row.iter().zip(&c).map(|(x, c)| x * c).sum();
            ls.add_sample(row, y, 1.0);
        }
        if let Ok(beta) = ls.solve() {
            let fit_ok = xs.iter().all(|row| {
                let y: f64 = row.iter().zip(&c).map(|(x, c)| x * c).sum();
                let yhat: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
                (y - yhat).abs() < 1e-4 * (1.0 + y.abs())
            });
            prop_assert!(fit_ok, "fit does not reproduce training data");
        }
    }

    /// Quantiles lie within the sample range and are monotone in p.
    #[test]
    fn quantiles_bounded_and_monotone(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let qlo = quantile(&values, lo).unwrap();
        let qhi = quantile(&values, hi).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qlo >= min - 1e-9 && qhi <= max + 1e-9);
        prop_assert!(qlo <= qhi + 1e-9);
    }

    /// Histograms never lose observations (clamping included).
    #[test]
    fn histogram_conserves_count(values in prop::collection::vec(-50.0f64..150.0, 0..500)) {
        let mut h = Histogram::new(0.0, 100.0, 17);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bin_counts().iter().sum::<u64>(), values.len() as u64);
    }

    /// Merging split summaries equals the single-stream summary.
    #[test]
    fn summary_merge_associative(
        values in prop::collection::vec(-1e3f64..1e3, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let all: Summary = values.iter().copied().collect();
        let mut left: Summary = values[..split].iter().copied().collect();
        let right: Summary = values[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9 * (1.0 + all.mean().abs()));
        prop_assert!((left.variance() - all.variance()).abs() < 1e-6 * (1.0 + all.variance()));
    }

    /// Normalized cross-correlation stays within [-1, 1].
    #[test]
    fn xcorr_normalized_bounded(
        a in prop::collection::vec(-100.0f64..100.0, 3..50),
        b in prop::collection::vec(-100.0f64..100.0, 3..50),
        lag in 0usize..10,
    ) {
        let c = normalized_cross_correlation(&a, &b, lag);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "correlation {c}");
    }

    /// A self-shifted non-constant signal aligns at its true lag.
    #[test]
    fn xcorr_detects_shift(seedvals in prop::collection::vec(0.0f64..100.0, 40..80), lag in 0usize..8) {
        // Build a signal with real structure by cumulative jitter.
        let mut model: Vec<f64> = Vec::with_capacity(seedvals.len() * 2);
        for (i, v) in seedvals.iter().enumerate() {
            model.push(v + ((i / 5) % 3) as f64 * 40.0);
            model.push(v * 0.5 + ((i / 7) % 2) as f64 * 60.0);
        }
        prop_assume!(model.len() > lag + 20);
        let measure: Vec<f64> = model[lag..].to_vec();
        if let Some((peak, _)) = find_alignment(&measure, &model, 10) {
            prop_assert_eq!(peak.lag, lag);
        }
    }
}
