//! Property-based tests for the numerics crate.

use analysis::hist::Histogram;
use analysis::linreg::{LeastSquares, RollingLeastSquares};
use analysis::stats::{quantile, Summary};
use analysis::xcorr::{
    find_alignment, find_alignment_naive, normalized_correlation_curve,
    normalized_cross_correlation,
};
use proptest::prelude::*;

proptest! {
    /// Least squares recovers random 3-coefficient linear models exactly
    /// from noise-free samples.
    #[test]
    fn linreg_recovers_random_models(
        c in prop::collection::vec(-100.0f64..100.0, 3),
        xs in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 8..40),
    ) {
        let mut ls = LeastSquares::with_ridge(3, 1e-9);
        for row in &xs {
            let y: f64 = row.iter().zip(&c).map(|(x, c)| x * c).sum();
            ls.add_sample(row, y, 1.0);
        }
        if let Ok(beta) = ls.solve() {
            let fit_ok = xs.iter().all(|row| {
                let y: f64 = row.iter().zip(&c).map(|(x, c)| x * c).sum();
                let yhat: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
                (y - yhat).abs() < 1e-4 * (1.0 + y.abs())
            });
            prop_assert!(fit_ok, "fit does not reproduce training data");
        }
    }

    /// Quantiles lie within the sample range and are monotone in p.
    #[test]
    fn quantiles_bounded_and_monotone(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let qlo = quantile(&values, lo).unwrap();
        let qhi = quantile(&values, hi).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qlo >= min - 1e-9 && qhi <= max + 1e-9);
        prop_assert!(qlo <= qhi + 1e-9);
    }

    /// Histograms never lose observations (clamping included).
    #[test]
    fn histogram_conserves_count(values in prop::collection::vec(-50.0f64..150.0, 0..500)) {
        let mut h = Histogram::new(0.0, 100.0, 17);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bin_counts().iter().sum::<u64>(), values.len() as u64);
    }

    /// Merging split summaries equals the single-stream summary.
    #[test]
    fn summary_merge_associative(
        values in prop::collection::vec(-1e3f64..1e3, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let all: Summary = values.iter().copied().collect();
        let mut left: Summary = values[..split].iter().copied().collect();
        let right: Summary = values[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9 * (1.0 + all.mean().abs()));
        prop_assert!((left.variance() - all.variance()).abs() < 1e-6 * (1.0 + all.variance()));
    }

    /// Normalized cross-correlation stays within [-1, 1].
    #[test]
    fn xcorr_normalized_bounded(
        a in prop::collection::vec(-100.0f64..100.0, 3..50),
        b in prop::collection::vec(-100.0f64..100.0, 3..50),
        lag in 0usize..10,
    ) {
        let c = normalized_cross_correlation(&a, &b, lag);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "correlation {c}");
    }

    /// The prefix-sum fast correlation curve matches the naive per-lag
    /// Pearson scan to 1e-9 on arbitrary finite inputs.
    #[test]
    fn fast_curve_equals_naive_pearson(
        a in prop::collection::vec(-500.0f64..500.0, 2..120),
        b in prop::collection::vec(-500.0f64..500.0, 2..160),
        max_lag in 0usize..40,
    ) {
        let curve = normalized_correlation_curve(&a, &b, max_lag);
        prop_assert_eq!(curve.len(), max_lag + 1);
        for (lag, score) in curve.iter().enumerate() {
            let naive = normalized_cross_correlation(&a, &b, lag);
            prop_assert!(
                (score - naive).abs() < 1e-9,
                "lag {}: fast {} vs naive {}", lag, score, naive
            );
        }
    }

    /// The fast alignment scan and the naive oracle agree on the peak
    /// (same lag, same score to 1e-9) for arbitrary finite inputs.
    #[test]
    fn fast_alignment_equals_naive_oracle(
        a in prop::collection::vec(-500.0f64..500.0, 2..100),
        b in prop::collection::vec(-500.0f64..500.0, 2..140),
        max_lag in 0usize..30,
    ) {
        let fast = find_alignment(&a, &b, max_lag);
        let naive = find_alignment_naive(&a, &b, max_lag);
        match (fast, naive) {
            (None, None) => {}
            (Some((fp, _)), Some((np, _))) => {
                prop_assert_eq!(fp.lag, np.lag, "peak lag diverged");
                prop_assert!((fp.score - np.score).abs() < 1e-9);
            }
            (f, n) => prop_assert!(false, "availability diverged: {:?} vs {:?}", f, n),
        }
    }

    /// An incrementally maintained rolling window (rank-1 update on add,
    /// rank-1 downdate on evict) solves to the same coefficients as a
    /// from-scratch batch fit of the retained samples, for arbitrary
    /// add sequences and window capacities.
    #[test]
    fn rolling_refit_equals_batch_fit(
        rows in prop::collection::vec(
            (prop::collection::vec(-10.0f64..10.0, 3), -100.0f64..100.0),
            1..80,
        ),
        cap in 1usize..24,
    ) {
        let mut win = RollingLeastSquares::new(3, cap);
        for (row, y) in &rows {
            win.push(row, *y, 1.0);
        }
        let kept = rows.len().min(cap);
        let tail = &rows[rows.len() - kept..];
        let mut batch = LeastSquares::new(3);
        for (row, y) in tail {
            batch.add_sample(row, *y, 1.0);
        }
        prop_assert_eq!(win.len(), kept);
        // Both must agree on solvability; when solvable, on the fit.
        match (win.solve(), batch.solve()) {
            (Ok(a), Ok(b)) => {
                for (x, y) in a.iter().zip(&b) {
                    prop_assert!(
                        (x - y).abs() < 1e-6 * (1.0 + y.abs()),
                        "coefficients diverged: {} vs {}", x, y
                    );
                }
            }
            (Err(_), Err(_)) => {}
            // Downdate rounding can flip a numerically singular system
            // either way; only a *well-conditioned* disagreement is a bug.
            (Ok(_), Err(_)) | (Err(_), Ok(_)) => {
                let max_abs = tail
                    .iter()
                    .flat_map(|(r, _)| r.iter())
                    .fold(0.0f64, |m, v| m.max(v.abs()));
                prop_assert!(max_abs < 1e-3, "solvability diverged on healthy data");
            }
        }
    }

    /// A self-shifted non-constant signal aligns at its true lag.
    #[test]
    fn xcorr_detects_shift(seedvals in prop::collection::vec(0.0f64..100.0, 40..80), lag in 0usize..8) {
        // Build a signal with real structure by cumulative jitter.
        let mut model: Vec<f64> = Vec::with_capacity(seedvals.len() * 2);
        for (i, v) in seedvals.iter().enumerate() {
            model.push(v + ((i / 5) % 3) as f64 * 40.0);
            model.push(v * 0.5 + ((i / 7) % 2) as f64 * 60.0);
        }
        prop_assume!(model.len() > lag + 20);
        let measure: Vec<f64> = model[lag..].to_vec();
        if let Some((peak, _)) = find_alignment(&measure, &model, 10) {
            prop_assert_eq!(peak.lag, lag);
        }
    }
}
