//! Emits `BENCH_perf.json`: before/after timings for the hot-path
//! kernels plus the experiment-harness wall times.
//!
//! The kernel pairs mirror `benches/perf_kernels.rs` but are measured
//! here with median-of-samples timing so the committed numbers are less
//! noise-prone than the smoke bench's single mean. Harness wall times
//! cannot be re-measured from inside this process (a full `run_all`
//! takes minutes), so they are passed in from actual runs:
//!
//! ```text
//! perf_report [--out PATH] [--run-all-before SECS] \
//!             [--run-all-after SECS] [--run-all-jobs4 SECS] \
//!             [--run-all-jobs N] [--run-all-shards N]
//! ```
//!
//! The intra-cell shard scaling curve *is* measured in-process (a small
//! megafleet cell at `--shards` 1/2/4/8): the cell is seconds, not
//! minutes, and measuring it here keeps the committed curve tied to the
//! host metadata (`host.cpus_logical`) that explains its shape — on a
//! single-CPU host the curve is flat-to-slightly-worse and that is the
//! correct result, not a regression.
//!
//! With no `--out`, the report is written to `BENCH_perf.json` in the
//! repository root.

use analysis::linreg::{LeastSquares, RollingLeastSquares};
use analysis::xcorr::{find_alignment, find_alignment_naive};
use ossim::ContextId;
use pc_bench::{alignment_signals, refit_rows, HeapQueue, NaiveContainers, NaiveTrace};
use power_containers::{
    BankConfig, CalibrationSample, CalibrationSet, ContainerManager, MetricVector, ModelBank,
    ModelKind, PowerModel, Recalibrator, RegimeKey, TraceRing, FEATURES,
};
use serde::Serialize;
use simkern::{EventQueue, SimDuration, SimTime};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// One before/after kernel pair.
#[derive(Serialize)]
struct KernelPair {
    name: String,
    before: String,
    after: String,
    before_ns: u64,
    after_ns: u64,
    speedup: f64,
}

/// Incremental-refit cost at one total-samples-seen count; flat
/// `refit_ns` across rows is the acceptance criterion.
#[derive(Serialize)]
struct RefitScaling {
    samples_seen: usize,
    refit_ns: u64,
}

/// Per-window metering cost of the model bank at one live-slot count,
/// next to the single-recalibrator baseline measured with the same
/// loop shape. Flat `bank_ns` across rows is the acceptance criterion:
/// slot selection is one lookup in a capacity-capped map plus an O(1)
/// CUSUM update, so the hot path must not scale with bank occupancy,
/// and the constant overhead over `single_ns` is the whole price of
/// regime awareness.
#[derive(Serialize)]
struct BankSelection {
    live_slots: usize,
    single_ns: u64,
    bank_ns: u64,
    overhead_ns: i64,
}

/// Telemetry tax on one hot kernel: the same loop measured bare, with
/// disabled-handle instrumentation at the emission sites (the production
/// default), and with a recording handle. The disabled overhead is the
/// number that must stay under 2%: every simulation pays it whether or
/// not anyone asked for a trace.
#[derive(Serialize)]
struct TelemetryTax {
    name: String,
    baseline_ns: u64,
    disabled_ns: u64,
    enabled_ns: u64,
    disabled_overhead: f64,
    enabled_overhead: f64,
}

/// Streaming-aggregator cost of the observability plane, per sample.
#[derive(Serialize)]
struct ObsAggregatorCost {
    name: String,
    ns_per_sample: u64,
}

/// Price of leaving the observability plane always on: per-sample
/// aggregator costs, plus the wall-time delta of a megafleet-shaped
/// cell run with the plane disabled vs enabled. `overhead_frac` under
/// 3% is the acceptance criterion — the plane must be cheap enough to
/// never turn off.
#[derive(Serialize)]
struct ObsOverhead {
    aggregators: Vec<ObsAggregatorCost>,
    megafleet_nodes: usize,
    megafleet_requests: u64,
    samples: usize,
    disabled_wall_ms: u64,
    always_on_wall_ms: u64,
    overhead_frac: f64,
}

/// Pick-next microbench for one scheduler: the cost of one dispatcher
/// decision cycle (quantum expiry → requeue → pick → run bookkeeping)
/// and of one enqueue/pick pair, both through the `Box<dyn Scheduler>`
/// the kernel actually dispatches through (so the virtual call is part
/// of the measured number).
#[derive(Serialize)]
struct SchedPickCost {
    sched: String,
    decision_ns: u64,
    enqueue_pick_ns: u64,
}

/// Megafleet-shaped cell wall time with every node's kernel booted on
/// one scheduler, next to the round-robin baseline. The RR row *is* the
/// trait-dispatch price — the same policy the kernel used to inline now
/// runs behind a vtable — and must stay within 2% of the policy rows'
/// envelope; priority/CFS deltas additionally price the policy itself
/// (different schedules do different work, so they are a report, not a
/// regression gate).
#[derive(Serialize)]
struct SchedCellWall {
    sched: String,
    cell_wall_ms: u64,
    delta_vs_rr: f64,
}

/// The scheduler-axis overhead report.
#[derive(Serialize)]
struct SchedOverhead {
    pick_cost: Vec<SchedPickCost>,
    megafleet_nodes: usize,
    megafleet_requests: u64,
    samples: usize,
    cells: Vec<SchedCellWall>,
}

/// Price of the elasticity controller when it has nothing to do: the
/// cost of one `Autoscaler::decide` on its steady-state hot path
/// (mid-band utilization, cold cap → `Hold`), and the wall-time delta
/// of a megafleet-shaped cell run fixed vs with the controller live
/// but pinned at its floor (min == initial fleet, so every evaluation
/// decides `Hold`). `overhead_frac` under 2% is the acceptance
/// criterion: elasticity must cost nothing while the fleet is
/// right-sized, because the controller runs at every tick barrier of
/// every autoscaled cell whether or not traffic ever moves.
#[derive(Serialize)]
struct AutoscaleOverhead {
    decide_ns: u64,
    megafleet_nodes: usize,
    megafleet_requests: u64,
    samples: usize,
    /// Controller evaluations the steady cell actually performed.
    cell_evals: u64,
    fixed_wall_ms: u64,
    steady_wall_ms: u64,
    /// End-to-end wall delta divided by `cell_evals` — the in-engine
    /// per-evaluation price including the fleet-power sample the
    /// controller reads (signed: scheduler noise can run negative).
    ns_per_eval_end_to_end: i64,
    overhead_frac: f64,
}

/// Wall times for the experiment harness, from real `run_all` runs.
#[derive(Serialize)]
struct Harness {
    run_all_serial_before_s: Option<f64>,
    run_all_serial_after_s: Option<f64>,
    run_all_jobs4_s: Option<f64>,
    /// `--jobs` used for the passed-in `run_all` wall times.
    run_all_jobs: Option<usize>,
    /// `--shards` used for the passed-in `run_all` wall times.
    run_all_shards: Option<usize>,
    note: String,
}

/// Where the numbers were measured. `cpus_logical` is the machine's
/// real logical-CPU count (`/proc/cpuinfo`); `cpus_available` is what
/// this process may actually use (affinity/cgroup-limited) and is the
/// number that bounds any `--jobs`/`--shards` wall-clock speedup.
#[derive(Serialize)]
struct HostMeta {
    cpus_logical: usize,
    cpus_available: usize,
}

/// One point of the intra-cell shard scaling curve.
#[derive(Serialize)]
struct ShardPoint {
    shards: usize,
    cell_wall_ms: u64,
    speedup_vs_serial: f64,
}

/// Wall time of one megafleet cell at increasing `--shards`, measured
/// in-process (median of `samples` runs per point). Outcomes are
/// byte-identical across the curve; only the wall time may move.
#[derive(Serialize)]
struct ShardCurve {
    nodes: usize,
    requests: u64,
    samples: usize,
    points: Vec<ShardPoint>,
}

/// The whole report.
#[derive(Serialize)]
struct Report {
    generated_by: String,
    host: HostMeta,
    samples_per_measurement: usize,
    kernels: Vec<KernelPair>,
    refit_cost_vs_samples_seen: Vec<RefitScaling>,
    bank_selection_vs_live_slots: Vec<BankSelection>,
    intra_cell_shard_scaling: ShardCurve,
    telemetry_tax: Vec<TelemetryTax>,
    obs_overhead: ObsOverhead,
    sched_overhead: SchedOverhead,
    autoscale_overhead: AutoscaleOverhead,
    harness: Harness,
}

const SAMPLES: usize = 15;

/// Median wall time of `SAMPLES` runs of `body`, in nanoseconds. `reps`
/// inner repetitions amortize timer overhead for sub-microsecond bodies.
fn median_ns<F: FnMut()>(reps: u32, mut body: F) -> u64 {
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                body();
            }
            start.elapsed().as_nanos() / u128::from(reps)
        })
        .collect();
    times.sort_unstable();
    times[SAMPLES / 2] as u64
}

fn pair(name: &str, before: &str, after: &str, before_ns: u64, after_ns: u64) -> KernelPair {
    KernelPair {
        name: name.to_string(),
        before: before.to_string(),
        after: after.to_string(),
        before_ns,
        after_ns,
        speedup: before_ns as f64 / after_ns.max(1) as f64,
    }
}

fn alignment_pair() -> KernelPair {
    let (measure, model) = alignment_signals(5000, 500, 137);
    let naive = median_ns(1, || {
        black_box(find_alignment_naive(black_box(&measure), black_box(&model), 500));
    });
    let fast = median_ns(1, || {
        black_box(find_alignment(black_box(&measure), black_box(&model), 500));
    });
    pair(
        "alignment_n5000_l500",
        "per-lag Pearson scan, O(N*L)",
        "prefix sums + packed-real FFT cross products",
        naive,
        fast,
    )
}

fn refit_pair() -> KernelPair {
    let rows = refit_rows(4096);
    let batch = median_ns(1, || {
        let mut ls = LeastSquares::new(8);
        for (row, y) in &rows {
            ls.add_sample(row, *y, 1.0);
        }
        black_box(ls.solve().expect("batch fit"));
    });
    let mut win = RollingLeastSquares::new(8, 256);
    for (row, y) in &rows {
        win.push(row, *y, 1.0);
    }
    let mut i = 0usize;
    let incremental = median_ns(64, || {
        let (row, y) = &rows[i % rows.len()];
        i += 1;
        win.push(row, *y, 1.0);
        black_box(win.solve().expect("incremental fit"));
    });
    pair(
        "refit_after_one_sample_n4096",
        "re-accumulate normal equations over all 4096 samples",
        "rank-1 push into cap-256 rolling window + O(k^3) solve",
        batch,
        incremental,
    )
}

fn refit_scaling() -> Vec<RefitScaling> {
    // The incremental refit must cost the same whether the recalibrator
    // has seen 256 samples or 16384: the window caps the state.
    [256usize, 1024, 4096, 16384]
        .into_iter()
        .map(|n| {
            let rows = refit_rows(n);
            let mut win = RollingLeastSquares::new(8, 256);
            for (row, y) in &rows {
                win.push(row, *y, 1.0);
            }
            let mut i = 0usize;
            let refit_ns = median_ns(64, || {
                let (row, y) = &rows[i % rows.len()];
                i += 1;
                win.push(row, *y, 1.0);
                black_box(win.solve().expect("fit"));
            });
            RefitScaling { samples_seen: n, refit_ns }
        })
        .collect()
}

/// Synthetic offline calibration under an exact linear law, so steady
/// feeding at the law's power keeps residuals (and the drift CUSUM) at
/// zero and the measured loops stay on the no-drift hot path.
fn metering_calibration() -> CalibrationSet {
    let mut set = CalibrationSet::new(26.1);
    let truth = [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 0.0, 0.0];
    for level in [0.25, 0.5, 0.75, 1.0f64] {
        for f in 0..6 {
            let mut a = [0.0; FEATURES];
            a[0] = level;
            a[f] = level;
            a[5] = 1.0;
            let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
            set.push(CalibrationSample {
                metrics: MetricVector::from_slice(&a),
                active_watts: watts,
            });
        }
    }
    set
}

fn bank_selection() -> Vec<BankSelection> {
    const KIND: ModelKind = ModelKind::WithChipShare;
    let set = metering_calibration();
    let initial = set.fit(KIND).expect("offline fit");
    let busy = MetricVector { core: 1.0, ins: 2.0, chipshare: 1.0, ..Default::default() };
    let watts = 8.0 + 2.0 * 3.0 + 5.6; // the law's power for `busy`
    let cadence = BankConfig::default().recalibrate_every;

    // Single-model baseline: the facility's per-window path without the
    // bank — mask, predict, accumulate, periodic refit.
    let mut recal = Recalibrator::new(&set, KIND);
    let single_ns = median_ns(64, || {
        let masked = PowerModel::mask_metrics(KIND, busy);
        let model = recal.last_good().unwrap_or(&initial);
        black_box(model.active_power(&masked));
        recal.add_online_sample(busy, watts);
        if recal.samples_since_fit() >= cadence {
            black_box(recal.refit().is_ok());
        }
    });

    // The measured key must stay the regime the bank already serves, so
    // every iteration exercises selection without ever switching.
    [1usize, 4, 16]
        .into_iter()
        .map(|live_slots| {
            let mut bank = ModelBank::new(&set, KIND, initial.clone(), BankConfig::default());
            let mut now = 0u64;
            let mut feed = |bank: &mut ModelBank, key: RegimeKey| {
                now += 1;
                bank.observe(key, busy, watts, SimTime::from_micros(now));
            };
            let served = RegimeKey { generation: 0, dvfs: 20, mix: 0 };
            feed(&mut bank, served); // first observation adopts the key
            for d in 0..(live_slots as u8 - 1) {
                // One observation creates a slot; alternating keys never
                // persist long enough for hysteresis to switch away.
                feed(&mut bank, RegimeKey { generation: 0, dvfs: 19 - d, mix: 0 });
                feed(&mut bank, served);
            }
            for _ in 0..40 {
                feed(&mut bank, served); // train the served slot to steady state
            }
            assert_eq!(bank.slot_count(), live_slots);
            assert_eq!(bank.active(), Some(served));
            let bank_ns = median_ns(64, || {
                now += 1;
                let key = bank.classify(0, 1.0, &busy);
                bank.observe(key, busy, watts, SimTime::from_micros(now));
                let masked = PowerModel::mask_metrics(KIND, busy);
                black_box(bank.current_model().active_power(&masked));
            });
            BankSelection {
                live_slots,
                single_ns,
                bank_ns,
                overhead_ns: bank_ns as i64 - single_ns as i64,
            }
        })
        .collect()
}

fn queue_pair() -> KernelPair {
    // A same-instant push/pop cascade (a handler scheduling follow-up
    // work at the instant being drained) over a backlog of future
    // timers: the heap pays O(log backlog) per op, the bucket O(1).
    const BURST: u64 = 64;
    const BACKLOG: u64 = 1024;
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut bucket: EventQueue<u64> = EventQueue::new();
    for i in 0..BACKLOG {
        heap.push(SimTime::from_secs(3600 + i), i);
        bucket.push(SimTime::from_secs(3600 + i), i);
    }
    let mut t = 0u64;
    let before = median_ns(16, || {
        t += 1;
        let at = SimTime::from_micros(t);
        heap.push(at, 0);
        heap.push(at, 1);
        black_box(heap.pop());
        for i in 0..BURST {
            heap.push(at, i);
            black_box(heap.pop());
        }
        black_box(heap.pop());
    });
    let after = median_ns(16, || {
        t += 1;
        let at = SimTime::from_micros(t);
        bucket.push(at, 0);
        bucket.push(at, 1);
        black_box(bucket.pop());
        for i in 0..BURST {
            bucket.push(at, i);
            black_box(bucket.pop());
        }
        black_box(bucket.pop());
    });
    pair(
        "event_queue_same_instant_cascade64",
        "binary heap with sequence tiebreak, O(log n) per op",
        "FIFO front bucket for the active instant, O(1) per op",
        before,
        after,
    )
}

fn trace_pair() -> KernelPair {
    const SLOTS: u64 = 4096;
    let mut naive = NaiveTrace::new();
    let slot = SimDuration::from_millis(1);
    let mut ring: TraceRing<f64> = TraceRing::new(slot, SLOTS as usize + 1);
    for ms in 1..=SLOTS {
        let w = 20.0 + (ms % 7) as f64;
        naive.add(SimTime::from_millis(ms), w, slot);
        ring.add(SimTime::from_millis(ms), w, slot);
    }
    let mut q = 0u64;
    let before = median_ns(16, || {
        q = q % (SLOTS - 20) + 1;
        let t0 = SimTime::from_millis(q);
        black_box(naive.mean_over_wall(t0, t0 + SimDuration::from_millis(20)));
    });
    let after = median_ns(16, || {
        q = q % (SLOTS - 20) + 1;
        let t0 = SimTime::from_millis(q);
        black_box(ring.mean_over_wall(t0, t0 + SimDuration::from_millis(20)));
    });
    pair(
        "trace_windowed_mean_4096_slots",
        "linear scan over retained samples per query",
        "cached prefix-sum cursor",
        before,
        after,
    )
}

fn container_pair() -> KernelPair {
    // The dispatcher's container lifecycle under churn: a working set of
    // live request containers, each op binds a fresh context, attributes
    // samples to a rotating window of live ones, and unbinds the oldest.
    // The before side pays a boxed allocation per create, a `std` hash
    // per touch and a free per release; the after side recycles slots
    // LIFO in SoA rows and hits the one-entry lookup cache on the
    // repeated-touch pattern.
    const LIVE: u64 = 1024;
    const TOUCH: u64 = 4;
    let events = hwsim::CounterBlock::default();
    let mut naive = NaiveContainers::new();
    let mut mgr = ContainerManager::new(false);
    for ctx in 0..LIVE {
        naive.bind(ctx, SimTime::ZERO);
        mgr.bind(ContextId(ctx), SimTime::ZERO);
    }
    let mut next = LIVE;
    let before = median_ns(16, || {
        let now = SimTime::from_micros(next);
        naive.bind(next, now);
        for k in 0..TOUCH {
            naive.attribute(next - k, 14.0, 1e-4, &events);
        }
        naive.unbind(next - LIVE);
        next += 1;
        black_box(naive.released());
    });
    let mut next2 = LIVE;
    let after = median_ns(16, || {
        let now = SimTime::from_micros(next2);
        mgr.bind(ContextId(next2), now);
        for k in 0..TOUCH {
            mgr.attribute(Some(ContextId(next2 - k)), 14.0, 1.0, 1e-4, &events, now);
        }
        mgr.unbind(ContextId(next2 - LIVE), now);
        next2 += 1;
        black_box(mgr.released_count());
    });
    pair(
        "container_churn_live1024",
        "boxed AoS records behind a std hash map, alloc/free per lifecycle",
        "slot-parallel SoA rows, LIFO slot recycling + lookup cache",
        before,
        after,
    )
}

fn scratch_pair() -> KernelPair {
    // The dispatcher's per-tick drain loop: collect the due subset of
    // the inflight table, then gather each request's reply segments.
    // The before shape allocates a fresh `Vec` for the due list and
    // another per request for its segments — the engine's old per-tick
    // garbage; the after shape drains into buffers reused across ticks.
    const INFLIGHT: usize = 256;
    const SEGS: usize = 4;
    let table: Vec<(u64, [u64; SEGS])> =
        (0..INFLIGHT as u64).map(|i| (i, [i, i ^ 7, i >> 1, i + 3])).collect();
    let mut tick = 0u64;
    let before = median_ns(16, || {
        tick += 1;
        let due: Vec<usize> =
            (0..INFLIGHT).filter(|i| (*i as u64 + tick).is_multiple_of(3)).collect();
        let mut sum = 0u64;
        for i in due {
            let segs: Vec<u64> = table[i].1.to_vec();
            sum += segs.iter().sum::<u64>();
        }
        black_box(sum);
    });
    let mut due_buf: Vec<usize> = Vec::new();
    let mut seg_buf: Vec<u64> = Vec::new();
    let mut tick2 = 0u64;
    let after = median_ns(16, || {
        tick2 += 1;
        due_buf.clear();
        due_buf.extend((0..INFLIGHT).filter(|i| (*i as u64 + tick2).is_multiple_of(3)));
        let mut sum = 0u64;
        for &i in &due_buf {
            seg_buf.clear();
            seg_buf.extend_from_slice(&table[i].1);
            sum += seg_buf.iter().sum::<u64>();
        }
        black_box(sum);
    });
    pair(
        "dispatch_drain_tick256",
        "fresh Vec per tick for the due list + per-request segment Vec",
        "scratch buffers cleared and reused across ticks",
        before,
        after,
    )
}

/// Measures one megafleet cell at `--shards` 1/2/4/8: median-of-3 wall
/// time per point, identical outcomes asserted across the curve.
fn shard_curve() -> ShardCurve {
    const NODES: usize = 48;
    const REQUESTS: u64 = 30_000;
    const RUNS: usize = 3;
    experiments::prewarm_calibrations();
    let mut lab = experiments::Lab::new();
    let base = experiments::megafleet::cell_config(NODES, REQUESTS);
    let cals = experiments::megafleet::cell_calibrations(&mut lab, &base);
    let mut serial_ms = 0u64;
    let mut reference: Option<String> = None;
    let points = [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            let mut walls: Vec<u128> = (0..RUNS)
                .map(|_| {
                    let mut cfg = experiments::megafleet::cell_config(NODES, REQUESTS);
                    cfg.shards = shards;
                    let t0 = Instant::now();
                    let outcome =
                        cluster::run_cluster(&mut cluster::SimpleBalance::new(), &cfg, &cals);
                    let wall = t0.elapsed();
                    let digest = format!("{outcome:?}");
                    match &reference {
                        None => reference = Some(digest),
                        Some(r) => assert_eq!(
                            *r, digest,
                            "shard curve outcome diverged at {shards} shards"
                        ),
                    }
                    wall.as_millis()
                })
                .collect();
            walls.sort_unstable();
            let cell_wall_ms = walls[RUNS / 2] as u64;
            if shards == 1 {
                serial_ms = cell_wall_ms;
            }
            ShardPoint {
                shards,
                cell_wall_ms,
                speedup_vs_serial: serial_ms as f64 / cell_wall_ms.max(1) as f64,
            }
        })
        .collect();
    ShardCurve { nodes: NODES, requests: REQUESTS, samples: RUNS, points }
}

fn tax(name: &str, baseline_ns: u64, disabled_ns: u64, enabled_ns: u64) -> TelemetryTax {
    let over = |ns: u64| ns as f64 / baseline_ns.max(1) as f64 - 1.0;
    TelemetryTax {
        name: name.to_string(),
        baseline_ns,
        disabled_ns,
        enabled_ns,
        disabled_overhead: over(disabled_ns),
        enabled_overhead: over(enabled_ns),
    }
}

/// Alignment-scan loop instrumented exactly like
/// `PowerContainerFacility::poll_meter`: an enabled-guard around the
/// scan event, score histogram and counter.
fn alignment_tax() -> TelemetryTax {
    let (measure, model) = alignment_signals(5000, 500, 137);
    let scan = |tele: &telemetry::Telemetry| {
        let (peak, curve) =
            find_alignment(black_box(&measure), black_box(&model), 500).expect("peak");
        if tele.enabled() {
            tele.instant(
                SimTime::from_millis(peak.lag as u64),
                "align",
                "scan",
                &[("delay_ms", (peak.lag as u64).into()), ("score", peak.score.into())],
            );
            tele.observe("align.score", peak.score);
            tele.add_count("align.scans", 1);
        }
        black_box(curve);
    };
    let baseline = median_ns(1, || {
        black_box(find_alignment(black_box(&measure), black_box(&model), 500));
    });
    let disabled_handle = telemetry::Telemetry::disabled();
    let disabled = median_ns(1, || scan(&disabled_handle));
    let enabled_handle = telemetry::Telemetry::recording();
    enabled_handle.register_histogram("align.score", &[0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99]);
    let enabled = median_ns(1, || scan(&enabled_handle));
    tax("alignment_n5000_l500", baseline, disabled, enabled)
}

/// Incremental-refit loop instrumented like the facility's refit path:
/// an enabled-guard around the refit event and counter.
fn refit_tax() -> TelemetryTax {
    let rows = refit_rows(4096);
    let mut loops: Vec<(RollingLeastSquares, usize)> =
        (0..3).map(|_| (RollingLeastSquares::new(8, 256), 0usize)).collect();
    for (win, _) in &mut loops {
        for (row, y) in &rows {
            win.push(row, *y, 1.0);
        }
    }
    let mut step = |li: usize, tele: Option<&telemetry::Telemetry>| {
        let (win, i) = &mut loops[li];
        let (row, y) = &rows[*i % rows.len()];
        *i += 1;
        win.push(row, *y, 1.0);
        black_box(win.solve().expect("fit"));
        if let Some(tele) = tele {
            if tele.enabled() {
                tele.instant(
                    SimTime::from_micros(*i as u64),
                    "recal",
                    "refit",
                    &[("n", (*i as u64).into())],
                );
                tele.add_count("recal.refits", 1);
            }
        }
    };
    let baseline = median_ns(64, || step(0, None));
    let disabled_handle = telemetry::Telemetry::disabled();
    let disabled = median_ns(64, || step(1, Some(&disabled_handle)));
    let enabled_handle = telemetry::Telemetry::recording();
    let enabled = median_ns(64, || step(2, Some(&enabled_handle)));
    tax("refit_incremental_n4096", baseline, disabled, enabled)
}

/// Measures the observability plane's price: ns/sample for each
/// bounded-memory aggregator on its hot path, and the end-to-end wall
/// delta of a megafleet-shaped cell with the plane off vs always on
/// (fastest of 9 interleaved rounds each; the enabled run must stay
/// alert-silent).
fn obs_overhead() -> ObsOverhead {
    use telemetry::obs::{BurnRateMonitor, QuantileSketch, Rollup, SloRules, WindowSample};
    let mut aggregators = Vec::new();

    // Quantile sketch: the per-completion latency/energy path.
    let mut sketch = QuantileSketch::new();
    let mut i = 0u64;
    let sketch_ns = median_ns(1024, || {
        i += 1;
        sketch.observe(1e-3 * ((i % 997) + 1) as f64);
    });
    black_box(sketch.quantile(0.99));
    aggregators
        .push(ObsAggregatorCost { name: "sketch_observe".to_string(), ns_per_sample: sketch_ns });

    // Rollup: the per-window time-series path.
    let mut rollup = Rollup::new(250_000_000);
    let mut j = 0u64;
    let rollup_ns = median_ns(1024, || {
        j += 1;
        rollup.observe(j * 1_000_000, (j % 100) as f64);
    });
    black_box(rollup.total_count());
    aggregators
        .push(ObsAggregatorCost { name: "rollup_observe".to_string(), ns_per_sample: rollup_ns });

    // Burn-rate monitor: all three rules over one window sample.
    let mut monitor = BurnRateMonitor::new(SloRules::standard(), 250_000_000);
    let mut k = 0u64;
    let monitor_ns = median_ns(1024, || {
        k += 1;
        monitor.observe_window(&WindowSample {
            end_ns: k * 250_000_000,
            active_j: 50.0 + (k % 7) as f64,
            attributed_j: 49.0 + (k % 5) as f64,
            completed: 100,
            cap_w: Some(400.0),
        });
    });
    black_box(monitor.alerts().len());
    aggregators.push(ObsAggregatorCost {
        name: "monitor_observe_window".to_string(),
        ns_per_sample: monitor_ns,
    });

    // End-to-end: the shard-curve megafleet cell, plane off vs on.
    // Rounds interleave the two variants and the fastest round wins:
    // min-of-N discards scheduler noise that a small-sample median would
    // fold into the ratio.
    const NODES: usize = 48;
    const REQUESTS: u64 = 30_000;
    const RUNS: usize = 9;
    let mut lab = experiments::Lab::new();
    let base = experiments::megafleet::cell_config(NODES, REQUESTS);
    let cals = experiments::megafleet::cell_calibrations(&mut lab, &base);
    let wall_us = |obs: Option<cluster::ObsConfig>| {
        let mut cfg = experiments::megafleet::cell_config(NODES, REQUESTS);
        cfg.obs = obs;
        let t0 = Instant::now();
        let outcome = cluster::run_cluster(&mut cluster::SimpleBalance::new(), &cfg, &cals);
        let wall = t0.elapsed();
        if let Some(o) = &outcome.obs {
            assert!(o.report.alerts.is_empty(), "clean cell must stay silent");
        }
        wall.as_micros()
    };
    let mut disabled_us = u128::MAX;
    let mut always_on_us = u128::MAX;
    for _ in 0..RUNS {
        disabled_us = disabled_us.min(wall_us(None));
        always_on_us = always_on_us.min(wall_us(Some(cluster::ObsConfig::standard())));
    }
    let disabled_wall_ms = (disabled_us / 1000) as u64;
    let always_on_wall_ms = (always_on_us / 1000) as u64;
    ObsOverhead {
        aggregators,
        megafleet_nodes: NODES,
        megafleet_requests: REQUESTS,
        samples: RUNS,
        disabled_wall_ms,
        always_on_wall_ms,
        overhead_frac: always_on_us as f64 / disabled_us.max(1) as f64 - 1.0,
    }
}

/// The three swept schedulers with their default configs, mirroring
/// `experiments::sched_sweep::swept_kinds` (pc-bench avoids the
/// experiments dependency cycle by listing them directly).
fn swept_kinds() -> Vec<ossim::SchedulerKind> {
    vec![
        ossim::SchedulerKind::RoundRobin,
        ossim::SchedulerKind::Priority(ossim::PriorityConfig::default()),
        ossim::SchedulerKind::Cfs(ossim::CfsConfig::default()),
    ]
}

/// Measures the scheduler axis: per-decision dispatch cost through the
/// trait object, and the megafleet-shaped cell's wall time per policy
/// (fastest of `RUNS` interleaved rounds, like the obs measurement).
fn sched_overhead() -> SchedOverhead {
    use ossim::{ContextId, TaskId};
    const CORES: usize = 4;
    const QUEUED: u32 = 16;

    let pick_cost = swept_kinds()
        .into_iter()
        .map(|kind| {
            let mut sched = kind.build(CORES, telemetry::Telemetry::disabled());
            let mut now_ns = 0u64;
            // Steady state: QUEUED runnable tasks per core, one current.
            for core in 0..CORES {
                for i in 0..QUEUED {
                    let t = TaskId(core as u32 * QUEUED + i);
                    sched.enqueue(core, t, Some(ContextId(u64::from(t.0 % 3))), SimTime::ZERO);
                }
            }
            let mut current: Vec<TaskId> = (0..CORES)
                .map(|core| {
                    let t = sched.pick_next(core, SimTime::ZERO).expect("queued task");
                    sched.on_run(core, t, Some(ContextId(u64::from(t.0 % 3))), SimTime::ZERO);
                    t
                })
                .collect();
            // One dispatcher decision: the kernel's quantum-expiry path
            // (requeue current, pick, stop/run bookkeeping).
            let mut core = 0usize;
            let decision_ns = median_ns(256, || {
                now_ns += 1_000_000; // one 1 ms quantum
                let now = SimTime::from_nanos(now_ns);
                let cur = current[core];
                let ctx = Some(ContextId(u64::from(cur.0 % 3)));
                if let Some(next) = sched.on_quantum_expired(core, cur, ctx, now) {
                    sched.on_stop(core, cur, now);
                    sched.on_run(core, next, Some(ContextId(u64::from(next.0 % 3))), now);
                    current[core] = next;
                }
                core = (core + 1) % CORES;
                black_box(sched.queue_len(core));
            });
            // One wake: enqueue a task and pick it (the block/unblock path).
            let mut sched2 = kind.build(1, telemetry::Telemetry::disabled());
            let mut t = 0u64;
            let enqueue_pick_ns = median_ns(256, || {
                t += 1;
                let now = SimTime::from_nanos(t * 1000);
                sched2.enqueue(0, TaskId((t % 64) as u32), Some(ContextId(t % 3)), now);
                black_box(sched2.pick_next(0, now));
            });
            SchedPickCost { sched: kind.name().to_string(), decision_ns, enqueue_pick_ns }
        })
        .collect();

    // End-to-end: the shard-curve megafleet cell under each scheduler,
    // interleaved rounds, fastest round per policy.
    const NODES: usize = 48;
    const REQUESTS: u64 = 30_000;
    const RUNS: usize = 9;
    let mut lab = experiments::Lab::new();
    let base = experiments::megafleet::cell_config(NODES, REQUESTS);
    let cals = experiments::megafleet::cell_calibrations(&mut lab, &base);
    let kinds = swept_kinds();
    let mut best: Vec<u128> = vec![u128::MAX; kinds.len()];
    for _ in 0..RUNS {
        for (i, kind) in kinds.iter().enumerate() {
            let mut cfg = experiments::megafleet::cell_config(NODES, REQUESTS);
            cfg.sched = vec![kind.clone()];
            let t0 = Instant::now();
            let outcome = cluster::run_cluster(&mut cluster::SimpleBalance::new(), &cfg, &cals);
            let wall = t0.elapsed();
            assert!(outcome.completed > 0, "sched cell must serve requests");
            best[i] = best[i].min(wall.as_micros());
        }
    }
    let rr_us = best[0];
    let cells = kinds
        .iter()
        .zip(&best)
        .map(|(kind, &us)| SchedCellWall {
            sched: kind.name().to_string(),
            cell_wall_ms: (us / 1000) as u64,
            delta_vs_rr: us as f64 / rr_us.max(1) as f64 - 1.0,
        })
        .collect();
    SchedOverhead {
        pick_cost,
        megafleet_nodes: NODES,
        megafleet_requests: REQUESTS,
        samples: RUNS,
        cells,
    }
}

/// Measures the elasticity controller's price at steady state: the
/// `decide` hot path alone, then the megafleet cell fixed vs floored
/// (interleaved rounds, fastest each, like the obs measurement).
fn autoscale_overhead() -> AutoscaleOverhead {
    use cluster::{AutoscaleConfig, Autoscaler, FleetSample, ScaleDecision};
    const NODES: usize = 48;
    const REQUESTS: u64 = 30_000;
    const RUNS: usize = 9;

    // The steady-state decision: utilization inside the hysteresis
    // band, cap cold, nothing landing — every call must hold.
    let mut scaler = Autoscaler::new(AutoscaleConfig::standard(NODES, NODES));
    let every = scaler.config().eval_every;
    let mut now = SimTime::ZERO;
    let decide_ns = median_ns(256, || {
        now += every;
        let (d, _) = scaler.decide(&FleetSample {
            now,
            active: NODES,
            landing: 0,
            draining: 0,
            standby: 0,
            util: 1.0,
            power_frac: 0.0,
        });
        assert_eq!(d, ScaleDecision::Hold, "steady sample must hold");
        black_box(d);
    });

    let mut lab = experiments::Lab::new();
    let base = experiments::megafleet::cell_config(NODES, REQUESTS);
    let cals = experiments::megafleet::cell_calibrations(&mut lab, &base);
    let mut cell_evals = 0u64;
    let wall_us = |floored: bool, cell_evals: &mut u64| {
        let mut cfg = experiments::megafleet::cell_config(NODES, REQUESTS);
        if floored {
            // min == initial: no standby to provision, the floor blocks
            // every drain — the controller runs but never resizes.
            cfg.autoscale = Some(AutoscaleConfig::standard(NODES, NODES));
        }
        let t0 = Instant::now();
        let outcome = cluster::run_cluster(&mut cluster::SimpleBalance::new(), &cfg, &cals);
        let wall = t0.elapsed();
        if floored {
            assert_eq!(
                (outcome.scale_outs, outcome.scale_ins),
                (0, 0),
                "floored controller must never resize"
            );
            assert!(outcome.autoscale_evals > 0, "controller must actually run");
            *cell_evals = outcome.autoscale_evals;
        }
        wall.as_micros()
    };
    let mut fixed_us = u128::MAX;
    let mut steady_us = u128::MAX;
    for _ in 0..RUNS {
        fixed_us = fixed_us.min(wall_us(false, &mut cell_evals));
        steady_us = steady_us.min(wall_us(true, &mut cell_evals));
    }
    AutoscaleOverhead {
        decide_ns,
        megafleet_nodes: NODES,
        megafleet_requests: REQUESTS,
        samples: RUNS,
        cell_evals,
        fixed_wall_ms: (fixed_us / 1000) as u64,
        steady_wall_ms: (steady_us / 1000) as u64,
        ns_per_eval_end_to_end: (steady_us as i64 - fixed_us as i64) * 1000
            / cell_evals.max(1) as i64,
        overhead_frac: steady_us as f64 / fixed_us.max(1) as f64 - 1.0,
    }
}

fn arg_secs(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn arg_count(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// The machine's real logical-CPU count, from `/proc/cpuinfo`; falls
/// back to `available_parallelism` where that file doesn't exist.
fn cpus_logical() -> usize {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json")
        });
    eprintln!("measuring kernels ({SAMPLES} samples each, median reported)...");
    let report = Report {
        generated_by: "pc-bench perf_report".to_string(),
        host: HostMeta {
            cpus_logical: cpus_logical(),
            cpus_available: std::thread::available_parallelism().map_or(1, |n| n.get()),
        },
        samples_per_measurement: SAMPLES,
        kernels: vec![
            alignment_pair(),
            refit_pair(),
            queue_pair(),
            trace_pair(),
            container_pair(),
            scratch_pair(),
        ],
        refit_cost_vs_samples_seen: refit_scaling(),
        bank_selection_vs_live_slots: bank_selection(),
        intra_cell_shard_scaling: shard_curve(),
        telemetry_tax: vec![alignment_tax(), refit_tax()],
        obs_overhead: obs_overhead(),
        sched_overhead: sched_overhead(),
        autoscale_overhead: autoscale_overhead(),
        harness: Harness {
            run_all_serial_before_s: arg_secs(&args, "--run-all-before"),
            run_all_serial_after_s: arg_secs(&args, "--run-all-after"),
            run_all_jobs4_s: arg_secs(&args, "--run-all-jobs4"),
            run_all_jobs: arg_count(&args, "--run-all-jobs"),
            run_all_shards: arg_count(&args, "--run-all-shards"),
            note: "harness times are wall-clock runs of `run_all` at full scale; \
                   the before run predates fault_sweep (~14 s of the after total), \
                   so the like-for-like serial speedup is larger than the raw ratio; \
                   --jobs/--shards speedup requires multiple hardware threads \
                   (see host.cpus_available)"
                .to_string(),
        },
    };
    for k in &report.kernels {
        eprintln!(
            "  {:<36} before {:>10} ns  after {:>10} ns  ({:.1}x)",
            k.name, k.before_ns, k.after_ns, k.speedup
        );
    }
    for r in &report.refit_cost_vs_samples_seen {
        eprintln!("  refit after {:>6} samples seen: {:>8} ns", r.samples_seen, r.refit_ns);
    }
    for b in &report.bank_selection_vs_live_slots {
        eprintln!(
            "  bank window at {:>2} live slots: {:>6} ns (single {:>6} ns, {:+} ns)",
            b.live_slots, b.bank_ns, b.single_ns, b.overhead_ns
        );
    }
    for p in &report.intra_cell_shard_scaling.points {
        eprintln!(
            "  megafleet cell ({} nodes, {} req) at {} shard(s): {:>6} ms ({:.2}x)",
            report.intra_cell_shard_scaling.nodes,
            report.intra_cell_shard_scaling.requests,
            p.shards,
            p.cell_wall_ms,
            p.speedup_vs_serial
        );
    }
    for t in &report.telemetry_tax {
        eprintln!(
            "  telemetry tax {:<26} disabled {:>+6.2}%  enabled {:>+6.2}%",
            t.name,
            t.disabled_overhead * 100.0,
            t.enabled_overhead * 100.0
        );
    }
    for a in &report.obs_overhead.aggregators {
        eprintln!("  obs aggregator {:<24} {:>6} ns/sample", a.name, a.ns_per_sample);
    }
    eprintln!(
        "  obs always-on megafleet cell: {} ms vs {} ms disabled ({:+.2}%)",
        report.obs_overhead.always_on_wall_ms,
        report.obs_overhead.disabled_wall_ms,
        report.obs_overhead.overhead_frac * 100.0
    );
    for p in &report.sched_overhead.pick_cost {
        eprintln!(
            "  sched {:<8} decision {:>5} ns  enqueue+pick {:>5} ns",
            p.sched, p.decision_ns, p.enqueue_pick_ns
        );
    }
    for c in &report.sched_overhead.cells {
        eprintln!(
            "  sched megafleet cell {:<8} {:>6} ms ({:+.2}% vs rr)",
            c.sched,
            c.cell_wall_ms,
            c.delta_vs_rr * 100.0
        );
    }
    let a = &report.autoscale_overhead;
    eprintln!(
        "  autoscale decide {} ns; floored megafleet cell {} ms vs {} ms fixed \
         ({:+.2}%, {} evals, {:+} ns/eval end-to-end)",
        a.decide_ns,
        a.steady_wall_ms,
        a.fixed_wall_ms,
        a.overhead_frac * 100.0,
        a.cell_evals,
        a.ns_per_eval_end_to_end
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {}", out.display());
}
