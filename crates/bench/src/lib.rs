//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches quantify the costs the paper's §3.5 reports (container
//! maintenance, recalibration, duty-cycle control) plus the simulation
//! substrate's own throughput, which bounds how fast the experiment
//! harness can regenerate figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hwsim::{ActivityProfile, CoreId, Machine, MachineSpec};
use power_containers::{
    Approach, CalibrationSample, CalibrationSet, FacilityConfig, MetricVector, ModelKind,
    PowerContainerFacility, PowerModel,
};

/// A synthetic calibration set good enough for benchmarking fits.
pub fn synthetic_calibration() -> CalibrationSet {
    let mut set = CalibrationSet::new(26.1);
    for i in 1..=48 {
        let u = i as f64 / 48.0;
        let m = MetricVector {
            core: u,
            ins: 2.0 * u,
            float: 0.4 * u,
            cache: 0.06 * u,
            mem: 0.03 * u,
            chipshare: 1.0,
            disk: 0.0,
            net: 0.0,
        };
        set.push(CalibrationSample { metrics: m, active_watts: 12.0 * u + 5.6 });
    }
    set
}

/// A calibrated chip-share model for the SandyBridge spec.
pub fn bench_model() -> PowerModel {
    synthetic_calibration()
        .fit(ModelKind::WithChipShare)
        .expect("benchmark calibration fit")
}

/// A facility + machine pair with core 0 busy, ready for hook-level
/// benchmarking.
pub fn facility_fixture() -> (PowerContainerFacility, Machine) {
    let spec = MachineSpec::sandybridge();
    let facility = PowerContainerFacility::new(
        bench_model(),
        None,
        &spec,
        FacilityConfig {
            approach: Approach::ChipShare,
            retain_records: false,
            ..FacilityConfig::default()
        },
    );
    let mut machine = Machine::new(spec, 1);
    machine.set_running(CoreId(0), Some(ActivityProfile::stress()));
    (facility, machine)
}
