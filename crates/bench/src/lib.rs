//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches quantify the costs the paper's §3.5 reports (container
//! maintenance, recalibration, duty-cycle control) plus the simulation
//! substrate's own throughput, which bounds how fast the experiment
//! harness can regenerate figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hwsim::{ActivityProfile, CoreId, Machine, MachineSpec};
use power_containers::{
    Approach, CalibrationSample, CalibrationSet, FacilityConfig, MetricVector, ModelKind,
    PowerContainerFacility, PowerModel,
};
use simkern::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A synthetic calibration set good enough for benchmarking fits.
pub fn synthetic_calibration() -> CalibrationSet {
    let mut set = CalibrationSet::new(26.1);
    for i in 1..=48 {
        let u = i as f64 / 48.0;
        let m = MetricVector {
            core: u,
            ins: 2.0 * u,
            float: 0.4 * u,
            cache: 0.06 * u,
            mem: 0.03 * u,
            chipshare: 1.0,
            disk: 0.0,
            net: 0.0,
        };
        set.push(CalibrationSample { metrics: m, active_watts: 12.0 * u + 5.6 });
    }
    set
}

/// A calibrated chip-share model for the SandyBridge spec.
pub fn bench_model() -> PowerModel {
    synthetic_calibration()
        .fit(ModelKind::WithChipShare)
        .expect("benchmark calibration fit")
}

/// Deterministic xorshift64* stream for building bench signals without
/// pulling in an RNG crate.
pub struct XorShift(u64);

impl XorShift {
    /// Creates a stream from a non-zero seed.
    pub fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    /// Next value uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A (measure, model) signal pair with real structure and a known lag,
/// sized for the alignment microbenchmarks.
pub fn alignment_signals(n: usize, max_lag: usize, true_lag: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = XorShift::new(0x5EED_0001);
    let model: Vec<f64> = (0..n + max_lag)
        .map(|i| {
            let square = if (i / 40) % 2 == 0 { 35.0 } else { 12.0 };
            square + 4.0 * ((i % 17) as f64 / 17.0) + rng.next_f64()
        })
        .collect();
    let measure: Vec<f64> = model[true_lag..true_lag + n].to_vec();
    (measure, model)
}

/// Random regression rows (8 features, like the Eq. 2 metric vector)
/// for the refit benchmarks.
pub fn refit_rows(n: usize) -> Vec<(Vec<f64>, f64)> {
    let mut rng = XorShift::new(0x5EED_0002);
    (0..n)
        .map(|_| {
            let row: Vec<f64> = (0..8).map(|_| rng.next_f64() * 4.0).collect();
            let y = row.iter().enumerate().map(|(j, x)| x * (j + 1) as f64).sum::<f64>()
                + rng.next_f64() * 0.1;
            (row, y)
        })
        .collect()
}

/// Reference ("before") event queue: a plain binary heap with an
/// insertion sequence number for FIFO stability, the shape the
/// simulation substrate used before the same-instant front bucket.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    events: Vec<Option<E>>,
    seq: u64,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> HeapQueue<E> {
        HeapQueue { heap: BinaryHeap::new(), events: Vec::new(), seq: 0 }
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let id = self.events.len() as u64;
        self.events.push(Some(event));
        self.heap.push(Reverse((at, self.seq, id)));
        self.seq += 1;
    }

    /// Pops the earliest event, FIFO within an instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, id)) = self.heap.pop()?;
        Some((at, self.events[id as usize].take().expect("event present")))
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

/// Reference ("before") trace store: windowed integrals by linear scan
/// over the retained samples, the cost shape `TraceRing` had before the
/// cached prefix-sum cursor.
pub struct NaiveTrace {
    samples: Vec<(SimTime, f64, SimDuration)>,
}

impl NaiveTrace {
    /// Creates an empty trace.
    pub fn new() -> NaiveTrace {
        NaiveTrace { samples: Vec::new() }
    }

    /// Records `value` covering `[t - dt, t)`.
    pub fn add(&mut self, t: SimTime, value: f64, dt: SimDuration) {
        self.samples.push((t, value, dt));
    }

    /// Mean of the recorded values whose end times fall in `[t0, t1)`,
    /// weighted by their coverage — a full scan per query.
    pub fn mean_over_wall(&self, t0: SimTime, t1: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut wall = 0.0;
        for &(t, v, dt) in &self.samples {
            if t >= t0 && t < t1 {
                let secs = dt.as_nanos() as f64 * 1e-9;
                sum += v * secs;
                wall += secs;
            }
        }
        (wall > 0.0).then(|| sum / wall)
    }
}

impl Default for NaiveTrace {
    fn default() -> Self {
        NaiveTrace::new()
    }
}

/// Reference ("before") container store: one boxed allocation per
/// container behind a `std` hash map, released containers freed back to
/// the allocator — the cost shape `ContainerManager` had before the
/// slot-parallel SoA rows, LIFO slot recycling and the one-entry lookup
/// cache. Semantics mirror the manager's bind/attribute/unbind cycle so
/// the two sides of the kernel pair do identical accounting work.
pub struct NaiveContainers {
    map: std::collections::HashMap<u64, Box<NaiveContainer>>,
    total_request_energy_j: f64,
    released: u64,
}

/// Heap-allocated per-container state for [`NaiveContainers`] — the
/// AoS record the SoA rows replaced.
pub struct NaiveContainer {
    /// Tasks currently bound.
    pub refcount: u32,
    /// Binding time.
    pub created_at: SimTime,
    /// Attributed energy.
    pub energy_j: f64,
    /// Attributed busy time.
    pub busy_seconds: f64,
    /// Cumulative event counts.
    pub events: hwsim::CounterBlock,
}

impl NaiveContainers {
    /// Creates an empty store.
    pub fn new() -> NaiveContainers {
        NaiveContainers {
            map: std::collections::HashMap::new(),
            total_request_energy_j: 0.0,
            released: 0,
        }
    }

    /// Binds a task to `ctx`, allocating the container on first sight.
    pub fn bind(&mut self, ctx: u64, now: SimTime) {
        self.map
            .entry(ctx)
            .or_insert_with(|| {
                Box::new(NaiveContainer {
                    refcount: 0,
                    created_at: now,
                    energy_j: 0.0,
                    busy_seconds: 0.0,
                    events: hwsim::CounterBlock::default(),
                })
            })
            .refcount += 1;
    }

    /// Attributes one sampled interval to `ctx`.
    pub fn attribute(
        &mut self,
        ctx: u64,
        watts: f64,
        dt_secs: f64,
        events: &hwsim::CounterBlock,
    ) {
        if let Some(c) = self.map.get_mut(&ctx) {
            self.total_request_energy_j += watts * dt_secs;
            c.energy_j += watts * dt_secs;
            c.busy_seconds += dt_secs;
            c.events.accumulate(events);
        }
    }

    /// Unbinds one task; the container is freed when the last unbinds.
    pub fn unbind(&mut self, ctx: u64) {
        if let Some(c) = self.map.get_mut(&ctx) {
            c.refcount = c.refcount.saturating_sub(1);
            if c.refcount == 0 {
                self.map.remove(&ctx);
                self.released += 1;
            }
        }
    }

    /// Containers released so far (keeps the accounting observable).
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Total energy attributed so far.
    pub fn total_request_energy_j(&self) -> f64 {
        self.total_request_energy_j
    }
}

impl Default for NaiveContainers {
    fn default() -> Self {
        NaiveContainers::new()
    }
}

/// A facility + machine pair with core 0 busy, ready for hook-level
/// benchmarking.
pub fn facility_fixture() -> (PowerContainerFacility, Machine) {
    let spec = MachineSpec::sandybridge();
    let facility = PowerContainerFacility::new(
        bench_model(),
        None,
        &spec,
        FacilityConfig {
            approach: Approach::ChipShare,
            retain_records: false,
            ..FacilityConfig::default()
        },
    );
    let mut machine = Machine::new(spec, 1);
    machine.set_running(CoreId(0), Some(ActivityProfile::stress()));
    (facility, machine)
}
