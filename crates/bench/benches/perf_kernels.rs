//! Before/after benchmarks for the incremental hot-path kernels.
//!
//! Each pair times the reference ("before") formulation the repo used
//! previously against the current fast path:
//!
//! * `alignment_naive` / `alignment_fast` — O(N·L) per-lag Pearson scan
//!   vs the prefix-sum + FFT correlation curve, at N=5000, L=500.
//! * `refit_batch` / `refit_incremental` — from-scratch normal-equation
//!   accumulation over all retained samples vs one rank-1 push into the
//!   rolling window followed by an O(k³) solve.
//! * `event_queue_heap` / `event_queue_bucket` — a same-instant
//!   push/pop cascade over a backlog of future timers: every op pays
//!   O(log backlog) in a binary heap, O(1) in the FIFO front bucket.
//! * `trace_scan` / `trace_cursor` — linear-scan windowed means vs the
//!   cached prefix-sum cursor on a sliding query.

use analysis::linreg::{LeastSquares, RollingLeastSquares};
use analysis::xcorr::{find_alignment, find_alignment_naive};
use criterion::{criterion_group, criterion_main, Criterion};
use pc_bench::{alignment_signals, refit_rows, HeapQueue, NaiveTrace};
use power_containers::TraceRing;
use simkern::{EventQueue, SimDuration, SimTime};
use std::hint::black_box;

const ALIGN_N: usize = 5000;
const ALIGN_LAG: usize = 500;

fn alignment_naive(c: &mut Criterion) {
    let (measure, model) = alignment_signals(ALIGN_N, ALIGN_LAG, 137);
    c.bench_function("alignment_naive_n5000_l500", |b| {
        b.iter(|| black_box(find_alignment_naive(&measure, &model, ALIGN_LAG)))
    });
}

fn alignment_fast(c: &mut Criterion) {
    let (measure, model) = alignment_signals(ALIGN_N, ALIGN_LAG, 137);
    c.bench_function("alignment_fast_n5000_l500", |b| {
        b.iter(|| black_box(find_alignment(&measure, &model, ALIGN_LAG)))
    });
}

fn refit_batch(c: &mut Criterion) {
    let rows = refit_rows(4096);
    c.bench_function("refit_batch_n4096", |b| {
        b.iter(|| {
            let mut ls = LeastSquares::new(8);
            for (row, y) in &rows {
                ls.add_sample(row, *y, 1.0);
            }
            black_box(ls.solve().expect("batch fit"))
        })
    });
}

fn refit_incremental(c: &mut Criterion) {
    let rows = refit_rows(4096);
    let mut win = RollingLeastSquares::new(8, 256);
    for (row, y) in &rows {
        win.push(row, *y, 1.0);
    }
    let mut i = 0usize;
    c.bench_function("refit_incremental_cap256", |b| {
        b.iter(|| {
            let (row, y) = &rows[i % rows.len()];
            i += 1;
            win.push(row, *y, 1.0);
            black_box(win.solve().expect("incremental fit"))
        })
    });
}

const BURST: usize = 64;
/// Pending future timers, like a kernel with many scheduled interrupts.
const BACKLOG: u64 = 1024;

fn event_queue_heap(c: &mut Criterion) {
    let mut q: HeapQueue<u64> = HeapQueue::new();
    for i in 0..BACKLOG {
        q.push(SimTime::from_secs(3600 + i), i);
    }
    let mut t = 0u64;
    c.bench_function("event_queue_heap_cascade64", |b| {
        b.iter(|| {
            t += 1;
            let at = SimTime::from_micros(t);
            q.push(at, 0);
            q.push(at, 1);
            black_box(q.pop());
            for i in 0..BURST as u64 {
                q.push(at, i);
                black_box(q.pop());
            }
            black_box(q.pop());
        })
    });
}

fn event_queue_bucket(c: &mut Criterion) {
    let mut q: EventQueue<u64> = EventQueue::new();
    for i in 0..BACKLOG {
        q.push(SimTime::from_secs(3600 + i), i);
    }
    let mut t = 0u64;
    c.bench_function("event_queue_bucket_cascade64", |b| {
        b.iter(|| {
            t += 1;
            let at = SimTime::from_micros(t);
            q.push(at, 0);
            q.push(at, 1);
            black_box(q.pop());
            for i in 0..BURST as u64 {
                q.push(at, i);
                black_box(q.pop());
            }
            black_box(q.pop());
        })
    });
}

const TRACE_SLOTS: u64 = 4096;

fn trace_scan(c: &mut Criterion) {
    let mut trace = NaiveTrace::new();
    for ms in 1..=TRACE_SLOTS {
        trace.add(SimTime::from_millis(ms), 20.0 + (ms % 7) as f64, SimDuration::from_millis(1));
    }
    let mut q = 0u64;
    c.bench_function("trace_scan_window20", |b| {
        b.iter(|| {
            q = q % (TRACE_SLOTS - 20) + 1;
            let t0 = SimTime::from_millis(q);
            black_box(trace.mean_over_wall(t0, t0 + SimDuration::from_millis(20)))
        })
    });
}

fn trace_cursor(c: &mut Criterion) {
    let slot = SimDuration::from_millis(1);
    let mut trace: TraceRing<f64> = TraceRing::new(slot, TRACE_SLOTS as usize + 1);
    for ms in 1..=TRACE_SLOTS {
        trace.add(SimTime::from_millis(ms), 20.0 + (ms % 7) as f64, slot);
    }
    let mut q = 0u64;
    c.bench_function("trace_cursor_window20", |b| {
        b.iter(|| {
            q = q % (TRACE_SLOTS - 20) + 1;
            let t0 = SimTime::from_millis(q);
            black_box(trace.mean_over_wall(t0, t0 + SimDuration::from_millis(20)))
        })
    });
}

criterion_group!(
    benches,
    alignment_naive,
    alignment_fast,
    refit_batch,
    refit_incremental,
    event_queue_heap,
    event_queue_bucket,
    trace_scan,
    trace_cursor
);
criterion_main!(benches);
