//! Simulation substrate throughput.
//!
//! * `machine_advance` — integrating 1 ms of hardware state.
//! * `kernel_busy_ms` — one millisecond of a fully loaded 4-core kernel
//!   (context switches, PMU interrupts, meter windows).
//! * `socket_round_trip` — tagged message delivery through the kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hwsim::{ActivityProfile, CoreId, Machine, MachineSpec};
use ossim::{FnProgram, Kernel, KernelConfig, Op};
use simkern::{SimDuration, SimTime};
use std::hint::black_box;

fn machine_advance(c: &mut Criterion) {
    let mut machine = Machine::new(MachineSpec::sandybridge(), 1);
    for core in 0..4 {
        machine.set_running(CoreId(core), Some(ActivityProfile::stress()));
    }
    let mut t = SimTime::ZERO;
    c.bench_function("machine_advance_1ms", |b| {
        b.iter(|| {
            t += SimDuration::from_millis(1);
            machine.advance_to(t);
            black_box(machine.true_energy_j());
        })
    });
}

fn kernel_busy_ms(c: &mut Criterion) {
    let mut kernel = Kernel::new(
        Machine::new(MachineSpec::sandybridge(), 1),
        KernelConfig::default(),
    );
    for _ in 0..8 {
        kernel.spawn(
            Box::new(FnProgram::new(|_pc| Op::Compute {
                cycles: 2.0e6,
                profile: ActivityProfile::cache_heavy(),
            })),
            None,
        );
    }
    let mut t = SimTime::ZERO;
    c.bench_function("kernel_busy_1ms", |b| {
        b.iter(|| {
            t += SimDuration::from_millis(1);
            kernel.run_until(t);
            black_box(kernel.stats());
        })
    });
}

fn socket_round_trip(c: &mut Criterion) {
    let mut kernel = Kernel::new(
        Machine::new(MachineSpec::sandybridge(), 1),
        KernelConfig::default(),
    );
    let (tx, rx) = kernel.new_socket_pair();
    // Echo server: receive, send back.
    let mut received = false;
    kernel.spawn(
        Box::new(FnProgram::new(move |_pc| {
            received = !received;
            if received {
                Op::Recv { socket: rx }
            } else {
                Op::Send { socket: rx, bytes: 64, payload: 0 }
            }
        })),
        None,
    );
    let ctx = kernel.alloc_context();
    c.bench_function("socket_round_trip", |b| {
        b.iter(|| {
            kernel.inject_message(tx, 64, Some(ctx), 1);
            let t = kernel.now() + SimDuration::from_micros(50);
            kernel.run_until(t);
            black_box(kernel.buffered_segments(tx));
        })
    });
}

criterion_group!(benches, machine_advance, kernel_busy_ms, socket_round_trip);
criterion_main!(benches);
