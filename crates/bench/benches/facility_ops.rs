//! Facility hot-path costs — the §3.5 overhead numbers.
//!
//! * `maintenance_op` — one container-maintenance operation (counter
//!   read, metrics, model evaluation, statistics update). Paper: 0.95 µs.
//! * `recalibration` — one least-squares model refit. Paper: 16 µs.
//! * `duty_set` — one duty-cycle adjustment. Paper: < 0.2 µs.
//! * `container_attribute` — one per-interval container update.

use criterion::{criterion_group, criterion_main, Criterion};
use hwsim::{CoreId, CounterBlock, DutyCycle};
use ossim::{ContextId, KernelApi, KernelHooks, TaskId};
use pc_bench::{facility_fixture, synthetic_calibration};
use power_containers::{ContainerManager, MetricVector, ModelKind, Recalibrator};
use simkern::{SimDuration, SimTime};
use std::hint::black_box;

fn maintenance_op(c: &mut Criterion) {
    let (mut facility, mut machine) = facility_fixture();
    let running = vec![Some(TaskId(0)), None, None, None];
    let contexts = vec![Some(ContextId(1))];
    {
        let mut api = KernelApi::new(SimTime::ZERO, &mut machine, &running, &contexts);
        facility.on_boot(&mut api);
    }
    let mut t = SimTime::ZERO;
    c.bench_function("maintenance_op", |b| {
        b.iter(|| {
            t += SimDuration::from_millis(1);
            machine.advance_to(t);
            let mut api = KernelApi::new(t, &mut machine, &running, &contexts);
            facility.on_pmu_interrupt(&mut api, CoreId(0), TaskId(0));
        })
    });
}

fn recalibration(c: &mut Criterion) {
    let set = synthetic_calibration();
    let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
    let m = MetricVector { core: 1.0, ins: 2.0, chipshare: 1.0, ..MetricVector::default() };
    for _ in 0..64 {
        r.add_online_sample(m, 18.0);
    }
    c.bench_function("recalibration", |b| {
        b.iter(|| black_box(r.refit().expect("refit")))
    });
}

fn duty_set(c: &mut Criterion) {
    let (_, mut machine) = facility_fixture();
    let levels = [DutyCycle::FULL, DutyCycle::new(4).expect("valid")];
    let mut i = 0usize;
    c.bench_function("duty_set", |b| {
        b.iter(|| {
            i += 1;
            machine.set_duty_cycle(CoreId(0), levels[i & 1]);
            black_box(&machine);
        })
    });
}

fn container_attribute(c: &mut Criterion) {
    let mut manager = ContainerManager::new(false);
    let ctx = ContextId(1);
    manager.bind(ctx, SimTime::ZERO);
    let events = CounterBlock {
        elapsed_cycles: 3.1e6,
        nonhalt_cycles: 3.1e6,
        instructions: 6e6,
        ..CounterBlock::default()
    };
    c.bench_function("container_attribute", |b| {
        b.iter(|| {
            manager.attribute(Some(ctx), 12.0, 1.0, 1e-3, black_box(&events), SimTime::ZERO);
        })
    });
}

criterion_group!(benches, maintenance_op, recalibration, duty_set, container_attribute);
criterion_main!(benches);
