//! Numerical kernel costs.
//!
//! * `model_eval` — one Eq. 2 evaluation.
//! * `chipshare_eq3` — one Eq. 3 chip-share estimate.
//! * `least_squares_fit` — fitting the 8-coefficient model.
//! * `alignment_scan` — a full delay scan over a trace ring.
//! * `histogram_record` — distribution bookkeeping.

use criterion::{criterion_group, criterion_main, Criterion};
use analysis::hist::Histogram;
use hwsim::{CoreId, MachineSpec};
use pc_bench::{bench_model, synthetic_calibration};
use power_containers::{
    DelayEstimator, MetricVector, ModelKind, Reading, SampleBoard, TraceRing,
};
use simkern::{SimDuration, SimTime};
use std::hint::black_box;

fn model_eval(c: &mut Criterion) {
    let model = bench_model();
    let m = MetricVector {
        core: 1.0,
        ins: 2.2,
        float: 0.3,
        cache: 0.05,
        mem: 0.03,
        chipshare: 0.25,
        disk: 0.0,
        net: 0.0,
    };
    c.bench_function("model_eval", |b| b.iter(|| black_box(model.active_power(black_box(&m)))));
}

fn chipshare_eq3(c: &mut Criterion) {
    let spec = MachineSpec::sandybridge();
    let mut board = SampleBoard::new(4);
    for core in 0..4 {
        board.publish(CoreId(core), 0.8, SimTime::ZERO);
    }
    c.bench_function("chipshare_eq3", |b| {
        b.iter(|| black_box(board.chipshare(&spec, CoreId(0), 0.8, |_| false)))
    });
}

fn least_squares_fit(c: &mut Criterion) {
    let set = synthetic_calibration();
    c.bench_function("least_squares_fit", |b| {
        b.iter(|| black_box(set.fit(ModelKind::WithChipShare).expect("fit")))
    });
}

fn alignment_scan(c: &mut Criterion) {
    let slot = SimDuration::from_millis(1);
    let mut model = TraceRing::new(slot, 4096);
    let mut est = DelayEstimator::new(slot, SimDuration::from_millis(20), slot, 128);
    for ms in 0..2000u64 {
        let w = if (ms / 25) % 2 == 0 { 40.0 } else { 15.0 };
        model.add(
            SimTime::from_millis(ms) + SimDuration::from_micros(500),
            w,
            SimDuration::from_millis(1),
        );
        if ms >= 1800 {
            est.push(Reading { arrived_at: SimTime::from_millis(ms + 2), watts: w });
        }
    }
    c.bench_function("alignment_scan", |b| {
        b.iter(|| black_box(est.estimate(&model).expect("alignment")))
    });
}

fn histogram_record(c: &mut Criterion) {
    let mut h = Histogram::new(0.0, 25.0, 50);
    let mut x = 0.0f64;
    c.bench_function("histogram_record", |b| {
        b.iter(|| {
            x = (x + 0.37) % 25.0;
            h.record(black_box(x));
        })
    });
}

criterion_group!(
    benches,
    model_eval,
    chipshare_eq3,
    least_squares_fit,
    alignment_scan,
    histogram_record
);
criterion_main!(benches);
