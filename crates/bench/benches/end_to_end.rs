//! End-to-end figure-harness costs: how long one simulated second of
//! each experiment workload takes to regenerate. One bench per paper
//! artifact family:
//!
//! * `fig1_power_steps` — the Fig. 1 spinner-step measurement.
//! * `fig5_workload_second` — one simulated second of an application at
//!   peak load with full facility accounting (Figs. 5–9 all reduce to
//!   this inner loop).
//! * `fig8_validation_second` — the same with the recalibrated approach
//!   (Fig. 8/10's inner loop).
//! * `fig14_cluster_second` — one simulated second of the two-machine
//!   cluster (Fig. 13/14 and Table 1's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use cluster::{run_cluster, ClusterConfig, SimpleBalance};
use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{Kernel, KernelConfig, Op, ScriptProgram};
use pc_bench::synthetic_calibration;
use power_containers::{Approach, ModelKind};
use simkern::{SimDuration, SimTime};
use std::hint::black_box;
use workloads::{run_app, LoadLevel, MachineCalibration, RunConfig, WorkloadKind};

fn quick_calibration() -> MachineCalibration {
    let set = synthetic_calibration();
    MachineCalibration {
        model_core_only: set.fit(ModelKind::CoreEventsOnly).expect("fit"),
        model_chipshare: set.fit(ModelKind::WithChipShare).expect("fit"),
        idle_by_meter: [("wattsup", 26.1), ("on-chip", 1.5)].into_iter().collect(),
        set,
    }
}

fn fig1_power_steps(c: &mut Criterion) {
    c.bench_function("fig1_power_steps", |b| {
        b.iter(|| {
            let mut kernel = Kernel::new(
                Machine::new(MachineSpec::sandybridge(), 1),
                KernelConfig::default(),
            );
            for _ in 0..2 {
                kernel.spawn(
                    Box::new(ScriptProgram::new(vec![Op::Compute {
                        cycles: 1e15,
                        profile: ActivityProfile::cpu_spin(),
                    }])),
                    None,
                );
            }
            kernel.run_until(SimTime::from_millis(100));
            black_box(kernel.machine().true_energy_j())
        })
    });
}

fn fig5_workload_second(c: &mut Criterion) {
    let cal = quick_calibration();
    c.bench_function("fig5_workload_second", |b| {
        b.iter(|| {
            let mut cfg = RunConfig::new(MachineSpec::sandybridge());
            cfg.duration = SimDuration::from_secs(1);
            cfg.load = LoadLevel::Peak;
            let outcome = run_app(WorkloadKind::Solr, &cfg, &cal);
            black_box(outcome.measured_active_power_w())
        })
    });
}

fn fig8_validation_second(c: &mut Criterion) {
    let cal = quick_calibration();
    c.bench_function("fig8_validation_second", |b| {
        b.iter(|| {
            let mut cfg = RunConfig::new(MachineSpec::sandybridge());
            cfg.duration = SimDuration::from_secs(1);
            cfg.approach = Approach::Recalibrated;
            cfg.load = LoadLevel::Half;
            let outcome = run_app(WorkloadKind::Stress, &cfg, &cal);
            black_box(outcome.validation_error())
        })
    });
}

fn fig14_cluster_second(c: &mut Criterion) {
    let cals = vec![quick_calibration(), quick_calibration()];
    c.bench_function("fig14_cluster_second", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::paper_setup();
            cfg.duration = SimDuration::from_secs(1);
            let outcome = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
            black_box(outcome.total_energy_rate_w())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig1_power_steps, fig5_workload_second, fig8_validation_second, fig14_cluster_second
}
criterion_main!(benches);
