//! The sharded N-node serving simulation (paper §3.4, §4.4, scaled).
//!
//! Each node is a full machine + kernel + facility running the worker
//! pools of every application. Nodes are arranged into serving tiers
//! (web → app → db); a dispatcher drives a deterministic open-loop
//! arrival process ([`workloads::OpenLoopGen`]) and routes every request
//! through the pipeline according to the per-tier
//! [`DistributionPolicy`]. Request contexts propagate across node
//! boundaries in the socket-message tag, as in §3.4: a node's reply
//! carries the tag back out, and the dispatcher forwards the *observed*
//! tag to the next tier — so a tag lost or corrupted in transit degrades
//! attribution exactly as it would on real hardware, while request flow
//! itself stays intact via a serial number in the message payload.
//!
//! Dispatcher decisions are batched per tick: the engine advances every
//! node to the tick boundary once, drains stage completions, runs
//! health checks, and only then routes the tick's batch of arrivals
//! against incrementally maintained load views. Per-request dispatcher
//! work is therefore O(policy) — independent of node count — which is
//! what keeps throughput flat as the fleet grows.
//!
//! # Failure recovery
//!
//! Beyond the passive fault riding of the degraded-node detector, the
//! engine models full crash/restart cycles and active request recovery:
//!
//! * **Node lifecycle** — a [`hwsim::FaultKind::NodeCrash`] window
//!   kills the node's kernel outright (Down), then restarts it through
//!   a WarmingUp phase back to Healthy. The facility journals its
//!   container state to a periodic [`ManagerCheckpoint`]; on restart
//!   the journal is restored, so cumulative attribution survives the
//!   crash with an explicitly accounted loss window
//!   ([`NodeOutcome::lost_energy_j`], [`CrashRecord`]).
//! * **Request recovery** ([`RecoveryConfig`]) — per-hop timeouts with
//!   seeded exponential backoff + jitter, bounded retries keyed by a
//!   stable request id (each send uses a fresh wire serial, so a late
//!   reply from a superseded attempt is recognized as stale and can
//!   never double-complete a request), and optional hedged sends after
//!   a tail timeout.
//! * **Circuit breaker** — the flat health-check penalty is replaced by
//!   a per-node closed/open/half-open breaker with the same detection
//!   signal and backoff constants.
//! * **Admission control** ([`AdmissionConfig`]) — queue-depth and
//!   power-headroom load shedding at the dispatcher front door, with
//!   typed [`ShedReason`]s.
//!
//! All recovery knobs default to *off*: a configuration that does not
//! opt in behaves byte-identically to the pre-recovery engine.

use crate::autoscale::{Autoscaler, AutoscaleConfig, BrownoutLevel, FleetSample, ScaleDecision};
use crate::obs::{ObsConfig, ObsOutcome, ObsPlane};
use crate::policy::{ArrivalView, DistributionPolicy, NodeView};
use crate::topology::{generation_rank, Topology};
use analysis::stats::Summary;
use hwsim::{plan_node_faults, DutyCycle, FaultConfig, Machine, MachineSpec, NodeFaultWindow};
use ossim::{ContextId, Kernel, KernelConfig, SocketId};
use power_containers::{
    Approach, ConditioningPolicy, FacilityConfig, FacilityState, ManagerCheckpoint,
    PowerContainerFacility,
};
use simkern::{FxHashMap, SimDuration, SimRng, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use workloads::{
    AppEnv, Arrival, MachineCalibration, OpenLoopGen, RunStats, ServerApp, TrafficGen,
    TrafficShape, WorkloadKind,
};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node machine specs, flat across tiers; within a tier, newer
    /// machines should come first (use [`Topology`] to build this).
    pub nodes: Vec<MachineSpec>,
    /// Tier membership: `tiers[t]` lists the flat node indices serving
    /// pipeline stage `t`. The tiers must partition `0..nodes.len()`.
    pub tiers: Vec<Vec<usize>>,
    /// Applications in the combined workload (equal load shares).
    pub apps: Vec<WorkloadKind>,
    /// Run length.
    pub duration: SimDuration,
    /// Root seed.
    pub seed: u64,
    /// Worker-pool size per core per app.
    pub workers_per_core: usize,
    /// Offered volume as a fraction of the maximum the *simple balance*
    /// policy can support (the paper's experiment runs at that maximum).
    pub volume: f64,
    /// Cluster-wide active-power cap, enforced through per-request
    /// duty-cycle conditioning of each node's proportional share
    /// ([`ConditioningPolicy::node_share`]). `None` disables capping.
    pub power_cap_w: Option<f64>,
    /// Dispatcher batching quantum: nodes advance and decisions are
    /// made once per tick.
    pub tick: SimDuration,
    /// Retain per-request energy totals in
    /// [`ClusterOutcome::energy_by_ctx`] (costs memory proportional to
    /// the request count; off by default).
    pub retain_request_energy: bool,
    /// Fault injection: machine-level faults (meters, counters, tags)
    /// are applied to every node with a node-specific seed; the
    /// node-level slowdown/blackout/crash rates drive a precomputed
    /// window plan the dispatcher must ride out.
    pub faults: FaultConfig,
    /// Request-recovery machinery (timeouts, retries, hedging,
    /// checkpoint cadence). `None` (the default) disables all of it.
    pub recovery: Option<RecoveryConfig>,
    /// Front-door admission control. `None` (the default) admits
    /// every arrival.
    pub admission: Option<AdmissionConfig>,
    /// Trace sink; dispatcher events land on track 3, node `n`'s
    /// fault windows and per-node facility events on track `10 + n`.
    /// Disabled by default.
    pub telemetry: telemetry::Telemetry,
    /// Intra-cell worker shards: the node set is partitioned into this
    /// many contiguous chunks, and each chunk's kernels advance on
    /// their own thread between tick barriers. Every dispatcher
    /// decision, all cross-node traffic, and the telemetry/accounting
    /// merges stay on the driving thread in node order, so records,
    /// traces, and outcomes are byte-identical at every shard count
    /// (`1` — the default — runs fully inline).
    pub shards: usize,
    /// Self-calibrating model bank. When set, every node runs the
    /// `Recalibrated` approach with a per-regime [`ModelBank`]
    /// (keyed by machine generation × DVFS level × workload mix)
    /// instead of a single fixed `ChipShare` model; drift counters
    /// flow into [`ClusterOutcome::degrade`].
    ///
    /// [`ModelBank`]: power_containers::ModelBank
    pub model_bank: Option<power_containers::BankConfig>,
    /// Always-on observability plane: streaming sketches/rollups, the
    /// energy-SLO burn-rate monitor, and (opt-in) per-request energy
    /// provenance, delivered in [`ClusterOutcome::obs`]. `None` — the
    /// default — runs the engine byte-identically to before the plane
    /// existed.
    pub obs: Option<ObsConfig>,
    /// Kernel scheduling policy per node: entry `n % sched.len()` is
    /// used for node `n`, so a single entry applies fleet-wide and a
    /// longer list interleaves policies across nodes. An empty list
    /// (never produced by the constructors) also means round-robin.
    pub sched: Vec<ossim::SchedulerKind>,
    /// Non-stationary traffic shape (diurnal × flash crowds × sessions).
    /// `None` — the default — drives the legacy stationary
    /// [`OpenLoopGen`] byte-identically to before the traffic layer
    /// existed; `Some` swaps in a [`TrafficGen`] at the same mean
    /// per-app rates.
    pub traffic: Option<TrafficShape>,
    /// Elastic autoscaling (requires a single-tier cluster). `None` —
    /// the default — keeps the whole topology active for the entire
    /// run, byte-identically to the pre-elasticity engine.
    pub autoscale: Option<AutoscaleConfig>,
}

impl ClusterConfig {
    /// The paper's setup: SandyBridge + Woodcrest in a single tier,
    /// GAE-Vosao + RSA-crypto at the simple-balance maximum volume.
    pub fn paper_setup() -> ClusterConfig {
        ClusterConfig {
            nodes: vec![MachineSpec::sandybridge(), MachineSpec::woodcrest()],
            tiers: vec![vec![0, 1]],
            apps: vec![WorkloadKind::GaeVosao, WorkloadKind::RsaCrypto],
            duration: SimDuration::from_secs(10),
            seed: 42,
            workers_per_core: 4,
            volume: 1.0,
            power_cap_w: None,
            tick: SimDuration::from_millis(1),
            retain_request_energy: false,
            faults: FaultConfig::none(),
            recovery: None,
            admission: None,
            telemetry: telemetry::Telemetry::disabled(),
            shards: 1,
            model_bank: None,
            obs: None,
            sched: vec![ossim::SchedulerKind::RoundRobin],
            traffic: None,
            autoscale: None,
        }
    }

    /// A config serving the paper's GAE-Vosao + RSA-crypto mix on an
    /// arbitrary [`Topology`].
    pub fn sharded(topology: &Topology) -> ClusterConfig {
        ClusterConfig {
            nodes: topology.flat_specs(),
            tiers: topology.tier_indices(),
            ..ClusterConfig::paper_setup()
        }
    }

    /// The scheduling policy node `n` boots with (see
    /// [`ClusterConfig::sched`] for the cycling rule).
    pub fn sched_for(&self, node: usize) -> ossim::SchedulerKind {
        if self.sched.is_empty() {
            return ossim::SchedulerKind::RoundRobin;
        }
        self.sched[node % self.sched.len()].clone()
    }
}

/// Per-hop timeout, retry, hedging, and checkpoint-cadence knobs of the
/// dispatcher's request-recovery machinery.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// A hop's deadline is `hop_timeout_mult ×` its expected service
    /// seconds on the chosen node (floored by
    /// [`RecoveryConfig::min_timeout`]).
    pub hop_timeout_mult: f64,
    /// Deadline floor, so sub-millisecond services do not time out on
    /// ordinary queueing.
    pub min_timeout: SimDuration,
    /// Re-dispatch budget per hop; a request that exhausts it is shed
    /// with [`ShedReason::RetriesExhausted`] (or counted
    /// [`ClusterOutcome::lost_in_crash`] when a crash killed it).
    pub max_retries: u32,
    /// First-retry backoff; attempt `k` waits `2^(k-1) ×` this plus a
    /// seeded jitter below one base unit.
    pub backoff_base: SimDuration,
    /// Send a hedged duplicate to a second node once a hop has waited
    /// this long without reply. `None` disables hedging.
    pub hedge_after: Option<SimDuration>,
    /// Cadence of the per-node container-state checkpoint journal
    /// (only taken when crash faults are configured).
    pub checkpoint_every: SimDuration,
}

impl RecoveryConfig {
    /// Defaults tuned for the chaos sweep: generous per-hop deadlines,
    /// three retries, ~20 ms first backoff, hedging off.
    pub fn standard() -> RecoveryConfig {
        RecoveryConfig {
            hop_timeout_mult: 60.0,
            min_timeout: SimDuration::from_millis(250),
            max_retries: 3,
            backoff_base: SimDuration::from_millis(20),
            hedge_after: None,
            checkpoint_every: SimDuration::from_millis(50),
        }
    }
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig::standard()
    }
}

/// Front-door load-shedding thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Shed new arrivals while tier 0's summed outstanding-work
    /// estimate exceeds this many requests per tier-0 core.
    pub max_queue_per_core: f64,
    /// With a power cap configured, shed new arrivals while the
    /// fleet's instantaneous active power exceeds this fraction of the
    /// cap.
    pub power_headroom: f64,
}

impl AdmissionConfig {
    /// Defaults: eight queued requests per core, 97 % of the cap.
    pub fn standard() -> AdmissionConfig {
        AdmissionConfig { max_queue_per_core: 8.0, power_headroom: 0.97 }
    }
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig::standard()
    }
}

/// Why the dispatcher gave up on (or refused) a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Every node of the target tier was unavailable (down, tripped
    /// breaker, or inside a blackout/crash window) and no retry budget
    /// remained.
    NoHealthyNode,
    /// Admission control: tier-0 queue depth above the configured
    /// bound.
    QueueDepth,
    /// Admission control: fleet active power above the configured
    /// fraction of the cap.
    PowerHeadroom,
    /// The per-hop retry budget ran out without a reply.
    RetriesExhausted,
    /// The brownout ladder shed an arrival whose session was marked
    /// optional ([`workloads::Arrival::optional`]).
    BrownoutOptional,
}

impl ShedReason {
    /// Every reason, in [`ClusterOutcome::shed`] index order.
    pub const ALL: [ShedReason; 5] = [
        ShedReason::NoHealthyNode,
        ShedReason::QueueDepth,
        ShedReason::PowerHeadroom,
        ShedReason::RetriesExhausted,
        ShedReason::BrownoutOptional,
    ];

    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::NoHealthyNode => "no-healthy-node",
            ShedReason::QueueDepth => "queue-depth",
            ShedReason::PowerHeadroom => "power-headroom",
            ShedReason::RetriesExhausted => "retries-exhausted",
            ShedReason::BrownoutOptional => "brownout-optional",
        }
    }

    /// Index into [`ClusterOutcome::shed`].
    pub fn index(self) -> usize {
        match self {
            ShedReason::NoHealthyNode => 0,
            ShedReason::QueueDepth => 1,
            ShedReason::PowerHeadroom => 2,
            ShedReason::RetriesExhausted => 3,
            ShedReason::BrownoutOptional => 4,
        }
    }

    /// The pc-telemetry counter this reason increments.
    fn counter(self) -> &'static str {
        match self {
            ShedReason::NoHealthyNode => "cluster.shed.no-healthy-node",
            ShedReason::QueueDepth => "cluster.shed.queue-depth",
            ShedReason::PowerHeadroom => "cluster.shed.power-headroom",
            ShedReason::RetriesExhausted => "cluster.shed.retries-exhausted",
            ShedReason::BrownoutOptional => "cluster.shed.brownout-optional",
        }
    }
}

/// One node crash/restart cycle, as journaled by the engine.
#[derive(Debug, Clone)]
pub struct CrashRecord {
    /// Flat node index.
    pub node: usize,
    /// When the crash window started (the kernel died here).
    pub at: SimTime,
    /// When the node's kernel came back (warm-up starts here).
    pub restarted_at: SimTime,
    /// Attributed energy accumulated since the last checkpoint —
    /// irrecoverably lost with the crash (the loss window).
    pub lost_energy_j: f64,
    /// In-flight requests on the node when it died.
    pub lost_requests: u64,
    /// Live containers force-released from the restored checkpoint.
    pub restored_containers: u64,
    /// Age of the restored checkpoint at the moment of the crash.
    pub checkpoint_age: SimDuration,
}

/// Which elasticity transition a [`ScaleEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// The controller provisioned a standby node.
    Out,
    /// The controller drained an active node to standby.
    In,
    /// The provision half of a rolling-upgrade pair.
    UpgradeOut,
    /// The drain half of a rolling-upgrade pair.
    UpgradeIn,
}

impl ScaleKind {
    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ScaleKind::Out => "scale-out",
            ScaleKind::In => "scale-in",
            ScaleKind::UpgradeOut => "upgrade-out",
            ScaleKind::UpgradeIn => "upgrade-in",
        }
    }
}

/// One completed fleet-resize transition, as journaled by the engine.
/// A scale-out completes when the provisioned node starts warming up; a
/// scale-in completes when the drained node freezes to standby.
#[derive(Debug, Clone)]
pub struct ScaleEvent {
    /// Flat node index.
    pub node: usize,
    /// Transition direction.
    pub kind: ScaleKind,
    /// When the controller decided the resize.
    pub decided_at: SimTime,
    /// When the transition completed (warm-up start / standby freeze).
    pub completed_at: SimTime,
    /// Attributed energy lost by the transition, Joules. A clean drain
    /// journals a final checkpoint at the freeze instant, so this is
    /// exactly `0.0` — unlike a crash loss window.
    pub lost_energy_j: f64,
    /// In-flight requests force-killed by a drain-deadline expiry
    /// (always 0 on a clean drain; the stragglers re-enter the retry
    /// machinery where budget remains).
    pub lost_requests: u64,
    /// `true` when the drain deadline expired before the node emptied.
    pub forced: bool,
    /// Warm-up energy charged to the provisioning container for this
    /// transition (idle draw over boot + warm-up), Joules.
    pub provision_energy_j: f64,
}

/// Elasticity state of one node, orthogonal to [`Lifecycle`] (which
/// keeps tracking crash/restart health): a node's kernel only runs
/// while `Active` or `Draining`; `Standby` and `Provisioning` hold it
/// frozen and out of every routing view.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ScaleState {
    /// In the routing views, serving load.
    Active,
    /// Frozen, out of the views, available to provision.
    Standby,
    /// Bought but not yet landed: boot latency until `ready`, then the
    /// node rebuilds, restores its journal and starts warming up.
    Provisioning { decided_at: SimTime, ready: SimTime, kind: ScaleKind },
    /// Out of the views, finishing its outstanding work; force-retired
    /// at `deadline` if stragglers remain.
    Draining { decided_at: SimTime, deadline: SimTime, kind: ScaleKind },
}

/// The dispatcher's trace track.
pub(crate) const DISPATCHER_TRACK: u32 = 3;

/// The trace track of node `n` (fault windows, per-node markers).
fn node_track(n: usize) -> u32 {
    10 + n as u32
}

/// Health-check period of the dispatcher's degraded-node detector.
const HEALTH_CHECK_EVERY: SimDuration = SimDuration::from_millis(100);
/// Initial breaker-open duration when a node is detected degraded.
const PENALTY_BASE: SimDuration = SimDuration::from_millis(200);
/// Breaker-open ceiling under exponential backoff.
const PENALTY_MAX: SimDuration = SimDuration::from_millis(1600);
/// Checkpoint cadence when crash faults are on but no
/// [`RecoveryConfig`] overrides it.
const DEFAULT_CHECKPOINT_EVERY: SimDuration = SimDuration::from_millis(50);

/// Per-node circuit breaker. Closed admits; a detected stall trips it
/// Open for an exponentially backed-off window; once the window
/// passes it half-opens (admitting probes) and the next clean health
/// check closes it again.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    Closed,
    Open { until: SimTime },
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct Breaker {
    state: BreakerState,
    backoff: SimDuration,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker { state: BreakerState::Closed, backoff: PENALTY_BASE }
    }

    fn admits(&self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Open { until } => now >= until,
            _ => true,
        }
    }

    fn tick(&mut self, now: SimTime) {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open { until: now + self.backoff };
        self.backoff = (self.backoff + self.backoff).min(PENALTY_MAX);
    }

    fn note_progress(&mut self) {
        self.state = BreakerState::Closed;
        self.backoff = PENALTY_BASE;
    }
}

/// Crash/restart state machine of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lifecycle {
    Healthy,
    /// The kernel is dead; nothing runs until `until`.
    Down { until: SimTime },
    /// Restarted, admitting a bounded probe load until `until`.
    WarmingUp { until: SimTime },
}

struct Node {
    kernel: Kernel,
    facility: Rc<RefCell<FacilityState>>,
    stats: Rc<RefCell<RunStats>>,
    /// Per-app worker inboxes, with a round-robin cursor each.
    inboxes: Vec<(Vec<SocketId>, usize)>,
    /// Dispatcher-side endpoint of this node's completion channel; the
    /// worker pools respond here while still bound, so replies carry
    /// the request tag back across the node boundary (§3.4).
    reply_rx: SocketId,
    /// Expected service seconds of each outstanding request, by serial.
    /// Keyed through the deterministic [`FxHashMap`]; every reader that
    /// iterates it sorts first.
    outstanding: FxHashMap<u64, f64>,
    outstanding_std: f64,
    /// Mean service seconds across the offered mix on this node.
    mean_service: f64,
    /// Requests injected into this node (initial dispatches + hops +
    /// retries + hedges).
    injected: u64,
    /// Stage completions drained from this node.
    responses: u64,
    /// Which tier this node serves.
    tier: usize,
    /// This node's slowdown/blackout/crash windows, in start order.
    fault_windows: Vec<NodeFaultWindow>,
    next_window: usize,
    /// The window currently in force, if any.
    active_window: Option<NodeFaultWindow>,
    /// Dispatcher-side health state.
    breaker: Breaker,
    lifecycle: Lifecycle,
    /// Warm-up length applied after each restart.
    warmup: SimDuration,
    /// Set when `advance_to` hits a crash-window start; the engine
    /// rebuilds the node (journaling the loss) before anything else
    /// touches it.
    pending_crash: bool,
    /// Restart count; salts the rebuilt kernel's seeds so incarnations
    /// draw decorrelated randomness (incarnation 0 reduces to the
    /// legacy seeds exactly).
    incarnation: u32,
    crashes: u32,
    /// Active energy of dead incarnations, Joules.
    carried_energy_j: f64,
    /// Machine-fault counts of dead incarnations.
    carried_fault_counts: [u64; hwsim::FaultKind::ALL.len()],
    carried_tags_lost: u64,
    carried_tags_corrupted: u64,
    /// Attributed energy lost in crash loss windows, Joules.
    lost_energy_j: f64,
    /// In-flight requests killed by crashes on this node.
    lost_requests: u64,
    /// Latest container-state journal entry.
    last_checkpoint: ManagerCheckpoint,
    next_checkpoint_at: SimTime,
    checkpoints: u64,
    last_health_check: SimTime,
    responses_at_check: u64,
    /// Elasticity state; always `Active` without [`ClusterConfig::autoscale`].
    scale: ScaleState,
    /// When the current active stretch began (`None` while frozen).
    active_since: Option<SimTime>,
    /// Seconds spent active (or draining) across every stretch; the
    /// idle-energy burden is `machine_idle_w × uptime_s`.
    uptime_s: f64,
    /// This node's private trace sink, shared only with this node's
    /// facility. The engine drains it into the main sink in node order
    /// at every tick barrier and folds the metrics registry in at the
    /// end, so the exported trace is identical at every shard count.
    tele: telemetry::Telemetry,
    /// This node's trace track (`10 + node index`).
    track: u32,
}

// SAFETY: a `Node` is a self-contained simulation: its kernel, the app
// tasks inside it, the facility hooks, and the `stats`/`facility`
// handles all point into one object graph built by
// `build_node_runtime` for this node alone (the non-`Send` `Rc`s never
// cross a node boundary), and `tele` is its private `Arc`-backed sink.
// The engine moves whole nodes across shard threads at tick barriers
// and never lets two threads touch one node concurrently: shards own
// disjoint `&mut [Node]` chunks and the scope join is the
// synchronization point before the driving thread resumes.
#[allow(unsafe_code)]
unsafe impl Send for Node {}

impl Node {
    /// Removes `serial` from the outstanding estimate.
    fn settle(&mut self, serial: u64) {
        if let Some(secs) = self.outstanding.remove(&serial) {
            self.outstanding_std -= secs / self.mean_service;
        }
        self.responses += 1;
    }

    /// Adds `serial` (with service estimate `secs`) to the outstanding
    /// estimate.
    fn assign(&mut self, serial: u64, secs: f64) {
        self.outstanding.insert(serial, secs);
        self.outstanding_std += secs / self.mean_service;
        self.injected += 1;
    }

    /// Advances the node's kernel to `t`, applying any fault-window
    /// transitions exactly at their boundaries. A slowdown caps every
    /// core's duty cycle at the window's DVFS fraction; a blackout
    /// freezes the node outright — its kernel does not advance (so no
    /// request completes and no message is processed) until the window
    /// passes, after which it works through the backlog. A crash stops
    /// the advance at the window start with [`Node::pending_crash`]
    /// set; the engine journals the loss and rebuilds the node before
    /// calling again.
    fn advance_to(&mut self, t: SimTime) {
        if self.pending_crash || !self.participates() {
            return;
        }
        loop {
            let boundary = match (&self.active_window, self.fault_windows.get(self.next_window))
            {
                (Some(w), _) => w.end,
                (None, Some(w)) => w.start,
                (None, None) => break,
            };
            if boundary > t {
                break;
            }
            match self.active_window.take() {
                Some(w) => {
                    match w.kind {
                        hwsim::FaultKind::NodeSlowdown => {
                            self.kernel.run_until(boundary);
                            self.set_all_duty(DutyCycle::FULL);
                        }
                        hwsim::FaultKind::NodeCrash => {
                            // The rebuilt kernel comes back here and
                            // warms up before taking full load.
                            self.lifecycle =
                                Lifecycle::WarmingUp { until: w.end + self.warmup };
                            self.breaker.state = BreakerState::HalfOpen;
                        }
                        // A blackout held the kernel frozen; the
                        // run_until below (or the next call) replays
                        // the backlog.
                        _ => {}
                    }
                    self.tele.end_span(w.end, self.track);
                }
                None => {
                    let w = self.fault_windows[self.next_window];
                    self.next_window += 1;
                    self.kernel.run_until(w.start);
                    match w.kind {
                        hwsim::FaultKind::NodeSlowdown => {
                            self.set_all_duty(DutyCycle::at_most(w.factor));
                            self.tele.begin_span(
                                w.start,
                                "cluster",
                                "slowdown",
                                self.track,
                                &[("factor", w.factor.into())],
                            );
                        }
                        hwsim::FaultKind::NodeCrash => {
                            self.tele.begin_span(w.start, "cluster", "crash", self.track, &[]);
                            self.lifecycle = Lifecycle::Down { until: w.end };
                            self.pending_crash = true;
                            self.active_window = Some(w);
                            return;
                        }
                        _ => {
                            self.tele.begin_span(
                                w.start,
                                "cluster",
                                "blackout",
                                self.track,
                                &[],
                            );
                        }
                    }
                    self.active_window = Some(w);
                }
            }
        }
        // Blackout and (post-rebuild) crash windows both hold the
        // kernel frozen until the window passes.
        let frozen = matches!(
            &self.active_window,
            Some(w) if w.kind != hwsim::FaultKind::NodeSlowdown
        );
        if !frozen {
            self.kernel.run_until(t);
        }
    }

    fn set_all_duty(&mut self, duty: DutyCycle) {
        for c in 0..self.kernel.machine().spec().total_cores() {
            self.kernel.machine_mut().set_duty_cycle(hwsim::CoreId(c), duty);
        }
    }

    /// `true` when the dispatcher may send this node work: not down,
    /// not inside a blackout/crash window (a connection attempt would
    /// observably fail), breaker admitting, and — while warming up —
    /// below a one-request-per-core probe load.
    fn available(&self, now: SimTime) -> bool {
        if self.pending_crash || self.scale != ScaleState::Active {
            return false;
        }
        if let Some(w) = &self.active_window {
            if w.kind != hwsim::FaultKind::NodeSlowdown {
                return false;
            }
        }
        match self.lifecycle {
            Lifecycle::Down { .. } => false,
            Lifecycle::WarmingUp { .. } => {
                self.outstanding_std < self.kernel.machine().spec().total_cores() as f64
                    && self.breaker.admits(now)
            }
            Lifecycle::Healthy => self.breaker.admits(now),
        }
    }

    /// Restart-aware timers: warm-up expiry and breaker half-opening.
    fn lifecycle_tick(&mut self, now: SimTime) {
        if let Lifecycle::WarmingUp { until } = self.lifecycle {
            if now >= until {
                self.lifecycle = Lifecycle::Healthy;
            }
        }
        self.breaker.tick(now);
    }

    /// Periodic liveness probe: outstanding work with no stage
    /// completions since the last check trips the breaker (open window
    /// doubles up to [`PENALTY_MAX`]); progress closes it. Returns
    /// `true` when a new degradation was detected.
    fn health_check(&mut self, now: SimTime) -> bool {
        if now.duration_since(self.last_health_check) < HEALTH_CHECK_EVERY {
            return false;
        }
        let down = matches!(self.lifecycle, Lifecycle::Down { .. });
        let stalled = !down
            && !self.outstanding.is_empty()
            && self.responses == self.responses_at_check;
        self.last_health_check = now;
        self.responses_at_check = self.responses;
        if stalled {
            self.breaker.trip(now);
            true
        } else {
            if !down {
                self.breaker.note_progress();
            }
            false
        }
    }

    /// `true` while the node's kernel runs (active or draining); a
    /// frozen standby/provisioning node neither advances nor accrues.
    fn participates(&self) -> bool {
        matches!(self.scale, ScaleState::Active | ScaleState::Draining { .. })
    }

    /// Energy the facility attributed on this node (requests +
    /// background, CPU + I/O) — mirrors
    /// `workloads::RunOutcome::attributed_energy_j`. After a restart
    /// this reads the restored-checkpoint totals plus everything since.
    fn attributed_energy_j(&self) -> f64 {
        let f = self.facility.borrow();
        let c = f.containers();
        c.total_energy_with_background_j()
            + c.total_request_io_energy_j()
            + c.background().io_energy_j()
    }
}

/// Per-node results of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Machine name.
    pub machine: &'static str,
    /// Which pipeline tier the node served.
    pub tier: usize,
    /// Active energy drawn over the run, Joules (every incarnation).
    pub active_energy_j: f64,
    /// Energy the node's facility attributed (requests + background,
    /// CPU + I/O), Joules — compare against `active_energy_j` for the
    /// per-node conservation invariant. After crashes this is conserved
    /// only modulo [`NodeOutcome::lost_energy_j`].
    pub attributed_energy_j: f64,
    /// Active energy usage rate, Watts (the paper's Fig. 14 metric).
    pub energy_rate_w: f64,
    /// Requests injected into this node (dispatches + pipeline hops +
    /// retries + hedges).
    pub dispatched: u64,
    /// Stage completions this node served.
    pub completions: usize,
    /// Requests still queued or running on this node at the end.
    pub in_flight: u64,
    /// In-flight requests killed by crashes of this node. The exact
    /// per-node identity is
    /// `dispatched == completions + in_flight + lost_requests`.
    pub lost_requests: u64,
    /// Attributed energy lost in this node's crash loss windows,
    /// Joules (work done since the last checkpoint).
    pub lost_energy_j: f64,
    /// Crash/restart cycles this node went through.
    pub crashes: u64,
    /// Mean utilization over the run (the final incarnation's counters
    /// after a crash).
    pub utilization: f64,
    /// Seconds this node spent active or draining. The full run
    /// duration without autoscaling; the sum of active stretches with
    /// it.
    pub uptime_s: f64,
    /// Idle-power burden over the active stretches, Joules
    /// (`machine_idle_w × uptime_s`) — what scale-in saves.
    pub idle_energy_j: f64,
}

/// Cumulative attributed energy of one request across every node it
/// touched (only populated with
/// [`ClusterConfig::retain_request_energy`]).
#[derive(Debug, Clone, Copy)]
pub struct CtxEnergy {
    /// The request's true context id (as allocated at dispatch).
    pub ctx: u64,
    /// Energy attributed to that identity across the fleet, Joules.
    pub energy_j: f64,
    /// How many distinct nodes attributed energy to it.
    pub nodes: u32,
}

/// Results of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The tier-0 policy that produced this outcome.
    pub policy: &'static str,
    /// Per-node breakdown (same order as the config).
    pub per_node: Vec<NodeOutcome>,
    /// End-to-end response-time summary per application, seconds.
    pub response_by_app: Vec<(WorkloadKind, Summary)>,
    /// Per-application attributed energy, Joules — the dispatcher's
    /// comprehensive accounting assembled from the per-request container
    /// records on every node, resolved through the true request identity
    /// (§3.4). Tag loss or corruption in transit makes energy fall out
    /// of this accounting, exactly as it would on real hardware.
    pub energy_by_app_j: Vec<(WorkloadKind, f64)>,
    /// Per-request attributed energy across nodes (empty unless
    /// [`ClusterConfig::retain_request_energy`] is set).
    pub energy_by_ctx: Vec<CtxEnergy>,
    /// Requests the load generator offered to the dispatcher.
    pub dispatched: u64,
    /// Requests that completed the full pipeline.
    pub completed: usize,
    /// Requests the dispatcher steered away from an unavailable node
    /// to a healthy one.
    pub rerouted: u64,
    /// Requests the dispatcher gave up on, for any reason: the exact
    /// identity is `dropped == shed.iter().sum() + lost_in_crash`, and
    /// the conservation invariant is
    /// `dispatched == completed + dropped + in_flight`.
    pub dropped: u64,
    /// Typed shed counts, indexed by [`ShedReason::index`].
    pub shed: [u64; ShedReason::ALL.len()],
    /// Requests killed by a node crash after their retry budget (if
    /// any) was exhausted.
    pub lost_in_crash: u64,
    /// Re-dispatch attempts after a hop timeout or a crash.
    pub retried: u64,
    /// Hedged duplicate sends.
    pub hedged: u64,
    /// Replies from superseded attempts, recognized by their stale
    /// wire serial and dropped without effect (the dedup guarantee).
    pub stale_replies: u64,
    /// Node crash/restart cycles across the fleet.
    pub crashes: u64,
    /// Container-state checkpoints journaled across the fleet.
    pub checkpoints: u64,
    /// One entry per crash/restart cycle, in processing order.
    pub crash_log: Vec<CrashRecord>,
    /// Requests still inside the pipeline when the run ended
    /// (including any waiting in the retry queue).
    pub in_flight: u64,
    /// Routing decisions the dispatcher made (dispatches + hops +
    /// retries).
    pub decisions: u64,
    /// Health-check degradation detections across the run.
    pub degradations_detected: u64,
    /// Context tags stripped in transit across all nodes.
    pub tags_lost: u64,
    /// Context tags corrupted in transit across all nodes.
    pub tags_corrupted: u64,
    /// Machine-level faults injected across all nodes, by kind (indexed
    /// like [`hwsim::FaultKind::ALL`]; node crashes land in the
    /// [`hwsim::FaultKind::NodeCrash`] slot).
    pub fault_counts: [u64; hwsim::FaultKind::ALL.len()],
    /// Observability-plane results (sketches, rollups, typed alerts,
    /// provenance). `None` unless [`ClusterConfig::obs`] was set.
    pub obs: Option<Box<ObsOutcome>>,
    /// One entry per completed resize transition, in completion order
    /// (empty without [`ClusterConfig::autoscale`]).
    pub scale_log: Vec<ScaleEvent>,
    /// Completed scale-outs (including upgrade provision halves).
    pub scale_outs: u64,
    /// Completed scale-ins (including upgrade drain halves).
    pub scale_ins: u64,
    /// Rolling-upgrade pairs started.
    pub upgrades: u64,
    /// Brownout-ladder climbs (one per level stepped up).
    pub brownout_engagements: u64,
    /// Brownout-ladder descents (one per level stepped down).
    pub brownout_releases: u64,
    /// Controller evaluations performed.
    pub autoscale_evals: u64,
    /// Warm-up energy charged to provisioning transitions, Joules.
    pub provisioning_energy_j: f64,
    /// Fleet idle-power burden (sum of per-node idle energies), Joules.
    pub idle_energy_j: f64,
    /// Highest fleet active power observed at any tick barrier, Watts
    /// (0 when no power cap / admission machinery sampled it).
    pub peak_power_w: f64,
}

impl ClusterOutcome {
    /// Combined active energy usage rate across nodes, Watts.
    pub fn total_energy_rate_w(&self) -> f64 {
        self.per_node.iter().map(|n| n.energy_rate_w).sum()
    }

    /// Total shed requests across every [`ShedReason`].
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }
}

/// Service seconds of one request of `app`/`label` on `spec`.
fn service_secs(app: &dyn ServerApp, spec: &MachineSpec) -> f64 {
    let scale = spec.work_scale(&app.representative_profile());
    app.mean_request_cycles() * scale / (spec.freq_ghz * 1e9)
}

/// The per-app arrival rate giving an equal cycle split at the maximum
/// volume the simple-balance policy sustains: the bottleneck node —
/// across every tier, since each request visits each tier once — is the
/// slowest one receiving its tier's equal share of every stream.
fn per_app_rate(cfg: &ClusterConfig) -> f64 {
    let apps: Vec<Box<dyn ServerApp>> = cfg.apps.iter().map(|k| k.app()).collect();
    let mut worst = 0.0_f64;
    for tier in &cfg.tiers {
        let share = 1.0 / tier.len() as f64;
        for &ni in tier {
            let spec = &cfg.nodes[ni];
            let cores = spec.total_cores() as f64;
            let util_per_rate: f64 = apps
                .iter()
                .map(|a| share * service_secs(a.as_ref(), spec) / cores)
                .sum();
            worst = worst.max(util_per_rate);
        }
    }
    // Target ~88% utilization on the constrained node at volume 1.0.
    0.88 * cfg.volume / worst
}

/// Total request arrivals per simulated second the configuration offers
/// (all apps combined) — what experiments use to size run durations for
/// a target request count.
pub fn offered_cluster_rate(cfg: &ClusterConfig) -> f64 {
    per_app_rate(cfg) * cfg.apps.len() as f64
}

/// One live request's dispatcher-side state, keyed by a stable request
/// id. Every send (dispatch, hop, retry, hedge) uses a fresh wire
/// serial, so the dispatcher can tell a live attempt's reply from a
/// superseded one.
struct InFlight {
    app: usize,
    label: u32,
    arrived: SimTime,
    /// Tier currently serving the request.
    stage: usize,
    /// Tag to put on the wire for (re)sends of the current stage: the
    /// true identity at stage 0, the tag observed on the previous
    /// stage's reply afterwards (§3.4 — loss and corruption propagate).
    wire: Option<ContextId>,
    /// Node serving the primary attempt.
    node: usize,
    /// Wire serial of the primary attempt.
    serial: u64,
    /// Re-dispatches consumed on the current hop.
    attempt: u32,
    sent_at: SimTime,
    /// Primary attempt's deadline ([`SimTime::MAX`] with recovery off).
    deadline: SimTime,
    /// Outstanding hedge, as `(node, serial)`.
    hedge: Option<(usize, u64)>,
    /// Parked in the retry queue (no live attempt on any node).
    waiting: bool,
}

/// Runs the cluster under a single `policy` (requires a single-tier
/// configuration — the paper's §4.4 shape).
///
/// `cals` supplies per-node calibrations (same order as `cfg.nodes`).
pub fn run_cluster(
    policy: &mut dyn DistributionPolicy,
    cfg: &ClusterConfig,
    cals: &[MachineCalibration],
) -> ClusterOutcome {
    assert_eq!(
        cfg.tiers.len(),
        1,
        "run_cluster drives a single-tier cluster; use run_pipeline for multi-stage"
    );
    run_engine(&mut [policy], cfg, cals)
}

/// Runs a multi-stage cluster, one policy per tier (`policies[t]`
/// routes stage `t`).
pub fn run_pipeline(
    policies: &mut [Box<dyn DistributionPolicy>],
    cfg: &ClusterConfig,
    cals: &[MachineCalibration],
) -> ClusterOutcome {
    let mut refs: Vec<&mut dyn DistributionPolicy> =
        policies.iter_mut().map(|p| p.as_mut() as &mut dyn DistributionPolicy).collect();
    run_engine(&mut refs, cfg, cals)
}

/// Incrementally maintained per-tier routing views: one dense
/// `Vec<NodeView>` per tier, updated in place whenever a node's
/// outstanding estimate changes, plus a static node → (tier, position)
/// map. Routing a request therefore reads the tier's ready-made slice
/// instead of materializing a tier-sized `Vec` per decision — which at
/// megafleet scale (10³ nodes × 10⁶ requests) was the dominant
/// dispatcher cost.
struct TierViews {
    views: Vec<Vec<NodeView>>,
    /// Flat node indices of each tier's *active* members, in config
    /// order (`views[t]` is parallel to `members[t]`). Without
    /// autoscaling every node is active and this is exactly
    /// `cfg.tiers`.
    members: Vec<Vec<usize>>,
    pos: Vec<(usize, usize)>,
    active: Vec<bool>,
}

impl TierViews {
    fn new(cfg: &ClusterConfig, active: Vec<bool>, nodes: &[Node]) -> TierViews {
        let mut tv = TierViews {
            views: vec![Vec::new(); cfg.tiers.len()],
            members: vec![Vec::new(); cfg.tiers.len()],
            pos: vec![(0usize, 0usize); cfg.nodes.len()],
            active,
        };
        for t in 0..cfg.tiers.len() {
            tv.rebuild_tier(t, cfg, nodes);
        }
        tv
    }

    /// Rebuilds one tier's member list and views from the activity
    /// mask, preserving config order (so the all-active mask reproduces
    /// the legacy views byte-identically).
    fn rebuild_tier(&mut self, t: usize, cfg: &ClusterConfig, nodes: &[Node]) {
        self.members[t] = cfg.tiers[t].iter().copied().filter(|&i| self.active[i]).collect();
        self.views[t] = self.members[t]
            .iter()
            .map(|&i| NodeView {
                outstanding: nodes[i].outstanding_std,
                cores: cfg.nodes[i].total_cores(),
                rank: generation_rank(&cfg.nodes[i]),
            })
            .collect();
        for (p, &i) in self.members[t].iter().enumerate() {
            self.pos[i] = (t, p);
        }
    }

    /// Adds or removes node `n` from its tier's routing membership.
    fn set_active(&mut self, n: usize, tier: usize, on: bool, cfg: &ClusterConfig, nodes: &[Node]) {
        if self.active[n] == on {
            return;
        }
        self.active[n] = on;
        self.rebuild_tier(tier, cfg, nodes);
    }

    /// Refreshes node `n`'s view after its outstanding estimate changed
    /// (no-op for a node outside the routing membership).
    #[inline]
    fn sync(&mut self, n: usize, outstanding_std: f64) {
        if !self.active[n] {
            return;
        }
        let (t, p) = self.pos[n];
        self.views[t][p].outstanding = outstanding_std;
    }

    #[inline]
    fn tier(&self, t: usize) -> &[NodeView] {
        &self.views[t]
    }

    #[inline]
    fn members(&self, t: usize) -> &[usize] {
        &self.members[t]
    }
}

/// The engine's arrival source: the legacy stationary Poisson generator,
/// or the diurnal/flash-crowd/session-structured [`TrafficGen`] when
/// [`ClusterConfig::traffic`] is set.
enum ArrivalGen {
    Open(OpenLoopGen),
    Traffic(Box<TrafficGen>),
}

impl ArrivalGen {
    fn next(&mut self, apps: &[Box<dyn ServerApp>]) -> Option<Arrival> {
        match self {
            ArrivalGen::Open(g) => g.next(apps),
            ArrivalGen::Traffic(g) => g.next(apps),
        }
    }
}

/// Wire serial → request id, as a slab indexed by the (sequential)
/// serial instead of a hash map: O(1) with no hashing or tombstone
/// churn on the dispatch/settle hot path. `u64::MAX` marks a serial
/// with no live request (stale).
struct SerialMap {
    slots: Vec<u64>,
}

impl SerialMap {
    const NONE: u64 = u64::MAX;

    fn new() -> SerialMap {
        SerialMap { slots: Vec::new() }
    }

    #[inline]
    fn insert(&mut self, serial: u64, req_id: u64) {
        let i = serial as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, Self::NONE);
        }
        self.slots[i] = req_id;
    }

    #[inline]
    fn get(&self, serial: u64) -> Option<u64> {
        match self.slots.get(serial as usize) {
            Some(&r) if r != Self::NONE => Some(r),
            _ => None,
        }
    }

    #[inline]
    fn remove(&mut self, serial: u64) -> Option<u64> {
        match self.slots.get_mut(serial as usize) {
            Some(r) if *r != Self::NONE => Some(std::mem::replace(r, Self::NONE)),
            _ => None,
        }
    }
}

/// Looks up the app index for a request context in the sequential
/// context→app slab (contexts are allocated from 1, so slot `ctx-1`).
/// Out-of-range (corrupted or background) contexts miss, exactly as
/// the old hash-map lookup did.
#[inline]
fn app_of(ctx_app: &[u8], ctx: ossim::ContextId) -> Option<usize> {
    ctx_app
        .get((ctx.0 as usize).wrapping_sub(1))
        .map(|&a| a as usize)
}

/// Chooses a node of `tier` for `req` via `policy`, applying the
/// availability/reroute machinery. `views` is the tier's incrementally
/// maintained routing slice (same order as `tier`). Returns the flat
/// node index, or `None` when every node of the tier is unavailable
/// (the caller sheds or retries).
#[allow(clippy::too_many_arguments)]
fn route(
    policy: &mut dyn DistributionPolicy,
    tier: &[usize],
    views: &[NodeView],
    nodes: &[Node],
    req: ArrivalView,
    t: SimTime,
    tele: &telemetry::Telemetry,
    rerouted: &mut u64,
    decisions: &mut u64,
) -> Option<usize> {
    if tier.is_empty() {
        // A fully drained tier (possible only transiently under
        // autoscaling) routes nowhere; the caller sheds or retries.
        return None;
    }
    *decisions += 1;
    let mut chosen = tier[policy.choose(req, views)];
    if !nodes[chosen].available(t) {
        // Bounded retry: probe the tier's remaining nodes for the
        // available one with the least outstanding work; if every node
        // is unavailable, hand the request back to the caller rather
        // than pile onto a degraded machine.
        let alt = tier
            .iter()
            .copied()
            .filter(|&i| i != chosen && nodes[i].available(t))
            .min_by(|&a, &b| nodes[a].outstanding_std.total_cmp(&nodes[b].outstanding_std));
        match alt {
            Some(i) => {
                tele.instant_on(
                    t,
                    "cluster",
                    "reroute",
                    DISPATCHER_TRACK,
                    &[("from", (chosen as u64).into()), ("to", (i as u64).into())],
                );
                tele.add_count("cluster.rerouted", 1);
                chosen = i;
                *rerouted += 1;
            }
            None => return None,
        }
    }
    Some(chosen)
}

/// Injects one stage of `serial` into `node`, with the given context
/// tag on the wire (`Some` true identity at dispatch; whatever tag the
/// previous stage's reply carried at a hop).
fn inject_stage(
    node: &mut Node,
    app_idx: usize,
    serial: u64,
    label: u32,
    wire_ctx: Option<ContextId>,
    secs: f64,
    t: SimTime,
) {
    if let Some(ctx) = wire_ctx {
        node.stats.borrow_mut().record_arrival(ctx, label, t);
        node.facility.borrow_mut().containers_mut().set_label(ctx, label, t);
    }
    node.assign(serial, secs);
    let (inbox_list, cursor) = &mut node.inboxes[app_idx];
    let inbox = inbox_list[*cursor % inbox_list.len()];
    *cursor += 1;
    let payload = (serial << 32) | label as u64;
    node.kernel.inject_message(inbox, 512, wire_ctx, payload);
}

/// Sends `fl`'s current stage to `node` as the primary attempt with a
/// fresh wire `serial`, arming the per-hop deadline and refreshing the
/// node's routing view.
#[allow(clippy::too_many_arguments)]
fn dispatch_attempt(
    target: usize,
    node: &mut Node,
    views: &mut TierViews,
    fl: &mut InFlight,
    serial_req: &mut SerialMap,
    req_id: u64,
    serial: u64,
    secs: f64,
    recovery: Option<&RecoveryConfig>,
    t: SimTime,
) {
    fl.node = target;
    fl.serial = serial;
    fl.sent_at = t;
    fl.waiting = false;
    fl.deadline = match recovery {
        Some(rec) => t + hop_deadline(rec, secs),
        None => SimTime::MAX,
    };
    serial_req.insert(serial, req_id);
    inject_stage(node, fl.app, serial, fl.label, fl.wire, secs, t);
    views.sync(target, node.outstanding_std);
}

/// Deadline of one hop with expected service time `secs`.
fn hop_deadline(rec: &RecoveryConfig, secs: f64) -> SimDuration {
    SimDuration::from_secs_f64(secs * rec.hop_timeout_mult).max(rec.min_timeout)
}

/// Seeded exponential backoff with jitter for retry `attempt` of
/// `req_id` (deterministic in the root seed, the request and the
/// attempt — independent of scheduling order).
fn retry_backoff(rec: &RecoveryConfig, seed: u64, req_id: u64, attempt: u32) -> SimDuration {
    let base = rec.backoff_base.as_nanos().max(1);
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(6));
    let mut rng = SimRng::new(
        seed ^ req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempt as u64) << 48),
    );
    SimDuration::from_nanos(exp.saturating_add(rng.next_below(base)))
}

/// Counts and traces one typed shed.
fn note_shed(
    tele: &telemetry::Telemetry,
    shed: &mut [u64; ShedReason::ALL.len()],
    dropped: &mut u64,
    t: SimTime,
    reason: ShedReason,
) {
    shed[reason.index()] += 1;
    *dropped += 1;
    tele.instant_on(
        t,
        "cluster",
        "shed",
        DISPATCHER_TRACK,
        &[("reason", (reason.index() as u64).into())],
    );
    tele.add_count("cluster.dropped", 1);
    tele.add_count(reason.counter(), 1);
}

/// Parks `fl` in the retry queue with backoff + jitter.
#[allow(clippy::too_many_arguments)]
fn schedule_retry(
    tele: &telemetry::Telemetry,
    retry_queue: &mut BTreeMap<(SimTime, u64), ()>,
    rec: &RecoveryConfig,
    seed: u64,
    req_id: u64,
    fl: &mut InFlight,
    retried: &mut u64,
    t: SimTime,
) {
    fl.attempt += 1;
    *retried += 1;
    fl.waiting = true;
    let delay = retry_backoff(rec, seed, req_id, fl.attempt);
    retry_queue.insert((t + delay, req_id), ());
    tele.instant_on(
        t,
        "cluster",
        "retry",
        DISPATCHER_TRACK,
        &[("attempt", (fl.attempt as u64).into())],
    );
    tele.add_count("cluster.retried", 1);
}

/// Builds (or rebuilds, after a crash) node `n`'s kernel, facility and
/// worker pools. `incarnation` salts every seed; incarnation 0 reduces
/// exactly to the legacy seed derivation, so crash-free runs are
/// byte-identical to the pre-recovery engine.
/// Everything `build_node_runtime` hands back: the kernel, its
/// facility state, the per-app worker inboxes, and the reply socket.
type NodeRuntime = (Kernel, Rc<RefCell<FacilityState>>, Vec<(Vec<SocketId>, usize)>, SocketId);

#[allow(clippy::too_many_arguments)]
fn build_node_runtime(
    n: usize,
    incarnation: u32,
    start: SimTime,
    cfg: &ClusterConfig,
    cal: &MachineCalibration,
    apps: &[Box<dyn ServerApp>],
    total_cores: usize,
    stats: Rc<RefCell<RunStats>>,
    tele: &telemetry::Telemetry,
) -> NodeRuntime {
    let spec = &cfg.nodes[n];
    let inc = incarnation as u64;
    // With a model bank the node runs the full recalibration loop
    // (meter alignment + per-regime refits); otherwise the legacy
    // fixed ChipShare model, byte-identical to pre-bank runs.
    let approach =
        if cfg.model_bank.is_some() { Approach::Recalibrated } else { Approach::ChipShare };
    let meter = (approach == Approach::Recalibrated).then(|| {
        if spec.meters.iter().any(|m| m.name == "on-chip") { "on-chip" } else { "wattsup" }
    });
    let recalibrate_every = if meter == Some("wattsup") { 2 } else { 16 };
    let model_bank = cfg.model_bank.clone().map(|mut bank| {
        // Keep the bank's per-slot refit cadence in lockstep with the
        // facility's per-meter cadence, as the workloads harness does.
        bank.recalibrate_every = recalibrate_every;
        bank
    });
    let facility = PowerContainerFacility::new(
        cal.model_for(approach),
        (approach == Approach::Recalibrated).then_some(&cal.set),
        spec,
        FacilityConfig {
            approach,
            meter,
            meter_idle_w: meter.map(|m| cal.meter_idle(m)).unwrap_or(0.0),
            align_every: if meter == Some("wattsup") { 4 } else { 16 },
            recalibrate_every,
            model_bank,
            // Records feed the §3.4 response tagging: each completed
            // request's cumulative energy flows back to the
            // dispatcher for comprehensive accounting.
            retain_records: true,
            // A cluster-wide cap decomposes into per-node shares
            // enforced by ordinary per-request conditioning.
            conditioning: cfg
                .power_cap_w
                .map(|cap| ConditioningPolicy::node_share(cap, spec.total_cores(), total_cores)),
            // The node's private sink: shard threads record into it
            // race-free, and the engine merges in node order at each
            // tick barrier. (Kernel-level tracing stays off here:
            // per-tick switch events across N nodes would dwarf the
            // facility signal.)
            telemetry: tele.clone(),
            ..FacilityConfig::default()
        },
    );
    let state = facility.state();
    let mut machine = Machine::new(
        spec.clone(),
        cfg.seed.wrapping_add(n as u64).wrapping_add(inc.wrapping_mul(0xA076_1D64_78BD_642F)),
    );
    if cfg.faults.is_active() {
        // Same fault profile on every node, decorrelated by seed.
        machine.set_fault_config(FaultConfig {
            seed: (cfg.faults.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(inc.wrapping_mul(0xE703_7ED1_A0B4_28DB)),
            ..cfg.faults.clone()
        });
    }
    // Kernel-level tracing stays off in cluster nodes; only the
    // scheduling policy is taken from the cluster config.
    let kernel_config = KernelConfig { sched: cfg.sched_for(n), ..KernelConfig::default() };
    let mut kernel = Kernel::new(machine, kernel_config);
    // A restarted incarnation boots at the crash instant: the empty
    // kernel fast-forwards to `start` *before* the facility or any app
    // task exists, so no incarnation ever replays (or re-accrues energy
    // for) the interval it was dead. Incarnation 0 starts at zero and
    // this is a no-op.
    kernel.run_until(start);
    kernel.install_hooks(Box::new(facility));
    let (notify_tx, reply_rx) = kernel.new_socket_pair();
    let mut inboxes = Vec::new();
    for app in apps {
        let env = AppEnv {
            stats: Rc::clone(&stats),
            workers: cfg.workers_per_core * spec.total_cores(),
            spec: spec.clone(),
            seed: cfg
                .seed
                .wrapping_add(1000 + n as u64)
                .wrapping_add(inc.wrapping_mul(0x2545_F491_4F6C_DD1D)),
            notify: Some(notify_tx),
        };
        inboxes.push((app.setup(&mut kernel, &env), 0usize));
    }
    (kernel, state, inboxes, reply_rx)
}

/// Advances every node's kernel to the tick boundary `t`, splitting
/// the fleet into `shards` contiguous chunks that run on their own
/// scoped threads. Nodes never interact inside a tick — cross-node
/// traffic moves only through the dispatcher at barriers — so each
/// node computes bit-identical state regardless of which thread hosts
/// it, and `shards <= 1` runs the very same per-node code inline.
fn advance_shards(nodes: &mut [Node], t: SimTime, shards: usize) {
    if shards <= 1 || nodes.len() <= 1 {
        for node in nodes.iter_mut() {
            node.advance_to(t);
        }
        return;
    }
    let chunk = nodes.len().div_ceil(shards.min(nodes.len()));
    std::thread::scope(|scope| {
        for part in nodes.chunks_mut(chunk) {
            scope.spawn(move || {
                for node in part {
                    node.advance_to(t);
                }
            });
        }
    });
}

/// Drains every node's private event log into the main sink, in node
/// order — the barrier merge. Serial and sharded runs produce the same
/// stream: within a tick, node events appear grouped by node index,
/// followed by the dispatcher's own events for that tick.
fn merge_node_events(main: &telemetry::Telemetry, nodes: &[Node]) {
    if !main.enabled() {
        return;
    }
    for node in nodes {
        main.append_events(node.tele.drain_events());
    }
}

fn run_engine(
    policies: &mut [&mut dyn DistributionPolicy],
    cfg: &ClusterConfig,
    cals: &[MachineCalibration],
) -> ClusterOutcome {
    assert_eq!(cals.len(), cfg.nodes.len(), "one calibration per node");
    assert_eq!(policies.len(), cfg.tiers.len(), "one policy per tier");
    assert!(!cfg.tick.is_zero(), "dispatcher tick must be positive");
    {
        // The tiers must partition the flat node list.
        let mut seen = vec![false; cfg.nodes.len()];
        for &i in cfg.tiers.iter().flatten() {
            assert!(i < cfg.nodes.len(), "tier references unknown node {i}");
            assert!(!seen[i], "node {i} appears in two tiers");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "every node must belong to a tier");
        assert!(cfg.tiers.iter().all(|t| !t.is_empty()), "tiers must be nonempty");
    }
    if let Some(ac) = cfg.autoscale.as_ref() {
        assert_eq!(cfg.tiers.len(), 1, "autoscaling drives a single-tier cluster");
        assert!(
            ac.initial_nodes <= cfg.tiers[0].len(),
            "initial fleet larger than the topology"
        );
    }
    let apps: Vec<Box<dyn ServerApp>> = cfg.apps.iter().map(|k| k.app()).collect();
    let total_cores: usize = cfg.nodes.iter().map(MachineSpec::total_cores).sum();
    let tier_of: HashMap<usize, usize> = cfg
        .tiers
        .iter()
        .enumerate()
        .flat_map(|(t, ix)| ix.iter().map(move |&i| (i, t)))
        .collect();
    let checkpoint_every = cfg
        .recovery
        .as_ref()
        .map(|r| r.checkpoint_every)
        .unwrap_or(DEFAULT_CHECKPOINT_EVERY);
    let crashes_possible = cfg.faults.node_crash_hz > 0.0;

    // Initially active set: everything without autoscaling; the first
    // `initial_nodes` flat indices with it. The topology sorts newest
    // generation first, so the initial fleet is the newest machines and
    // scale-out walks toward older standbys.
    let initially_active: Vec<bool> = match cfg.autoscale.as_ref() {
        Some(ac) => (0..cfg.nodes.len()).map(|n| n < ac.initial_nodes).collect(),
        None => vec![true; cfg.nodes.len()],
    };

    let mut nodes: Vec<Node> = Vec::new();
    for (n, spec) in cfg.nodes.iter().enumerate() {
        let stats = Rc::new(RefCell::new(RunStats::new()));
        let tele = if cfg.telemetry.enabled() {
            telemetry::Telemetry::recording()
        } else {
            telemetry::Telemetry::disabled()
        };
        let (kernel, facility, inboxes, reply_rx) = build_node_runtime(
            n,
            0,
            SimTime::ZERO,
            cfg,
            &cals[n],
            &apps,
            total_cores,
            Rc::clone(&stats),
            &tele,
        );
        let mean_service = apps
            .iter()
            .map(|a| service_secs(a.as_ref(), spec))
            .sum::<f64>()
            / apps.len() as f64;
        nodes.push(Node {
            kernel,
            facility,
            stats,
            inboxes,
            reply_rx,
            outstanding: FxHashMap::default(),
            outstanding_std: 0.0,
            mean_service,
            injected: 0,
            responses: 0,
            tier: tier_of[&n],
            fault_windows: Vec::new(),
            next_window: 0,
            active_window: None,
            breaker: Breaker::new(),
            lifecycle: Lifecycle::Healthy,
            warmup: cfg.faults.node_warmup_len,
            pending_crash: false,
            incarnation: 0,
            crashes: 0,
            carried_energy_j: 0.0,
            carried_fault_counts: [0; hwsim::FaultKind::ALL.len()],
            carried_tags_lost: 0,
            carried_tags_corrupted: 0,
            lost_energy_j: 0.0,
            lost_requests: 0,
            last_checkpoint: ManagerCheckpoint::empty(),
            next_checkpoint_at: if crashes_possible {
                SimTime::ZERO + checkpoint_every
            } else {
                SimTime::MAX
            },
            checkpoints: 0,
            last_health_check: SimTime::ZERO,
            responses_at_check: 0,
            scale: if initially_active[n] { ScaleState::Active } else { ScaleState::Standby },
            active_since: initially_active[n].then_some(SimTime::ZERO),
            uptime_s: 0.0,
            tele,
            track: node_track(n),
        });
    }
    for w in plan_node_faults(&cfg.faults, nodes.len(), cfg.duration) {
        nodes[w.node].fault_windows.push(w);
    }

    // Per-node service estimate per app, so dispatch does not clone
    // machine specs on the hot path.
    let service: Vec<Vec<f64>> = cfg
        .nodes
        .iter()
        .map(|spec| apps.iter().map(|a| service_secs(a.as_ref(), spec)).collect())
        .collect();
    // Admission reads the *active* tier-0 core count, maintained across
    // resizes (equal to the static total without autoscaling).
    let mut tier0_active_cores: usize = cfg.tiers[0]
        .iter()
        .filter(|&&i| initially_active[i])
        .map(|&i| cfg.nodes[i].total_cores())
        .sum();

    let rate = per_app_rate(cfg);
    let end = SimTime::ZERO + cfg.duration;
    // Both arrival sources offer the same mean per-app rates, so a
    // fixed-fleet and an autoscaled run of one config face identical
    // traffic (the traffic generator is itself deterministic in the
    // seed alone).
    let mut gen = match cfg.traffic.as_ref() {
        Some(shape) => ArrivalGen::Traffic(Box::new(TrafficGen::new(
            cfg.seed,
            &vec![rate; apps.len()],
            end,
            shape,
        ))),
        None => ArrivalGen::Open(OpenLoopGen::new(cfg.seed, &vec![rate; apps.len()], end)),
    };
    let mut pending = gen.next(&apps);

    // Live requests by stable request id; `serial_req` resolves a wire
    // serial back to its request (a serial absent here is stale).
    // `inflight` iterations (timeouts, hedging) sort their harvest, so
    // the deterministic FxHashMap is safe here.
    let mut inflight: FxHashMap<u64, InFlight> = FxHashMap::default();
    let mut serial_req = SerialMap::new();
    let mut retry_queue: BTreeMap<(SimTime, u64), ()> = BTreeMap::new();
    // Context ids are allocated sequentially from 1, so ctx → app is a
    // dense slab: `ctx_app[ctx - 1]`. A corrupted wire tag outside the
    // allocated range simply misses, exactly as with a map.
    assert!(cfg.apps.len() <= u8::MAX as usize, "app index must fit u8");
    let mut ctx_app: Vec<u8> = Vec::new();
    let mut views = TierViews::new(cfg, initially_active.clone(), &nodes);
    // Reusable scratch: drained segments and due-request harvests live
    // across ticks instead of being reallocated per node per tick.
    let mut seg_buf: Vec<ossim::Segment> = Vec::new();
    let mut due_buf: Vec<u64> = Vec::new();
    let mut summaries: Vec<Summary> = vec![Summary::new(); apps.len()];
    let mut next_serial = 0u64;
    let mut next_req = 0u64;
    let mut next_ctx = 1u64;
    let mut dispatched = 0u64;
    let mut completed = 0usize;
    let mut rerouted = 0u64;
    let mut dropped = 0u64;
    let mut shed = [0u64; ShedReason::ALL.len()];
    let mut lost_in_crash = 0u64;
    let mut retried = 0u64;
    let mut hedged = 0u64;
    let mut stale_replies = 0u64;
    let mut crash_log: Vec<CrashRecord> = Vec::new();
    let mut decisions = 0u64;
    let mut degradations_detected = 0u64;
    // Elasticity state: the pure controller, the resize journal, and
    // the rolling-upgrade schedule cursor. All actuation happens on the
    // driving thread at tick barriers.
    let mut scaler = cfg.autoscale.map(Autoscaler::new);
    let mut scale_log: Vec<ScaleEvent> = Vec::new();
    let mut scale_outs = 0u64;
    let mut scale_ins = 0u64;
    let mut upgrades = 0u64;
    let mut brownout_engagements = 0u64;
    let mut brownout_releases = 0u64;
    let mut provisioning_energy_j = 0.0f64;
    let mut peak_power_w = 0.0f64;
    let mut next_upgrade_at = cfg
        .autoscale
        .as_ref()
        .and_then(|ac| ac.upgrade.as_ref().map(|up| SimTime::ZERO + up.start));
    let mut upgrades_left =
        cfg.autoscale.as_ref().and_then(|ac| ac.upgrade.as_ref()).map_or(0, |up| up.count);
    // The observability plane lives entirely on this (driving) thread;
    // its window samples are read at tick barriers in node order, so
    // its output is byte-identical at every shard count.
    let mut obs: Option<ObsPlane> = cfg.obs.as_ref().map(|oc| {
        ObsPlane::new(
            oc,
            cfg.nodes.len(),
            cfg.apps.iter().map(|k| k.name()).collect(),
            cfg.power_cap_w,
            cfg.duration,
        )
    });
    let mut obs_samples: Vec<(f64, f64)> = Vec::new();

    let mut t = SimTime::ZERO;
    loop {
        t = (t + cfg.tick).min(end);
        // 1. Advance every node to the tick boundary (once per tick, not
        //    once per arrival — the batching that keeps dispatcher work
        //    flat as the fleet grows), in parallel across the shard
        //    threads. A node hitting a crash-window start stops there
        //    with `pending_crash` set. The barrier merge then folds the
        //    shard-local event logs back in node order, so phases 1.5+
        //    observe exactly the serial engine's state and trace.
        advance_shards(&mut nodes, t, cfg.shards);
        merge_node_events(&cfg.telemetry, &nodes);
        // 1.5 Crash processing: journal the loss window, carry the dead
        //     incarnation's counters, rebuild the node, restore the
        //     checkpoint, and requeue (or lose) the killed in-flights.
        if crashes_possible {
            for n in 0..nodes.len() {
                if !nodes[n].pending_crash {
                    continue;
                }
                let Some(w) = nodes[n].active_window else { continue };
                let (killed, lost_e, restored, cp_age) = {
                    let node = &mut nodes[n];
                    let cp_age = w.start.duration_since(node.last_checkpoint.taken_at);
                    let lost_e = (node.attributed_energy_j()
                        - node.last_checkpoint.attributed_energy_j())
                    .max(0.0);
                    node.lost_energy_j += lost_e;
                    let m = node.kernel.machine();
                    node.carried_energy_j += m.true_active_energy_j();
                    for (tot, c) in
                        node.carried_fault_counts.iter_mut().zip(m.fault_log().counts())
                    {
                        *tot += c;
                    }
                    let ks = node.kernel.stats();
                    node.carried_tags_lost += ks.tags_lost;
                    node.carried_tags_corrupted += ks.tags_corrupted;
                    let mut killed: Vec<u64> = node.outstanding.keys().copied().collect();
                    killed.sort_unstable();
                    node.outstanding.clear();
                    node.outstanding_std = 0.0;
                    node.lost_requests += killed.len() as u64;
                    node.crashes += 1;
                    node.incarnation += 1;
                    let tele = node.tele.clone();
                    let (kernel, facility, inboxes, reply_rx) = build_node_runtime(
                        n,
                        node.incarnation,
                        w.start,
                        cfg,
                        &cals[n],
                        &apps,
                        total_cores,
                        Rc::clone(&node.stats),
                        &tele,
                    );
                    node.kernel = kernel;
                    node.facility = facility;
                    node.inboxes = inboxes;
                    node.reply_rx = reply_rx;
                    let restored = node
                        .facility
                        .borrow_mut()
                        .containers_mut()
                        .restore(&node.last_checkpoint, w.start);
                    // Re-journal the restored state immediately so a
                    // back-to-back crash cannot lose the same window
                    // twice.
                    node.last_checkpoint =
                        node.facility.borrow().containers().checkpoint(w.start);
                    node.checkpoints += 1;
                    node.next_checkpoint_at = t + checkpoint_every;
                    node.breaker =
                        Breaker { state: BreakerState::Open { until: w.end }, backoff: PENALTY_BASE };
                    node.responses_at_check = node.responses;
                    node.last_health_check = t;
                    node.pending_crash = false;
                    (killed, lost_e, restored, cp_age)
                };
                views.sync(n, 0.0);
                crash_log.push(CrashRecord {
                    node: n,
                    at: w.start,
                    restarted_at: w.end,
                    lost_energy_j: lost_e,
                    lost_requests: killed.len() as u64,
                    restored_containers: restored,
                    checkpoint_age: cp_age,
                });
                cfg.telemetry.instant_on(
                    t,
                    "cluster",
                    "restore",
                    nodes[n].track,
                    &[("restored", restored.into()), ("lost_j", lost_e.into())],
                );
                cfg.telemetry.add_count("cluster.crashes", 1);
                // Requeue the killed in-flights: a hedge copy dies
                // silently, a primary promotes its hedge or retries,
                // and a request out of budget is lost to the crash.
                for serial in killed {
                    let Some(req_id) = serial_req.remove(serial) else { continue };
                    let Some(fl) = inflight.get_mut(&req_id) else { continue };
                    if fl.serial != serial {
                        if fl.hedge.map(|(_, s)| s) == Some(serial) {
                            fl.hedge = None;
                        }
                        continue;
                    }
                    if let Some((hn, hs)) = fl.hedge.take() {
                        fl.node = hn;
                        fl.serial = hs;
                        continue;
                    }
                    match cfg.recovery.as_ref() {
                        Some(rec) if fl.attempt < rec.max_retries => {
                            schedule_retry(
                                &cfg.telemetry,
                                &mut retry_queue,
                                rec,
                                cfg.seed,
                                req_id,
                                fl,
                                &mut retried,
                                t,
                            );
                        }
                        _ => {
                            inflight.remove(&req_id);
                            dropped += 1;
                            lost_in_crash += 1;
                            cfg.telemetry.add_count("cluster.lost_in_crash", 1);
                        }
                    }
                }
            }
            // 1.75 Checkpoint journal: periodically snapshot every live
            //      node's container state.
            for node in nodes.iter_mut() {
                if t < node.next_checkpoint_at
                    || matches!(node.lifecycle, Lifecycle::Down { .. })
                    || !node.participates()
                {
                    continue;
                }
                node.last_checkpoint = node.facility.borrow().containers().checkpoint(t);
                node.checkpoints += 1;
                node.next_checkpoint_at = t + checkpoint_every;
            }
        }
        // 2. Drain stage completions; forward mid-pipeline requests to
        //    the next tier (carrying the tag observed on the wire) and
        //    finalize requests leaving the last tier. Replies from
        //    superseded attempts are recognized by their stale serial
        //    and dropped (still settling the serving node's books).
        for n in 0..nodes.len() {
            let rx = nodes[n].reply_rx;
            seg_buf.clear();
            nodes[n].kernel.drain_messages_into(rx, &mut seg_buf);
            for seg in seg_buf.drain(..) {
                let serial = seg.payload >> 32;
                nodes[n].settle(serial);
                views.sync(n, nodes[n].outstanding_std);
                let Some(req_id) = serial_req.get(serial) else {
                    stale_replies += 1;
                    continue;
                };
                serial_req.remove(serial);
                let Some(fl) = inflight.get_mut(&req_id) else { continue };
                if fl.serial == serial {
                    // Primary won; a hedge still out becomes stale.
                    if let Some((_, hs)) = fl.hedge.take() {
                        serial_req.remove(hs);
                    }
                } else if fl.hedge.map(|(_, s)| s) == Some(serial) {
                    // Hedge won; the primary's late reply becomes stale.
                    serial_req.remove(fl.serial);
                    fl.hedge = None;
                } else {
                    stale_replies += 1;
                    continue;
                }
                fl.waiting = false;
                let next_stage = fl.stage + 1;
                if next_stage < cfg.tiers.len() {
                    let (app_idx, label) = (fl.app, fl.label);
                    cfg.telemetry.instant_on(
                        t,
                        "cluster",
                        "hop",
                        DISPATCHER_TRACK,
                        &[("to_tier", (next_stage as u64).into())],
                    );
                    let req = ArrivalView { app: cfg.apps[app_idx], label };
                    match route(
                        policies[next_stage],
                        views.members(next_stage),
                        views.tier(next_stage),
                        &nodes,
                        req,
                        t,
                        &cfg.telemetry,
                        &mut rerouted,
                        &mut decisions,
                    ) {
                        Some(target) => {
                            fl.stage = next_stage;
                            fl.attempt = 0;
                            // Propagate the identity as observed on the
                            // wire: a lost tag stays lost, a corrupted
                            // one misattributes downstream stages.
                            fl.wire = seg.ctx;
                            let serial2 = next_serial;
                            next_serial += 1;
                            dispatch_attempt(
                                target,
                                &mut nodes[target],
                                &mut views,
                                fl,
                                &mut serial_req,
                                req_id,
                                serial2,
                                service[target][app_idx],
                                cfg.recovery.as_ref(),
                                t,
                            );
                        }
                        None => match cfg.recovery.as_ref() {
                            Some(rec) if fl.attempt < rec.max_retries => {
                                fl.stage = next_stage;
                                fl.wire = seg.ctx;
                                schedule_retry(
                                    &cfg.telemetry,
                                    &mut retry_queue,
                                    rec,
                                    cfg.seed,
                                    req_id,
                                    fl,
                                    &mut retried,
                                    t,
                                );
                            }
                            _ => {
                                inflight.remove(&req_id);
                                note_shed(
                                    &cfg.telemetry,
                                    &mut shed,
                                    &mut dropped,
                                    t,
                                    ShedReason::NoHealthyNode,
                                );
                            }
                        },
                    }
                } else {
                    let latency_s = t.duration_since(fl.arrived).as_secs_f64();
                    summaries[fl.app].record(latency_s);
                    if let Some(o) = obs.as_mut() {
                        o.note_completion(fl.app, latency_s);
                    }
                    completed += 1;
                    inflight.remove(&req_id);
                }
            }
        }
        // 2.5 Timeouts: a primary past its deadline invalidates its
        //     live serials (late replies become stale — the dedup
        //     guarantee) and retries or sheds.
        if let Some(rec) = cfg.recovery.as_ref() {
            due_buf.clear();
            due_buf.extend(
                inflight
                    .iter()
                    .filter(|(_, fl)| !fl.waiting && fl.deadline <= t)
                    .map(|(&id, _)| id),
            );
            due_buf.sort_unstable();
            for &req_id in due_buf.iter() {
                let Some(fl) = inflight.get_mut(&req_id) else { continue };
                serial_req.remove(fl.serial);
                if let Some((_, hs)) = fl.hedge.take() {
                    serial_req.remove(hs);
                }
                if fl.attempt >= rec.max_retries {
                    inflight.remove(&req_id);
                    note_shed(
                        &cfg.telemetry,
                        &mut shed,
                        &mut dropped,
                        t,
                        ShedReason::RetriesExhausted,
                    );
                } else {
                    schedule_retry(
                        &cfg.telemetry,
                        &mut retry_queue,
                        rec,
                        cfg.seed,
                        req_id,
                        fl,
                        &mut retried,
                        t,
                    );
                }
            }
            // 2.6 Hedged sends: duplicate a slow hop onto the least
            //     loaded other node of its tier; first reply wins.
            if let Some(h) = rec.hedge_after {
                due_buf.clear();
                due_buf.extend(
                    inflight
                        .iter()
                        .filter(|(_, fl)| {
                            !fl.waiting
                                && fl.hedge.is_none()
                                && fl.deadline > t
                                && t.duration_since(fl.sent_at) >= h
                        })
                        .map(|(&id, _)| id),
                );
                due_buf.sort_unstable();
                for &req_id in due_buf.iter() {
                    let Some(fl) = inflight.get_mut(&req_id) else { continue };
                    let alt = views
                        .members(fl.stage)
                        .iter()
                        .copied()
                        .filter(|&i| i != fl.node && nodes[i].available(t))
                        .min_by(|&a, &b| {
                            nodes[a].outstanding_std.total_cmp(&nodes[b].outstanding_std)
                        });
                    let Some(alt) = alt else { continue };
                    let serial2 = next_serial;
                    next_serial += 1;
                    fl.hedge = Some((alt, serial2));
                    serial_req.insert(serial2, req_id);
                    inject_stage(
                        &mut nodes[alt],
                        fl.app,
                        serial2,
                        fl.label,
                        fl.wire,
                        service[alt][fl.app],
                        t,
                    );
                    views.sync(alt, nodes[alt].outstanding_std);
                    hedged += 1;
                    cfg.telemetry.instant_on(
                        t,
                        "cluster",
                        "hedge",
                        DISPATCHER_TRACK,
                        &[("to", (alt as u64).into())],
                    );
                    cfg.telemetry.add_count("cluster.hedged", 1);
                }
            }
        }
        // 3. Health checks and lifecycle timers (frozen standby /
        //    provisioning nodes hold no work and skip both).
        for (n, node) in nodes.iter_mut().enumerate() {
            if !node.participates() {
                continue;
            }
            node.lifecycle_tick(t);
            if node.health_check(t) {
                degradations_detected += 1;
                let open_ms = match node.breaker.state {
                    BreakerState::Open { until } => {
                        until.duration_since(t).as_secs_f64() * 1e3
                    }
                    _ => 0.0,
                };
                cfg.telemetry.instant_on(
                    t,
                    "cluster",
                    "degraded",
                    DISPATCHER_TRACK,
                    &[("node", (n as u64).into()), ("penalty_ms", open_ms.into())],
                );
                cfg.telemetry.add_count("cluster.degradations", 1);
            }
        }
        // 3.5 Re-dispatch requests whose backoff expired.
        if let Some(rec) = cfg.recovery.as_ref() {
            // Not a `while let`: under edition 2021 the scrutinee's
            // borrow of `retry_queue` would live through the body,
            // which removes from it.
            #[allow(clippy::while_let_loop)]
            loop {
                let Some((&(at, req_id), _)) = retry_queue.iter().next() else { break };
                if at > t {
                    break;
                }
                retry_queue.remove(&(at, req_id));
                let Some(fl) = inflight.get_mut(&req_id) else { continue };
                if !fl.waiting {
                    continue;
                }
                let req = ArrivalView { app: cfg.apps[fl.app], label: fl.label };
                match route(
                    policies[fl.stage],
                    views.members(fl.stage),
                    views.tier(fl.stage),
                    &nodes,
                    req,
                    t,
                    &cfg.telemetry,
                    &mut rerouted,
                    &mut decisions,
                ) {
                    Some(target) => {
                        let serial = next_serial;
                        next_serial += 1;
                        dispatch_attempt(
                            target,
                            &mut nodes[target],
                            &mut views,
                            fl,
                            &mut serial_req,
                            req_id,
                            serial,
                            service[target][fl.app],
                            Some(rec),
                            t,
                        );
                    }
                    None if fl.attempt < rec.max_retries => {
                        schedule_retry(
                            &cfg.telemetry,
                            &mut retry_queue,
                            rec,
                            cfg.seed,
                            req_id,
                            fl,
                            &mut retried,
                            t,
                        );
                    }
                    None => {
                        inflight.remove(&req_id);
                        note_shed(
                            &cfg.telemetry,
                            &mut shed,
                            &mut dropped,
                            t,
                            ShedReason::NoHealthyNode,
                        );
                    }
                }
            }
        }
        // 3.7 Elasticity, all on the driving thread so resizes are
        //     byte-identical at every --jobs/--shards count: sample the
        //     fleet power, land provisioned nodes, progress drains,
        //     fire the rolling-upgrade schedule, then run one
        //     controller evaluation when due.
        let fleet_power_w: f64 = if cfg.power_cap_w.is_some()
            && (cfg.admission.is_some() || scaler.is_some())
        {
            // Only kernels that advance draw power: a frozen standby's
            // machine still *reports* the instantaneous state it was
            // built with (worker pools parked on cores), which would
            // read as a permanently busy fleet.
            nodes
                .iter()
                .filter(|nd| nd.participates())
                .map(|nd| nd.kernel.machine().true_active_power_watts())
                .sum()
        } else {
            0.0
        };
        peak_power_w = peak_power_w.max(fleet_power_w);
        if let Some(sc) = scaler.as_mut() {
            let ac = *sc.config();
            // (a) Land provisioned nodes whose boot latency expired:
            //     carry the dead stretch's counters, rebuild a fresh
            //     incarnation at `t` (the crash-restart machinery,
            //     minus the loss window), restore the retirement
            //     checkpoint, and start warming up. Boot + warm-up
            //     idle draw is charged to the provisioning transition.
            for n in 0..nodes.len() {
                let ScaleState::Provisioning { decided_at, ready, kind } = nodes[n].scale
                else {
                    continue;
                };
                if t < ready {
                    continue;
                }
                {
                    let node = &mut nodes[n];
                    let m = node.kernel.machine();
                    node.carried_energy_j += m.true_active_energy_j();
                    for (tot, c) in
                        node.carried_fault_counts.iter_mut().zip(m.fault_log().counts())
                    {
                        *tot += c;
                    }
                    let ks = node.kernel.stats();
                    node.carried_tags_lost += ks.tags_lost;
                    node.carried_tags_corrupted += ks.tags_corrupted;
                    node.incarnation += 1;
                    let tele = node.tele.clone();
                    let (kernel, facility, inboxes, reply_rx) = build_node_runtime(
                        n,
                        node.incarnation,
                        t,
                        cfg,
                        &cals[n],
                        &apps,
                        total_cores,
                        Rc::clone(&node.stats),
                        &tele,
                    );
                    node.kernel = kernel;
                    node.facility = facility;
                    node.inboxes = inboxes;
                    node.reply_rx = reply_rx;
                    let _ = node
                        .facility
                        .borrow_mut()
                        .containers_mut()
                        .restore(&node.last_checkpoint, t);
                    node.last_checkpoint =
                        node.facility.borrow().containers().checkpoint(t);
                    node.checkpoints += 1;
                    node.next_checkpoint_at =
                        if crashes_possible { t + checkpoint_every } else { SimTime::MAX };
                    // Fault windows that opened while the node was
                    // frozen never happened for it.
                    while node.next_window < node.fault_windows.len()
                        && node.fault_windows[node.next_window].start < t
                    {
                        node.next_window += 1;
                    }
                    node.active_window = None;
                    node.breaker = Breaker::new();
                    node.lifecycle = Lifecycle::WarmingUp { until: t + ac.warmup };
                    node.responses_at_check = node.responses;
                    node.last_health_check = t;
                    node.scale = ScaleState::Active;
                    node.active_since = Some(t);
                }
                let spec = &cfg.nodes[n];
                let boot_j = spec.truth.machine_idle_w()
                    * (ac.provision_delay + ac.warmup).as_secs_f64();
                provisioning_energy_j += boot_j;
                tier0_active_cores += spec.total_cores();
                let tier = nodes[n].tier;
                views.set_active(n, tier, true, cfg, &nodes);
                scale_outs += 1;
                scale_log.push(ScaleEvent {
                    node: n,
                    kind,
                    decided_at,
                    completed_at: t,
                    lost_energy_j: 0.0,
                    lost_requests: 0,
                    forced: false,
                    provision_energy_j: boot_j,
                });
                cfg.telemetry.instant_on(
                    t,
                    "cluster",
                    kind.name(),
                    DISPATCHER_TRACK,
                    &[("node", (n as u64).into()), ("boot_j", boot_j.into())],
                );
                cfg.telemetry.add_count("autoscale.scale_out", 1);
            }
            // (b) Progress draining nodes. A node whose outstanding
            //     work emptied retires cleanly: the final checkpoint is
            //     taken at the freeze instant, so the journaled loss is
            //     *exactly* zero (attribution accrues into the same
            //     totals the checkpoint snapshots — unlike a crash,
            //     which loses everything since the last periodic
            //     journal entry). A node past its drain deadline
            //     force-kills its stragglers — they re-enter the retry
            //     machinery like crash victims — and retires anyway;
            //     their partially-done work stays attributed, so even a
            //     forced drain loses requests but not energy.
            for (n, node) in nodes.iter_mut().enumerate() {
                let ScaleState::Draining { decided_at, deadline, kind } = node.scale
                else {
                    continue;
                };
                if node.pending_crash {
                    // The crash machinery owns this node this tick; the
                    // rebuilt (emptied) node retires on a later tick.
                    continue;
                }
                let forced = t >= deadline && !node.outstanding.is_empty();
                if !node.outstanding.is_empty() && !forced {
                    continue;
                }
                let (killed, lost_e) = {
                    let mut killed: Vec<u64> = Vec::new();
                    if forced {
                        killed = node.outstanding.keys().copied().collect();
                        killed.sort_unstable();
                        node.outstanding.clear();
                        node.outstanding_std = 0.0;
                        node.lost_requests += killed.len() as u64;
                    }
                    if node.active_window.take().is_some() {
                        node.tele.end_span(t, node.track);
                    }
                    node.last_checkpoint =
                        node.facility.borrow().containers().checkpoint(t);
                    node.checkpoints += 1;
                    node.next_checkpoint_at = SimTime::MAX;
                    // The live totals and the checkpoint sum the same
                    // per-container energies in different association
                    // orders, so a clean drain can read a few ULPs
                    // apart; below a nanojoule the checkpoint IS the
                    // state (a real crash loss window is joules).
                    let raw = node.attributed_energy_j()
                        - node.last_checkpoint.attributed_energy_j();
                    let lost_e = if raw < 1e-9 { 0.0 } else { raw };
                    if let Some(s) = node.active_since.take() {
                        node.uptime_s += t.duration_since(s).as_secs_f64();
                    }
                    node.lifecycle = Lifecycle::Healthy;
                    node.breaker = Breaker::new();
                    node.scale = ScaleState::Standby;
                    (killed, lost_e)
                };
                let killed_n = killed.len() as u64;
                for serial in killed {
                    let Some(req_id) = serial_req.remove(serial) else { continue };
                    let Some(fl) = inflight.get_mut(&req_id) else { continue };
                    if fl.serial != serial {
                        if fl.hedge.map(|(_, s)| s) == Some(serial) {
                            fl.hedge = None;
                        }
                        continue;
                    }
                    if let Some((hn, hs)) = fl.hedge.take() {
                        fl.node = hn;
                        fl.serial = hs;
                        continue;
                    }
                    match cfg.recovery.as_ref() {
                        Some(rec) if fl.attempt < rec.max_retries => {
                            schedule_retry(
                                &cfg.telemetry,
                                &mut retry_queue,
                                rec,
                                cfg.seed,
                                req_id,
                                fl,
                                &mut retried,
                                t,
                            );
                        }
                        _ => {
                            inflight.remove(&req_id);
                            dropped += 1;
                            lost_in_crash += 1;
                            cfg.telemetry.add_count("cluster.lost_in_crash", 1);
                        }
                    }
                }
                scale_ins += 1;
                scale_log.push(ScaleEvent {
                    node: n,
                    kind,
                    decided_at,
                    completed_at: t,
                    lost_energy_j: lost_e,
                    lost_requests: killed_n,
                    forced,
                    provision_energy_j: 0.0,
                });
                cfg.telemetry.instant_on(
                    t,
                    "cluster",
                    kind.name(),
                    DISPATCHER_TRACK,
                    &[
                        ("node", (n as u64).into()),
                        ("forced", (forced as u64).into()),
                        ("lost_j", lost_e.into()),
                    ],
                );
                cfg.telemetry.add_count("autoscale.scale_in", 1);
            }
            // (c) Rolling generation upgrades: at each scheduled slot,
            //     drain the oldest active node (highest flat index —
            //     the topology sorts newest first) and provision the
            //     newest standby, as one paired swap.
            if let Some(up) = ac.upgrade {
                while upgrades_left > 0 && next_upgrade_at.is_some_and(|at| t >= at) {
                    let victim = (0..nodes.len()).rev().find(|&i| {
                        matches!(nodes[i].scale, ScaleState::Active)
                            && nodes[i].lifecycle == Lifecycle::Healthy
                            && !nodes[i].pending_crash
                    });
                    let fresh = (0..nodes.len())
                        .find(|&i| matches!(nodes[i].scale, ScaleState::Standby));
                    // A slot with no standby (elasticity bought them
                    // all) or no healthy victim holds its place and
                    // retries next tick rather than skipping the swap.
                    let (Some(victim), Some(fresh)) = (victim, fresh) else { break };
                    next_upgrade_at = next_upgrade_at.map(|at| at + up.every);
                    upgrades_left -= 1;
                    nodes[victim].scale = ScaleState::Draining {
                        decided_at: t,
                        deadline: t + ac.drain_deadline,
                        kind: ScaleKind::UpgradeIn,
                    };
                    tier0_active_cores -= cfg.nodes[victim].total_cores();
                    let tier = nodes[victim].tier;
                    views.set_active(victim, tier, false, cfg, &nodes);
                    nodes[fresh].scale = ScaleState::Provisioning {
                        decided_at: t,
                        ready: t + ac.provision_delay,
                        kind: ScaleKind::UpgradeOut,
                    };
                    upgrades += 1;
                    cfg.telemetry.instant_on(
                        t,
                        "cluster",
                        "upgrade",
                        DISPATCHER_TRACK,
                        &[("out", (victim as u64).into()), ("in", (fresh as u64).into())],
                    );
                    cfg.telemetry.add_count("autoscale.upgrade", 1);
                }
            }
            // (d) One controller evaluation when due.
            if sc.due(t) {
                let mut active = 0usize;
                let mut landing = 0usize;
                let mut draining = 0usize;
                let mut standby = 0usize;
                let mut out_std = 0.0f64;
                for node in nodes.iter() {
                    match node.scale {
                        ScaleState::Active => {
                            active += 1;
                            out_std += node.outstanding_std;
                            if matches!(node.lifecycle, Lifecycle::WarmingUp { .. }) {
                                landing += 1;
                            }
                        }
                        ScaleState::Provisioning { .. } => landing += 1,
                        ScaleState::Draining { .. } => draining += 1,
                        ScaleState::Standby => standby += 1,
                    }
                }
                let sample = FleetSample {
                    now: t,
                    active,
                    landing,
                    draining,
                    standby,
                    util: if tier0_active_cores > 0 {
                        out_std / tier0_active_cores as f64
                    } else {
                        f64::INFINITY
                    },
                    power_frac: cfg.power_cap_w.map_or(0.0, |cap| fleet_power_w / cap),
                };
                let prev_level = sc.level();
                let (decision, level) = sc.decide(&sample);
                if level != prev_level {
                    if level > prev_level {
                        brownout_engagements += 1;
                        cfg.telemetry.add_count("autoscale.brownout.engage", 1);
                    } else {
                        brownout_releases += 1;
                        cfg.telemetry.add_count("autoscale.brownout.release", 1);
                    }
                    cfg.telemetry.instant_on(
                        t,
                        "cluster",
                        "brownout",
                        DISPATCHER_TRACK,
                        &[("level", (level.index() as u64).into())],
                    );
                }
                // DVFS clamp: re-asserted on every active node each
                // evaluation while the top rung holds (covering nodes
                // that landed since), restored to full duty on release.
                // A slowdown fault window in force is overridden until
                // its own end boundary; the chaos rungs tolerate that
                // interplay.
                if level == BrownoutLevel::DvfsClamp {
                    for node in nodes.iter_mut() {
                        if matches!(node.scale, ScaleState::Active) {
                            node.set_all_duty(DutyCycle::at_most(ac.brownout.dvfs_clamp));
                        }
                    }
                } else if prev_level == BrownoutLevel::DvfsClamp {
                    for node in nodes.iter_mut() {
                        if node.participates() {
                            node.set_all_duty(DutyCycle::FULL);
                        }
                    }
                }
                match decision {
                    ScaleDecision::Out(k) => {
                        let mut started = 0usize;
                        for (n, node) in nodes.iter_mut().enumerate() {
                            if started == k {
                                break;
                            }
                            if !matches!(node.scale, ScaleState::Standby) {
                                continue;
                            }
                            node.scale = ScaleState::Provisioning {
                                decided_at: t,
                                ready: t + ac.provision_delay,
                                kind: ScaleKind::Out,
                            };
                            started += 1;
                            cfg.telemetry.instant_on(
                                t,
                                "cluster",
                                "provision",
                                DISPATCHER_TRACK,
                                &[("node", (n as u64).into())],
                            );
                        }
                    }
                    ScaleDecision::In(k) => {
                        let mut started = 0usize;
                        for n in (0..nodes.len()).rev() {
                            if started == k {
                                break;
                            }
                            if !matches!(nodes[n].scale, ScaleState::Active)
                                || nodes[n].lifecycle != Lifecycle::Healthy
                                || nodes[n].pending_crash
                            {
                                continue;
                            }
                            nodes[n].scale = ScaleState::Draining {
                                decided_at: t,
                                deadline: t + ac.drain_deadline,
                                kind: ScaleKind::In,
                            };
                            tier0_active_cores -= cfg.nodes[n].total_cores();
                            let tier = nodes[n].tier;
                            views.set_active(n, tier, false, cfg, &nodes);
                            started += 1;
                            cfg.telemetry.instant_on(
                                t,
                                "cluster",
                                "drain",
                                DISPATCHER_TRACK,
                                &[("node", (n as u64).into())],
                            );
                        }
                    }
                    ScaleDecision::Hold => {}
                }
            }
        }
        // 4. Admission control (brownout-aware: the ladder sheds
        //    optional sessions first, then tightens the queue bound),
        //    then dispatch the tick's batch of arrivals into tier 0.
        let brownout = scaler.as_ref().map_or(BrownoutLevel::Normal, Autoscaler::level);
        let admission_scale = if brownout >= BrownoutLevel::TightenAdmission {
            cfg.autoscale.as_ref().map_or(1.0, |ac| ac.brownout.admission_tighten)
        } else {
            1.0
        };
        while let Some(a) = pending {
            if a.at > t {
                break;
            }
            pending = gen.next(&apps);
            dispatched += 1;
            cfg.telemetry.add_count("cluster.dispatched", 1);
            if brownout >= BrownoutLevel::ShedOptional && a.optional {
                note_shed(
                    &cfg.telemetry,
                    &mut shed,
                    &mut dropped,
                    a.at,
                    ShedReason::BrownoutOptional,
                );
                continue;
            }
            if let Some(adm) = cfg.admission.as_ref() {
                let depth: f64 =
                    views.members(0).iter().map(|&i| nodes[i].outstanding_std).sum();
                if depth > adm.max_queue_per_core * tier0_active_cores as f64 * admission_scale
                {
                    note_shed(&cfg.telemetry, &mut shed, &mut dropped, a.at, ShedReason::QueueDepth);
                    continue;
                }
                if let Some(cap) = cfg.power_cap_w {
                    if fleet_power_w > adm.power_headroom * cap {
                        note_shed(
                            &cfg.telemetry,
                            &mut shed,
                            &mut dropped,
                            a.at,
                            ShedReason::PowerHeadroom,
                        );
                        continue;
                    }
                }
            }
            let req = ArrivalView { app: cfg.apps[a.app], label: a.label };
            let Some(target) = route(
                policies[0],
                views.members(0),
                views.tier(0),
                &nodes,
                req,
                a.at,
                &cfg.telemetry,
                &mut rerouted,
                &mut decisions,
            ) else {
                note_shed(&cfg.telemetry, &mut shed, &mut dropped, a.at, ShedReason::NoHealthyNode);
                continue;
            };
            let serial = next_serial;
            next_serial += 1;
            debug_assert!(serial < u32::MAX as u64, "serial space exhausted");
            let req_id = next_req;
            next_req += 1;
            let ctx = ContextId(next_ctx);
            next_ctx += 1;
            // `ctx` is exactly `ctx_app.len() + 1`, so a push keeps the
            // slab aligned with the sequential id space.
            debug_assert_eq!(next_ctx as usize, ctx_app.len() + 2);
            ctx_app.push(a.app as u8);
            let mut fl = InFlight {
                app: a.app,
                label: a.label,
                arrived: a.at,
                stage: 0,
                wire: Some(ctx),
                node: target,
                serial,
                attempt: 0,
                sent_at: a.at,
                deadline: SimTime::MAX,
                hedge: None,
                waiting: false,
            };
            dispatch_attempt(
                target,
                &mut nodes[target],
                &mut views,
                &mut fl,
                &mut serial_req,
                req_id,
                serial,
                service[target][a.app],
                cfg.recovery.as_ref(),
                a.at,
            );
            inflight.insert(req_id, fl);
        }
        // 5. Observability window close: at the first tick at or past a
        //    window boundary, read every node's cumulative energy in
        //    node order and feed the rollups + burn-rate monitor. Only
        //    full windows close; a trailing partial window is dropped.
        if let Some(o) = obs.as_mut() {
            if o.due(t) {
                obs_samples.clear();
                obs_samples.extend(nodes.iter().map(|n| {
                    (
                        n.carried_energy_j + n.kernel.machine().true_active_energy_j(),
                        n.attributed_energy_j(),
                    )
                }));
                let degrade: u64 = nodes
                    .iter()
                    .map(|n| n.facility.borrow().degrade_stats().drift_total())
                    .sum();
                o.close_window(
                    t,
                    &obs_samples,
                    completed as u64,
                    dropped,
                    degrade,
                    &cfg.telemetry,
                );
            }
        }
        if t >= end {
            break;
        }
    }
    // Final settle: close any window still open, replay frozen backlogs
    // so energy accounting covers the whole run, and drain the last
    // responses.
    advance_shards(&mut nodes, end, cfg.shards);
    for node in &mut nodes {
        // Frozen standby/provisioning nodes stay frozen: their kernels
        // hold the state journaled at retirement and accrue nothing.
        if !node.participates() {
            continue;
        }
        if let Some(w) = node.active_window.take() {
            let _ = w;
            node.tele.end_span(end, node.track);
        }
        node.kernel.run_until(end);
    }
    merge_node_events(&cfg.telemetry, &nodes);
    for node in nodes.iter_mut() {
        let rx = node.reply_rx;
        seg_buf.clear();
        node.kernel.drain_messages_into(rx, &mut seg_buf);
        for seg in seg_buf.drain(..) {
            let serial = seg.payload >> 32;
            node.settle(serial);
            let Some(req_id) = serial_req.get(serial) else {
                stale_replies += 1;
                continue;
            };
            let Some(fl) = inflight.get(&req_id) else { continue };
            let is_primary = fl.serial == serial;
            let is_hedge = fl.hedge.map(|(_, s)| s) == Some(serial);
            if !is_primary && !is_hedge {
                stale_replies += 1;
                continue;
            }
            serial_req.remove(serial);
            if fl.stage + 1 < cfg.tiers.len() {
                // The next stage can no longer run; the request stays
                // accounted as in flight.
                continue;
            }
            let latency_s = end.duration_since(fl.arrived).as_secs_f64();
            summaries[fl.app].record(latency_s);
            if let Some(o) = obs.as_mut() {
                o.note_completion(fl.app, latency_s);
            }
            completed += 1;
            if let Some(fl) = inflight.remove(&req_id) {
                serial_req.remove(fl.serial);
                if let Some((_, hs)) = fl.hedge {
                    serial_req.remove(hs);
                }
            }
        }
    }
    // Fold each node's private metrics registry (facility counters,
    // gauges, histograms, span bookkeeping) into the main sink, in node
    // order — deterministic at every shard count.
    if cfg.telemetry.enabled() {
        for node in &nodes {
            cfg.telemetry.absorb(&node.tele);
        }
    }
    let mut cluster_degrade = nodes
        .iter()
        .map(|n| n.facility.borrow().degrade_stats())
        .fold(power_containers::DegradeStats::default(), |acc, d| acc + d);
    cluster_degrade.requests_retried += retried;
    cluster_degrade.requests_shed += dropped;
    workloads::note_degrade(cluster_degrade);
    workloads::note_requests(dispatched);
    workloads::note_autoscale(workloads::AutoscaleDigest {
        scale_outs,
        scale_ins,
        upgrades,
        brownout_engagements,
        shed_optional: shed[ShedReason::BrownoutOptional.index()],
    });

    let secs = cfg.duration.as_secs_f64();
    // Close the books on uptime: nodes still active (or draining) at
    // the end accrue through `end`; a fixed fleet therefore reads
    // exactly the run duration per node.
    for node in nodes.iter_mut() {
        if let Some(s) = node.active_since.take() {
            node.uptime_s += end.duration_since(s).as_secs_f64();
        }
    }
    let per_node: Vec<NodeOutcome> = nodes
        .iter()
        .map(|n| {
            let m = n.kernel.machine();
            let cores = m.spec().total_cores();
            let util = (0..cores)
                .map(|c| m.counters(hwsim::CoreId(c)).core_utilization())
                .sum::<f64>()
                / cores as f64;
            let active_energy_j = n.carried_energy_j + m.true_active_energy_j();
            NodeOutcome {
                machine: m.spec().name,
                tier: n.tier,
                active_energy_j,
                attributed_energy_j: n.attributed_energy_j(),
                energy_rate_w: active_energy_j / secs,
                dispatched: n.injected,
                completions: n.responses as usize,
                in_flight: n.outstanding.len() as u64,
                lost_requests: n.lost_requests,
                lost_energy_j: n.lost_energy_j,
                crashes: n.crashes as u64,
                utilization: util,
                uptime_s: n.uptime_s,
                idle_energy_j: m.spec().truth.machine_idle_w() * n.uptime_s,
            }
        })
        .collect();
    let fleet_idle_energy_j: f64 = per_node.iter().map(|n| n.idle_energy_j).sum();

    // The comprehensive per-app energy accounting, resolved through the
    // dispatcher's ctx→app map over every node's container records and
    // still-live containers (labels are app-local and may collide across
    // apps). The energy per identity is exactly what the §3.4 response
    // tag carries back from each serving machine; records created under
    // lost or corrupted identities simply fall out of the per-app sums.
    let mut energies = vec![0.0f64; apps.len()];
    // ctx → (energy, node count, app index) — the app rides along so the
    // obs feed below needs no second identity lookup per request.
    let mut by_ctx: FxHashMap<u64, (f64, u32, u32)> = FxHashMap::default();
    // The obs plane's energy-per-request sketches need the same per-ctx
    // assembly `retain_request_energy` builds; without either consumer
    // the per-ctx maps are skipped entirely.
    let want_ctx = cfg.retain_request_energy || obs.is_some();
    if want_ctx {
        by_ctx.reserve(
            nodes.iter().map(|n| n.facility.borrow().containers().records().len()).sum(),
        );
    }
    let mut seen_here: FxHashMap<u64, (f64, u32)> = FxHashMap::default();
    for node in &nodes {
        let facility = node.facility.borrow();
        seen_here.clear();
        for r in facility.containers().records() {
            if let Some(app_idx) = app_of(&ctx_app, r.ctx) {
                energies[app_idx] += r.energy_j + r.io_energy_j;
                if want_ctx {
                    seen_here.entry(r.ctx.0).or_insert((0.0, app_idx as u32)).0 +=
                        r.energy_j + r.io_energy_j;
                }
            }
        }
        for (ctx, c) in facility.containers().iter_live() {
            if let Some(app_idx) = app_of(&ctx_app, ctx) {
                energies[app_idx] += c.total_energy_j();
                if want_ctx {
                    seen_here.entry(ctx.0).or_insert((0.0, app_idx as u32)).0 +=
                        c.total_energy_j();
                }
            }
        }
        for (&ctx, &(e, app_idx)) in seen_here.iter() {
            let entry = by_ctx.entry(ctx).or_insert((0.0, 0, app_idx));
            entry.0 += e;
            entry.1 += 1;
        }
    }
    if let Some(o) = obs.as_mut() {
        // Sketch observation is commutative (integer bucket adds), so
        // the map's iteration order is fine here — no sort needed.
        for (_, &(energy_j, _, app_idx)) in by_ctx.iter() {
            o.note_request_energy(Some(app_idx as usize), energy_j);
        }
    }
    let mut energy_by_ctx: Vec<CtxEnergy> = Vec::new();
    if cfg.retain_request_energy {
        energy_by_ctx = by_ctx
            .into_iter()
            .map(|(ctx, (energy_j, nodes, _))| CtxEnergy { ctx, energy_j, nodes })
            .collect();
        energy_by_ctx.sort_by_key(|c| c.ctx);
    }

    let response_by_app = cfg.apps.iter().copied().zip(summaries).collect();
    let energy_by_app_j = cfg.apps.iter().copied().zip(energies).collect();
    let mut fault_counts = [0u64; hwsim::FaultKind::ALL.len()];
    let mut tags_lost = 0u64;
    let mut tags_corrupted = 0u64;
    let mut crashes = 0u64;
    let mut checkpoints = 0u64;
    for node in &nodes {
        for (total, n) in
            fault_counts.iter_mut().zip(node.kernel.machine().fault_log().counts())
        {
            *total += n;
        }
        for (total, n) in fault_counts.iter_mut().zip(node.carried_fault_counts) {
            *total += n;
        }
        let ks = node.kernel.stats();
        tags_lost += ks.tags_lost + node.carried_tags_lost;
        tags_corrupted += ks.tags_corrupted + node.carried_tags_corrupted;
        crashes += node.crashes as u64;
        checkpoints += node.checkpoints;
    }
    if let Some(ix) =
        hwsim::FaultKind::ALL.iter().position(|k| *k == hwsim::FaultKind::NodeCrash)
    {
        fault_counts[ix] += crashes;
    }
    // Per-request energy provenance: every retained container record
    // (and still-live container) becomes one node → incarnation →
    // container leaf with cpu/throttled/io segments. A record's
    // incarnation is the number of this node's crashes at or before its
    // creation, so records restored from a crash journal keep the
    // incarnation they accrued in.
    let provenance: Vec<telemetry::obs::ProvenanceEntry> =
        if obs.as_ref().is_some_and(ObsPlane::wants_provenance) {
            let mut crash_times: Vec<Vec<SimTime>> = vec![Vec::new(); nodes.len()];
            for cr in &crash_log {
                crash_times[cr.node].push(cr.at);
            }
            let mut out = Vec::new();
            for (n, node) in nodes.iter().enumerate() {
                let f = node.facility.borrow();
                let inc_of = |created: SimTime| {
                    crash_times[n].iter().take_while(|&&ct| ct <= created).count() as u32
                };
                for r in f.containers().records() {
                    out.push(telemetry::obs::ProvenanceEntry {
                        node: n as u32,
                        incarnation: inc_of(r.created_at),
                        ctx: r.ctx.0,
                        label: r.label.map(i64::from).unwrap_or(-1),
                        cpu_j: (r.energy_j - r.throttled_j).max(0.0),
                        throttled_j: r.throttled_j,
                        io_j: r.io_energy_j,
                    });
                }
                for (ctx, c) in f.containers().iter_live() {
                    out.push(telemetry::obs::ProvenanceEntry {
                        node: n as u32,
                        incarnation: node.crashes,
                        ctx: ctx.0,
                        label: c.label().map(i64::from).unwrap_or(-1),
                        cpu_j: (c.energy_j() - c.throttled_j()).max(0.0),
                        throttled_j: c.throttled_j(),
                        io_j: c.io_energy_j(),
                    });
                }
            }
            out
        } else {
            Vec::new()
        };
    let obs_outcome = obs.map(|o| Box::new(o.finish(provenance)));
    if let Some(o) = obs_outcome.as_ref() {
        workloads::note_obs(workloads::ObsDigest {
            alerts: o.report.alerts.len() as u64,
            p99_j_per_req: o
                .report
                .sketches
                .get("energy_j_per_req/fleet")
                .map(|s| s.quantile(0.99))
                .unwrap_or(0.0),
        });
    }
    ClusterOutcome {
        policy: policies[0].name(),
        per_node,
        response_by_app,
        energy_by_app_j,
        energy_by_ctx,
        dispatched,
        completed,
        rerouted,
        dropped,
        shed,
        lost_in_crash,
        retried,
        hedged,
        stale_replies,
        crashes,
        checkpoints,
        crash_log,
        in_flight: inflight.len() as u64,
        decisions,
        degradations_detected,
        tags_lost,
        tags_corrupted,
        fault_counts,
        obs: obs_outcome,
        scale_log,
        scale_outs,
        scale_ins,
        upgrades,
        brownout_engagements,
        brownout_releases,
        autoscale_evals: scaler.as_ref().map_or(0, Autoscaler::evals),
        provisioning_energy_j,
        idle_energy_j: fleet_idle_energy_j,
        peak_power_w,
    }
}
