//! The two-machine cluster simulation (paper §4.4).
//!
//! Each node is a full machine + kernel + facility running the worker
//! pools of every application; a dispatcher advances the nodes in
//! lockstep, generates a Poisson arrival stream mixing the applications
//! 50/50 by load, and routes each request according to the configured
//! [`DistributionPolicy`]. Request contexts propagate across the machine
//! boundary in the message tag, as in §3.4.

use crate::policy::{ArrivalView, DistributionPolicy, NodeView};
use analysis::stats::Summary;
use hwsim::{plan_node_faults, DutyCycle, FaultConfig, Machine, MachineSpec, NodeFaultWindow};
use ossim::{ContextId, Kernel, KernelConfig, SocketId};
use power_containers::{Approach, FacilityConfig, FacilityState, PowerContainerFacility};
use simkern::{SimDuration, SimRng, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use workloads::{AppEnv, MachineCalibration, RunStats, ServerApp, WorkloadKind};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node machine specs; node 0 should be the newest machine.
    pub nodes: Vec<MachineSpec>,
    /// Applications in the combined workload (equal load shares).
    pub apps: Vec<WorkloadKind>,
    /// Run length.
    pub duration: SimDuration,
    /// Root seed.
    pub seed: u64,
    /// Worker-pool size per core per app.
    pub workers_per_core: usize,
    /// Offered volume as a fraction of the maximum the *simple balance*
    /// policy can support (the paper's experiment runs at that maximum).
    pub volume: f64,
    /// Fault injection: machine-level faults (meters, counters, tags)
    /// are applied to every node with a node-specific seed; the
    /// node-level slowdown/blackout rates drive a precomputed window
    /// plan the dispatcher must ride out.
    pub faults: FaultConfig,
    /// Trace sink; dispatcher events land on track 3, node `n`'s
    /// fault windows and per-node facility events on track `10 + n`.
    /// Disabled by default.
    pub telemetry: telemetry::Telemetry,
}

impl ClusterConfig {
    /// The paper's setup: SandyBridge + Woodcrest, GAE-Vosao + RSA-crypto
    /// at the simple-balance maximum volume.
    pub fn paper_setup() -> ClusterConfig {
        ClusterConfig {
            nodes: vec![MachineSpec::sandybridge(), MachineSpec::woodcrest()],
            apps: vec![WorkloadKind::GaeVosao, WorkloadKind::RsaCrypto],
            duration: SimDuration::from_secs(10),
            seed: 42,
            workers_per_core: 4,
            volume: 1.0,
            faults: FaultConfig::none(),
            telemetry: telemetry::Telemetry::disabled(),
        }
    }
}

/// The dispatcher's trace track.
const DISPATCHER_TRACK: u32 = 3;

/// The trace track of node `n` (fault windows, per-node markers).
fn node_track(n: usize) -> u32 {
    10 + n as u32
}

/// Health-check period of the dispatcher's degraded-node detector.
const HEALTH_CHECK_EVERY: SimDuration = SimDuration::from_millis(100);
/// Initial penalty a node receives when detected degraded.
const PENALTY_BASE: SimDuration = SimDuration::from_millis(200);
/// Penalty ceiling under exponential backoff.
const PENALTY_MAX: SimDuration = SimDuration::from_millis(1600);

struct Node {
    kernel: Kernel,
    facility: Rc<RefCell<FacilityState>>,
    stats: Rc<RefCell<RunStats>>,
    /// Per-app worker inboxes, with a round-robin cursor each.
    inboxes: Vec<(Vec<SocketId>, usize)>,
    /// Expected service seconds of each outstanding request.
    outstanding: HashMap<ContextId, f64>,
    outstanding_std: f64,
    /// Mean service seconds across the offered mix on this node.
    mean_service: f64,
    completions_seen: usize,
    /// This node's slowdown/blackout windows, in start order.
    fault_windows: Vec<NodeFaultWindow>,
    next_window: usize,
    /// The window currently in force, if any.
    active_window: Option<NodeFaultWindow>,
    /// Dispatcher-side health state: the node is avoided until
    /// `penalty_until` once the detector sees it stall.
    penalty_until: SimTime,
    penalty: SimDuration,
    last_health_check: SimTime,
    completions_at_check: usize,
    /// Trace sink shared with the dispatcher and this node's facility.
    tele: telemetry::Telemetry,
    /// This node's trace track (`10 + node index`).
    track: u32,
}

impl Node {
    fn view(&self) -> NodeView {
        NodeView {
            outstanding: self.outstanding_std,
            cores: self.kernel.machine().spec().total_cores(),
        }
    }

    /// Folds newly finished requests into the outstanding estimate.
    fn settle_completions(&mut self) {
        let stats = self.stats.borrow();
        let completions = stats.completions();
        for c in &completions[self.completions_seen..] {
            if let Some(secs) = self.outstanding.remove(&c.ctx) {
                self.outstanding_std -= secs / self.mean_service;
            }
        }
        self.completions_seen = completions.len();
    }

    /// Advances the node's kernel to `t`, applying any fault-window
    /// transitions exactly at their boundaries. A slowdown caps every
    /// core's duty cycle at the window's DVFS fraction; a blackout
    /// freezes the node outright — its kernel does not advance (so no
    /// request completes and no message is processed) until the window
    /// passes, after which it works through the backlog.
    fn advance_to(&mut self, t: SimTime) {
        loop {
            let boundary = match (&self.active_window, self.fault_windows.get(self.next_window))
            {
                (Some(w), _) => w.end,
                (None, Some(w)) => w.start,
                (None, None) => break,
            };
            if boundary > t {
                break;
            }
            match self.active_window.take() {
                Some(w) => {
                    if w.kind == hwsim::FaultKind::NodeSlowdown {
                        self.kernel.run_until(boundary);
                        self.set_all_duty(DutyCycle::FULL);
                    }
                    // A blackout held the kernel frozen; the run_until
                    // below (or the next call) replays the backlog.
                    self.tele.end_span(w.end, self.track);
                }
                None => {
                    let w = self.fault_windows[self.next_window];
                    self.next_window += 1;
                    self.kernel.run_until(w.start);
                    if w.kind == hwsim::FaultKind::NodeSlowdown {
                        self.set_all_duty(DutyCycle::at_most(w.factor));
                        self.tele.begin_span(
                            w.start,
                            "cluster",
                            "slowdown",
                            self.track,
                            &[("factor", w.factor.into())],
                        );
                    } else {
                        self.tele.begin_span(w.start, "cluster", "blackout", self.track, &[]);
                    }
                    self.active_window = Some(w);
                }
            }
        }
        let frozen = matches!(
            &self.active_window,
            Some(w) if w.kind == hwsim::FaultKind::NodeBlackout
        );
        if !frozen {
            self.kernel.run_until(t);
        }
    }

    fn set_all_duty(&mut self, duty: DutyCycle) {
        for c in 0..self.kernel.machine().spec().total_cores() {
            self.kernel.machine_mut().set_duty_cycle(hwsim::CoreId(c), duty);
        }
    }

    /// `true` while the dispatcher is steering load away from this node.
    fn penalized(&self, now: SimTime) -> bool {
        now < self.penalty_until
    }

    /// Periodic liveness probe: outstanding work with no completion
    /// progress since the last check marks the node degraded and extends
    /// its penalty with exponential backoff (bounded by
    /// [`PENALTY_MAX`]); progress resets the backoff. Returns `true`
    /// when a new degradation was detected.
    fn health_check(&mut self, now: SimTime) -> bool {
        if now.duration_since(self.last_health_check) < HEALTH_CHECK_EVERY {
            return false;
        }
        let stalled =
            !self.outstanding.is_empty() && self.completions_seen == self.completions_at_check;
        self.last_health_check = now;
        self.completions_at_check = self.completions_seen;
        if stalled {
            self.penalty_until = now + self.penalty;
            self.penalty = (self.penalty + self.penalty).min(PENALTY_MAX);
            true
        } else {
            self.penalty = PENALTY_BASE;
            false
        }
    }
}

/// Per-node results of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Machine name.
    pub machine: &'static str,
    /// Active energy drawn over the run, Joules.
    pub active_energy_j: f64,
    /// Active energy usage rate, Watts (the paper's Fig. 14 metric).
    pub energy_rate_w: f64,
    /// Requests completed on this node.
    pub completions: usize,
    /// Mean utilization over the run.
    pub utilization: f64,
}

/// Results of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The policy that produced this outcome.
    pub policy: &'static str,
    /// Per-node breakdown (same order as the config).
    pub per_node: Vec<NodeOutcome>,
    /// Response-time summary per application, seconds.
    pub response_by_app: Vec<(WorkloadKind, Summary)>,
    /// Per-application attributed energy, Joules — the dispatcher's
    /// comprehensive accounting assembled from the per-request statistics
    /// that ride response messages across the machine boundary (§3.4).
    pub energy_by_app_j: Vec<(WorkloadKind, f64)>,
    /// Requests dispatched.
    pub dispatched: u64,
    /// Requests completed cluster-wide.
    pub completed: usize,
    /// Requests the dispatcher steered away from a degraded (penalized)
    /// node to a healthy one.
    pub rerouted: u64,
    /// Requests dropped because every node was penalized at dispatch
    /// time (the bounded-retry give-up path).
    pub dropped: u64,
    /// Health-check degradation detections across the run.
    pub degradations_detected: u64,
    /// Machine-level faults injected across all nodes, by kind (indexed
    /// like [`hwsim::FaultKind::ALL`]).
    pub fault_counts: [u64; hwsim::FaultKind::ALL.len()],
}

impl ClusterOutcome {
    /// Combined active energy usage rate across nodes, Watts.
    pub fn total_energy_rate_w(&self) -> f64 {
        self.per_node.iter().map(|n| n.energy_rate_w).sum()
    }
}

/// Service seconds of one request of `app`/`label` on `spec`.
fn service_secs(app: &dyn ServerApp, spec: &MachineSpec) -> f64 {
    let scale = spec.work_scale(&app.representative_profile());
    app.mean_request_cycles() * scale / (spec.freq_ghz * 1e9)
}

/// The per-app arrival rate giving a 50/50 cycle split at the maximum
/// volume the simple-balance policy sustains (its constrained node is
/// the slowest one receiving half of each stream).
fn per_app_rate(cfg: &ClusterConfig) -> f64 {
    let apps: Vec<Box<dyn ServerApp>> = cfg.apps.iter().map(|k| k.app()).collect();
    // For each node: utilization per unit of per-app rate when it
    // receives 1/nodes of every stream.
    let share = 1.0 / cfg.nodes.len() as f64;
    let mut worst = 0.0_f64;
    for spec in &cfg.nodes {
        let cores = spec.total_cores() as f64;
        let util_per_rate: f64 = apps
            .iter()
            .map(|a| share * service_secs(a.as_ref(), spec) / cores)
            .sum();
        worst = worst.max(util_per_rate);
    }
    // Target ~88% utilization on the constrained node at volume 1.0.
    0.88 * cfg.volume / worst
}

/// Runs the cluster under `policy`.
///
/// `cals` supplies per-node calibrations (same order as
/// `cfg.nodes`).
pub fn run_cluster(
    policy: &mut dyn DistributionPolicy,
    cfg: &ClusterConfig,
    cals: &[MachineCalibration],
) -> ClusterOutcome {
    assert_eq!(cals.len(), cfg.nodes.len(), "one calibration per node");
    let apps: Vec<Box<dyn ServerApp>> = cfg.apps.iter().map(|k| k.app()).collect();
    let mut nodes: Vec<Node> = Vec::new();
    for (n, spec) in cfg.nodes.iter().enumerate() {
        let facility = PowerContainerFacility::new(
            cals[n].model_for(Approach::ChipShare),
            None,
            spec,
            FacilityConfig {
                approach: Approach::ChipShare,
                // Records feed the §3.4 response tagging: each completed
                // request's cumulative energy flows back to the
                // dispatcher for comprehensive accounting.
                retain_records: true,
                // Context ids are unique cluster-wide, so every node can
                // share one sink and attribution samples stay
                // per-container. (Kernel-level tracing stays off here:
                // per-tick switch events across N nodes would dwarf the
                // facility signal.)
                telemetry: cfg.telemetry.clone(),
                ..FacilityConfig::default()
            },
        );
        let state = facility.state();
        let mut machine = Machine::new(spec.clone(), cfg.seed.wrapping_add(n as u64));
        if cfg.faults.is_active() {
            // Same fault profile on every node, decorrelated by seed.
            machine.set_fault_config(FaultConfig {
                seed: cfg.faults.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..cfg.faults.clone()
            });
        }
        let mut kernel = Kernel::new(machine, KernelConfig::default());
        kernel.install_hooks(Box::new(facility));
        let stats = Rc::new(RefCell::new(RunStats::new()));
        let mut inboxes = Vec::new();
        for app in &apps {
            let env = AppEnv {
                stats: Rc::clone(&stats),
                workers: cfg.workers_per_core * spec.total_cores(),
                spec: spec.clone(),
                seed: cfg.seed.wrapping_add(1000 + n as u64),
                notify: None,
            };
            inboxes.push((app.setup(&mut kernel, &env), 0usize));
        }
        let mean_service = apps
            .iter()
            .map(|a| service_secs(a.as_ref(), spec))
            .sum::<f64>()
            / apps.len() as f64;
        nodes.push(Node {
            kernel,
            facility: state,
            stats,
            inboxes,
            outstanding: HashMap::new(),
            outstanding_std: 0.0,
            mean_service,
            completions_seen: 0,
            fault_windows: Vec::new(),
            next_window: 0,
            active_window: None,
            penalty_until: SimTime::ZERO,
            penalty: PENALTY_BASE,
            last_health_check: SimTime::ZERO,
            completions_at_check: 0,
            tele: cfg.telemetry.clone(),
            track: node_track(n),
        });
    }
    for w in plan_node_faults(&cfg.faults, nodes.len(), cfg.duration) {
        nodes[w.node].fault_windows.push(w);
    }

    let rate = per_app_rate(cfg);
    let mut rng = SimRng::new(cfg.seed).split(0xC1A5);
    let end = SimTime::ZERO + cfg.duration;
    let mut next_ctx = 1u64;
    let mut dispatched = 0u64;
    let mut rerouted = 0u64;
    let mut dropped = 0u64;
    let mut degradations_detected = 0u64;
    let mut ctx_app: HashMap<ContextId, usize> = HashMap::new();
    // Independent Poisson streams per app, merged.
    let mut next_arrival: Vec<SimTime> = (0..apps.len())
        .map(|_| SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(1.0 / rate)))
        .collect();

    loop {
        let (app_idx, &t) = next_arrival
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("apps nonempty");
        if t >= end {
            break;
        }
        next_arrival[app_idx] = t + SimDuration::from_secs_f64(rng.exponential(1.0 / rate));
        for (n, node) in nodes.iter_mut().enumerate() {
            node.advance_to(t);
            node.settle_completions();
            if node.health_check(t) {
                degradations_detected += 1;
                let penalty_ms = node.penalty_until.duration_since(t).as_secs_f64() * 1e3;
                cfg.telemetry.instant_on(
                    t,
                    "cluster",
                    "degraded",
                    DISPATCHER_TRACK,
                    &[("node", (n as u64).into()), ("penalty_ms", penalty_ms.into())],
                );
                cfg.telemetry.add_count("cluster.degradations", 1);
            }
        }
        let label = apps[app_idx].pick_label(&mut rng);
        let views: Vec<NodeView> = nodes.iter().map(Node::view).collect();
        let mut chosen = policy.choose(
            ArrivalView { app: cfg.apps[app_idx], label },
            &views,
        );
        if nodes[chosen].penalized(t) {
            // Bounded retry: probe the remaining nodes for the healthy
            // one with the least outstanding work; if every node is
            // penalized, give the request up rather than pile onto a
            // degraded machine.
            let alt = (0..nodes.len())
                .filter(|&i| i != chosen && !nodes[i].penalized(t))
                .min_by(|&a, &b| {
                    nodes[a].outstanding_std.total_cmp(&nodes[b].outstanding_std)
                });
            match alt {
                Some(i) => {
                    cfg.telemetry.instant_on(
                        t,
                        "cluster",
                        "reroute",
                        DISPATCHER_TRACK,
                        &[("from", (chosen as u64).into()), ("to", (i as u64).into())],
                    );
                    cfg.telemetry.add_count("cluster.rerouted", 1);
                    chosen = i;
                    rerouted += 1;
                }
                None => {
                    cfg.telemetry.instant_on(
                        t,
                        "cluster",
                        "drop",
                        DISPATCHER_TRACK,
                        &[("node", (chosen as u64).into())],
                    );
                    cfg.telemetry.add_count("cluster.dropped", 1);
                    dropped += 1;
                    continue;
                }
            }
        }
        let node = &mut nodes[chosen];
        let ctx = ContextId(next_ctx);
        next_ctx += 1;
        dispatched += 1;
        cfg.telemetry.add_count("cluster.dispatched", 1);
        ctx_app.insert(ctx, app_idx);
        node.stats.borrow_mut().record_arrival(ctx, label, t);
        node.facility
            .borrow_mut()
            .containers_mut()
            .set_label(ctx, label, t);
        let spec = node.kernel.machine().spec().clone();
        let secs = service_secs(apps[app_idx].as_ref(), &spec);
        node.outstanding.insert(ctx, secs);
        node.outstanding_std += secs / node.mean_service;
        let (inbox_list, cursor) = &mut node.inboxes[app_idx];
        let inbox = inbox_list[*cursor % inbox_list.len()];
        *cursor += 1;
        node.kernel.inject_message(inbox, 512, Some(ctx), label as u64);
    }
    for node in &mut nodes {
        node.advance_to(end);
        // Let a node frozen right up to the end replay its backlog so
        // energy accounting covers the whole run.
        if node.active_window.take().is_some() {
            node.tele.end_span(end, node.track);
        }
        node.kernel.run_until(end);
        node.settle_completions();
    }
    let cluster_degrade = nodes
        .iter()
        .map(|n| n.facility.borrow().degrade_stats())
        .fold(power_containers::DegradeStats::default(), |acc, d| acc + d);
    workloads::note_degrade(cluster_degrade);

    let secs = cfg.duration.as_secs_f64();
    let per_node: Vec<NodeOutcome> = nodes
        .iter()
        .map(|n| {
            let m = n.kernel.machine();
            let cores = m.spec().total_cores();
            let util = (0..cores)
                .map(|c| m.counters(hwsim::CoreId(c)).core_utilization())
                .sum::<f64>()
                / cores as f64;
            NodeOutcome {
                machine: m.spec().name,
                active_energy_j: m.true_active_energy_j(),
                energy_rate_w: m.true_active_energy_j() / secs,
                completions: n.stats.borrow().completions().len(),
                utilization: util,
            }
        })
        .collect();

    // Per-app response-time summaries and the comprehensive per-app
    // energy accounting, resolved through the dispatcher's ctx→app map
    // (labels are app-local and may collide across apps). The energy per
    // request is exactly what the §3.4 response-message tag carries back
    // from the serving machine.
    let mut summaries: Vec<Summary> = vec![Summary::new(); apps.len()];
    let mut energies = vec![0.0f64; apps.len()];
    for node in &nodes {
        let stats = node.stats.borrow();
        for c in stats.completions() {
            if let Some(&app_idx) = ctx_app.get(&c.ctx) {
                summaries[app_idx].record(c.response_secs());
            }
        }
        let facility = node.facility.borrow();
        for r in facility.containers().records() {
            if let Some(&app_idx) = ctx_app.get(&r.ctx) {
                energies[app_idx] += r.energy_j + r.io_energy_j;
            }
        }
    }
    let response_by_app = cfg.apps.iter().copied().zip(summaries).collect();
    let energy_by_app_j = cfg.apps.iter().copied().zip(energies).collect();
    let completed = per_node.iter().map(|n| n.completions).sum();
    let mut fault_counts = [0u64; hwsim::FaultKind::ALL.len()];
    for node in &nodes {
        for (total, n) in
            fault_counts.iter_mut().zip(node.kernel.machine().fault_log().counts())
        {
            *total += n;
        }
    }
    ClusterOutcome {
        policy: policy.name(),
        per_node,
        response_by_app,
        energy_by_app_j,
        dispatched,
        completed,
        rerouted,
        dropped,
        degradations_detected,
        fault_counts,
    }
}
