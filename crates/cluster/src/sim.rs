//! The sharded N-node serving simulation (paper §3.4, §4.4, scaled).
//!
//! Each node is a full machine + kernel + facility running the worker
//! pools of every application. Nodes are arranged into serving tiers
//! (web → app → db); a dispatcher drives a deterministic open-loop
//! arrival process ([`workloads::OpenLoopGen`]) and routes every request
//! through the pipeline according to the per-tier
//! [`DistributionPolicy`]. Request contexts propagate across node
//! boundaries in the socket-message tag, as in §3.4: a node's reply
//! carries the tag back out, and the dispatcher forwards the *observed*
//! tag to the next tier — so a tag lost or corrupted in transit degrades
//! attribution exactly as it would on real hardware, while request flow
//! itself stays intact via a serial number in the message payload.
//!
//! Dispatcher decisions are batched per tick: the engine advances every
//! node to the tick boundary once, drains stage completions, runs
//! health checks, and only then routes the tick's batch of arrivals
//! against incrementally maintained load views. Per-request dispatcher
//! work is therefore O(policy) — independent of node count — which is
//! what keeps throughput flat as the fleet grows.

use crate::policy::{ArrivalView, DistributionPolicy, NodeView};
use crate::topology::{generation_rank, Topology};
use analysis::stats::Summary;
use hwsim::{plan_node_faults, DutyCycle, FaultConfig, Machine, MachineSpec, NodeFaultWindow};
use ossim::{ContextId, Kernel, KernelConfig, SocketId};
use power_containers::{
    Approach, ConditioningPolicy, FacilityConfig, FacilityState, PowerContainerFacility,
};
use simkern::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use workloads::{AppEnv, MachineCalibration, OpenLoopGen, RunStats, ServerApp, WorkloadKind};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node machine specs, flat across tiers; within a tier, newer
    /// machines should come first (use [`Topology`] to build this).
    pub nodes: Vec<MachineSpec>,
    /// Tier membership: `tiers[t]` lists the flat node indices serving
    /// pipeline stage `t`. The tiers must partition `0..nodes.len()`.
    pub tiers: Vec<Vec<usize>>,
    /// Applications in the combined workload (equal load shares).
    pub apps: Vec<WorkloadKind>,
    /// Run length.
    pub duration: SimDuration,
    /// Root seed.
    pub seed: u64,
    /// Worker-pool size per core per app.
    pub workers_per_core: usize,
    /// Offered volume as a fraction of the maximum the *simple balance*
    /// policy can support (the paper's experiment runs at that maximum).
    pub volume: f64,
    /// Cluster-wide active-power cap, enforced through per-request
    /// duty-cycle conditioning of each node's proportional share
    /// ([`ConditioningPolicy::node_share`]). `None` disables capping.
    pub power_cap_w: Option<f64>,
    /// Dispatcher batching quantum: nodes advance and decisions are
    /// made once per tick.
    pub tick: SimDuration,
    /// Retain per-request energy totals in
    /// [`ClusterOutcome::energy_by_ctx`] (costs memory proportional to
    /// the request count; off by default).
    pub retain_request_energy: bool,
    /// Fault injection: machine-level faults (meters, counters, tags)
    /// are applied to every node with a node-specific seed; the
    /// node-level slowdown/blackout rates drive a precomputed window
    /// plan the dispatcher must ride out.
    pub faults: FaultConfig,
    /// Trace sink; dispatcher events land on track 3, node `n`'s
    /// fault windows and per-node facility events on track `10 + n`.
    /// Disabled by default.
    pub telemetry: telemetry::Telemetry,
}

impl ClusterConfig {
    /// The paper's setup: SandyBridge + Woodcrest in a single tier,
    /// GAE-Vosao + RSA-crypto at the simple-balance maximum volume.
    pub fn paper_setup() -> ClusterConfig {
        ClusterConfig {
            nodes: vec![MachineSpec::sandybridge(), MachineSpec::woodcrest()],
            tiers: vec![vec![0, 1]],
            apps: vec![WorkloadKind::GaeVosao, WorkloadKind::RsaCrypto],
            duration: SimDuration::from_secs(10),
            seed: 42,
            workers_per_core: 4,
            volume: 1.0,
            power_cap_w: None,
            tick: SimDuration::from_millis(1),
            retain_request_energy: false,
            faults: FaultConfig::none(),
            telemetry: telemetry::Telemetry::disabled(),
        }
    }

    /// A config serving the paper's GAE-Vosao + RSA-crypto mix on an
    /// arbitrary [`Topology`].
    pub fn sharded(topology: &Topology) -> ClusterConfig {
        ClusterConfig {
            nodes: topology.flat_specs(),
            tiers: topology.tier_indices(),
            ..ClusterConfig::paper_setup()
        }
    }
}

/// The dispatcher's trace track.
const DISPATCHER_TRACK: u32 = 3;

/// The trace track of node `n` (fault windows, per-node markers).
fn node_track(n: usize) -> u32 {
    10 + n as u32
}

/// Health-check period of the dispatcher's degraded-node detector.
const HEALTH_CHECK_EVERY: SimDuration = SimDuration::from_millis(100);
/// Initial penalty a node receives when detected degraded.
const PENALTY_BASE: SimDuration = SimDuration::from_millis(200);
/// Penalty ceiling under exponential backoff.
const PENALTY_MAX: SimDuration = SimDuration::from_millis(1600);

struct Node {
    kernel: Kernel,
    facility: Rc<RefCell<FacilityState>>,
    stats: Rc<RefCell<RunStats>>,
    /// Per-app worker inboxes, with a round-robin cursor each.
    inboxes: Vec<(Vec<SocketId>, usize)>,
    /// Dispatcher-side endpoint of this node's completion channel; the
    /// worker pools respond here while still bound, so replies carry
    /// the request tag back across the node boundary (§3.4).
    reply_rx: SocketId,
    /// Expected service seconds of each outstanding request, by serial.
    outstanding: HashMap<u64, f64>,
    outstanding_std: f64,
    /// Mean service seconds across the offered mix on this node.
    mean_service: f64,
    /// Requests injected into this node (initial dispatches + hops).
    injected: u64,
    /// Stage completions drained from this node.
    responses: u64,
    /// Machine-generation rank (lower = newer), for the policies.
    rank: u8,
    /// Which tier this node serves.
    tier: usize,
    /// This node's slowdown/blackout windows, in start order.
    fault_windows: Vec<NodeFaultWindow>,
    next_window: usize,
    /// The window currently in force, if any.
    active_window: Option<NodeFaultWindow>,
    /// Dispatcher-side health state: the node is avoided until
    /// `penalty_until` once the detector sees it stall.
    penalty_until: SimTime,
    penalty: SimDuration,
    last_health_check: SimTime,
    responses_at_check: u64,
    /// Trace sink shared with the dispatcher and this node's facility.
    tele: telemetry::Telemetry,
    /// This node's trace track (`10 + node index`).
    track: u32,
}

impl Node {
    fn view(&self) -> NodeView {
        NodeView {
            outstanding: self.outstanding_std,
            cores: self.kernel.machine().spec().total_cores(),
            rank: self.rank,
        }
    }

    /// Removes `serial` from the outstanding estimate.
    fn settle(&mut self, serial: u64) {
        if let Some(secs) = self.outstanding.remove(&serial) {
            self.outstanding_std -= secs / self.mean_service;
        }
        self.responses += 1;
    }

    /// Adds `serial` (with service estimate `secs`) to the outstanding
    /// estimate.
    fn assign(&mut self, serial: u64, secs: f64) {
        self.outstanding.insert(serial, secs);
        self.outstanding_std += secs / self.mean_service;
        self.injected += 1;
    }

    /// Advances the node's kernel to `t`, applying any fault-window
    /// transitions exactly at their boundaries. A slowdown caps every
    /// core's duty cycle at the window's DVFS fraction; a blackout
    /// freezes the node outright — its kernel does not advance (so no
    /// request completes and no message is processed) until the window
    /// passes, after which it works through the backlog.
    fn advance_to(&mut self, t: SimTime) {
        loop {
            let boundary = match (&self.active_window, self.fault_windows.get(self.next_window))
            {
                (Some(w), _) => w.end,
                (None, Some(w)) => w.start,
                (None, None) => break,
            };
            if boundary > t {
                break;
            }
            match self.active_window.take() {
                Some(w) => {
                    if w.kind == hwsim::FaultKind::NodeSlowdown {
                        self.kernel.run_until(boundary);
                        self.set_all_duty(DutyCycle::FULL);
                    }
                    // A blackout held the kernel frozen; the run_until
                    // below (or the next call) replays the backlog.
                    self.tele.end_span(w.end, self.track);
                }
                None => {
                    let w = self.fault_windows[self.next_window];
                    self.next_window += 1;
                    self.kernel.run_until(w.start);
                    if w.kind == hwsim::FaultKind::NodeSlowdown {
                        self.set_all_duty(DutyCycle::at_most(w.factor));
                        self.tele.begin_span(
                            w.start,
                            "cluster",
                            "slowdown",
                            self.track,
                            &[("factor", w.factor.into())],
                        );
                    } else {
                        self.tele.begin_span(w.start, "cluster", "blackout", self.track, &[]);
                    }
                    self.active_window = Some(w);
                }
            }
        }
        let frozen = matches!(
            &self.active_window,
            Some(w) if w.kind == hwsim::FaultKind::NodeBlackout
        );
        if !frozen {
            self.kernel.run_until(t);
        }
    }

    fn set_all_duty(&mut self, duty: DutyCycle) {
        for c in 0..self.kernel.machine().spec().total_cores() {
            self.kernel.machine_mut().set_duty_cycle(hwsim::CoreId(c), duty);
        }
    }

    /// `true` while the dispatcher is steering load away from this node.
    fn penalized(&self, now: SimTime) -> bool {
        now < self.penalty_until
    }

    /// Periodic liveness probe: outstanding work with no stage
    /// completions since the last check marks the node degraded and
    /// extends its penalty with exponential backoff (bounded by
    /// [`PENALTY_MAX`]); progress resets the backoff. Returns `true`
    /// when a new degradation was detected.
    fn health_check(&mut self, now: SimTime) -> bool {
        if now.duration_since(self.last_health_check) < HEALTH_CHECK_EVERY {
            return false;
        }
        let stalled =
            !self.outstanding.is_empty() && self.responses == self.responses_at_check;
        self.last_health_check = now;
        self.responses_at_check = self.responses;
        if stalled {
            self.penalty_until = now + self.penalty;
            self.penalty = (self.penalty + self.penalty).min(PENALTY_MAX);
            true
        } else {
            self.penalty = PENALTY_BASE;
            false
        }
    }

    /// Energy the facility attributed on this node (requests +
    /// background, CPU + I/O) — mirrors
    /// `workloads::RunOutcome::attributed_energy_j`.
    fn attributed_energy_j(&self) -> f64 {
        let f = self.facility.borrow();
        let c = f.containers();
        c.total_energy_with_background_j()
            + c.total_request_io_energy_j()
            + c.background().io_energy_j()
    }
}

/// Per-node results of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Machine name.
    pub machine: &'static str,
    /// Which pipeline tier the node served.
    pub tier: usize,
    /// Active energy drawn over the run, Joules.
    pub active_energy_j: f64,
    /// Energy the node's facility attributed (requests + background,
    /// CPU + I/O), Joules — compare against `active_energy_j` for the
    /// per-node conservation invariant.
    pub attributed_energy_j: f64,
    /// Active energy usage rate, Watts (the paper's Fig. 14 metric).
    pub energy_rate_w: f64,
    /// Requests injected into this node (dispatches + pipeline hops).
    pub dispatched: u64,
    /// Stage completions this node served.
    pub completions: usize,
    /// Requests still queued or running on this node at the end.
    pub in_flight: u64,
    /// Mean utilization over the run.
    pub utilization: f64,
}

/// Cumulative attributed energy of one request across every node it
/// touched (only populated with
/// [`ClusterConfig::retain_request_energy`]).
#[derive(Debug, Clone, Copy)]
pub struct CtxEnergy {
    /// The request's true context id (as allocated at dispatch).
    pub ctx: u64,
    /// Energy attributed to that identity across the fleet, Joules.
    pub energy_j: f64,
    /// How many distinct nodes attributed energy to it.
    pub nodes: u32,
}

/// Results of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The tier-0 policy that produced this outcome.
    pub policy: &'static str,
    /// Per-node breakdown (same order as the config).
    pub per_node: Vec<NodeOutcome>,
    /// End-to-end response-time summary per application, seconds.
    pub response_by_app: Vec<(WorkloadKind, Summary)>,
    /// Per-application attributed energy, Joules — the dispatcher's
    /// comprehensive accounting assembled from the per-request container
    /// records on every node, resolved through the true request identity
    /// (§3.4). Tag loss or corruption in transit makes energy fall out
    /// of this accounting, exactly as it would on real hardware.
    pub energy_by_app_j: Vec<(WorkloadKind, f64)>,
    /// Per-request attributed energy across nodes (empty unless
    /// [`ClusterConfig::retain_request_energy`] is set).
    pub energy_by_ctx: Vec<CtxEnergy>,
    /// Requests the load generator offered to the dispatcher.
    pub dispatched: u64,
    /// Requests that completed the full pipeline.
    pub completed: usize,
    /// Requests the dispatcher steered away from a degraded (penalized)
    /// node to a healthy one.
    pub rerouted: u64,
    /// Requests dropped because every node of the target tier was
    /// penalized (at dispatch or at a pipeline hop).
    pub dropped: u64,
    /// Requests still inside the pipeline when the run ended.
    pub in_flight: u64,
    /// Routing decisions the dispatcher made (dispatches + hops).
    pub decisions: u64,
    /// Health-check degradation detections across the run.
    pub degradations_detected: u64,
    /// Context tags stripped in transit across all nodes.
    pub tags_lost: u64,
    /// Context tags corrupted in transit across all nodes.
    pub tags_corrupted: u64,
    /// Machine-level faults injected across all nodes, by kind (indexed
    /// like [`hwsim::FaultKind::ALL`]).
    pub fault_counts: [u64; hwsim::FaultKind::ALL.len()],
}

impl ClusterOutcome {
    /// Combined active energy usage rate across nodes, Watts.
    pub fn total_energy_rate_w(&self) -> f64 {
        self.per_node.iter().map(|n| n.energy_rate_w).sum()
    }
}

/// Service seconds of one request of `app`/`label` on `spec`.
fn service_secs(app: &dyn ServerApp, spec: &MachineSpec) -> f64 {
    let scale = spec.work_scale(&app.representative_profile());
    app.mean_request_cycles() * scale / (spec.freq_ghz * 1e9)
}

/// The per-app arrival rate giving an equal cycle split at the maximum
/// volume the simple-balance policy sustains: the bottleneck node —
/// across every tier, since each request visits each tier once — is the
/// slowest one receiving its tier's equal share of every stream.
fn per_app_rate(cfg: &ClusterConfig) -> f64 {
    let apps: Vec<Box<dyn ServerApp>> = cfg.apps.iter().map(|k| k.app()).collect();
    let mut worst = 0.0_f64;
    for tier in &cfg.tiers {
        let share = 1.0 / tier.len() as f64;
        for &ni in tier {
            let spec = &cfg.nodes[ni];
            let cores = spec.total_cores() as f64;
            let util_per_rate: f64 = apps
                .iter()
                .map(|a| share * service_secs(a.as_ref(), spec) / cores)
                .sum();
            worst = worst.max(util_per_rate);
        }
    }
    // Target ~88% utilization on the constrained node at volume 1.0.
    0.88 * cfg.volume / worst
}

/// Total request arrivals per simulated second the configuration offers
/// (all apps combined) — what experiments use to size run durations for
/// a target request count.
pub fn offered_cluster_rate(cfg: &ClusterConfig) -> f64 {
    per_app_rate(cfg) * cfg.apps.len() as f64
}

/// One live request's dispatcher-side state.
struct InFlight {
    app: usize,
    label: u32,
    arrived: SimTime,
    /// Tier currently serving the request.
    stage: usize,
}

/// Runs the cluster under a single `policy` (requires a single-tier
/// configuration — the paper's §4.4 shape).
///
/// `cals` supplies per-node calibrations (same order as `cfg.nodes`).
pub fn run_cluster(
    policy: &mut dyn DistributionPolicy,
    cfg: &ClusterConfig,
    cals: &[MachineCalibration],
) -> ClusterOutcome {
    assert_eq!(
        cfg.tiers.len(),
        1,
        "run_cluster drives a single-tier cluster; use run_pipeline for multi-stage"
    );
    run_engine(&mut [policy], cfg, cals)
}

/// Runs a multi-stage cluster, one policy per tier (`policies[t]`
/// routes stage `t`).
pub fn run_pipeline(
    policies: &mut [Box<dyn DistributionPolicy>],
    cfg: &ClusterConfig,
    cals: &[MachineCalibration],
) -> ClusterOutcome {
    let mut refs: Vec<&mut dyn DistributionPolicy> =
        policies.iter_mut().map(|p| p.as_mut() as &mut dyn DistributionPolicy).collect();
    run_engine(&mut refs, cfg, cals)
}

/// Chooses a node of `tier` for `req` via `policy`, applying the
/// penalty/reroute/drop machinery. Returns the flat node index, or
/// `None` when every node of the tier is penalized (the bounded-retry
/// give-up path).
#[allow(clippy::too_many_arguments)]
fn route(
    policy: &mut dyn DistributionPolicy,
    tier: &[usize],
    nodes: &[Node],
    req: ArrivalView,
    t: SimTime,
    tele: &telemetry::Telemetry,
    rerouted: &mut u64,
    decisions: &mut u64,
) -> Option<usize> {
    let views: Vec<NodeView> = tier.iter().map(|&i| nodes[i].view()).collect();
    *decisions += 1;
    let mut chosen = tier[policy.choose(req, &views)];
    if nodes[chosen].penalized(t) {
        // Bounded retry: probe the tier's remaining nodes for the
        // healthy one with the least outstanding work; if every node is
        // penalized, give the request up rather than pile onto a
        // degraded machine.
        let alt = tier
            .iter()
            .copied()
            .filter(|&i| i != chosen && !nodes[i].penalized(t))
            .min_by(|&a, &b| nodes[a].outstanding_std.total_cmp(&nodes[b].outstanding_std));
        match alt {
            Some(i) => {
                tele.instant_on(
                    t,
                    "cluster",
                    "reroute",
                    DISPATCHER_TRACK,
                    &[("from", (chosen as u64).into()), ("to", (i as u64).into())],
                );
                tele.add_count("cluster.rerouted", 1);
                chosen = i;
                *rerouted += 1;
            }
            None => {
                tele.instant_on(
                    t,
                    "cluster",
                    "drop",
                    DISPATCHER_TRACK,
                    &[("node", (chosen as u64).into())],
                );
                tele.add_count("cluster.dropped", 1);
                return None;
            }
        }
    }
    Some(chosen)
}

/// Injects one stage of `serial` into `node`, with the given context
/// tag on the wire (`Some` true identity at dispatch; whatever tag the
/// previous stage's reply carried at a hop).
fn inject_stage(
    node: &mut Node,
    app_idx: usize,
    serial: u64,
    label: u32,
    wire_ctx: Option<ContextId>,
    secs: f64,
    t: SimTime,
) {
    if let Some(ctx) = wire_ctx {
        node.stats.borrow_mut().record_arrival(ctx, label, t);
        node.facility.borrow_mut().containers_mut().set_label(ctx, label, t);
    }
    node.assign(serial, secs);
    let (inbox_list, cursor) = &mut node.inboxes[app_idx];
    let inbox = inbox_list[*cursor % inbox_list.len()];
    *cursor += 1;
    let payload = (serial << 32) | label as u64;
    node.kernel.inject_message(inbox, 512, wire_ctx, payload);
}

fn run_engine(
    policies: &mut [&mut dyn DistributionPolicy],
    cfg: &ClusterConfig,
    cals: &[MachineCalibration],
) -> ClusterOutcome {
    assert_eq!(cals.len(), cfg.nodes.len(), "one calibration per node");
    assert_eq!(policies.len(), cfg.tiers.len(), "one policy per tier");
    assert!(!cfg.tick.is_zero(), "dispatcher tick must be positive");
    {
        // The tiers must partition the flat node list.
        let mut seen = vec![false; cfg.nodes.len()];
        for &i in cfg.tiers.iter().flatten() {
            assert!(i < cfg.nodes.len(), "tier references unknown node {i}");
            assert!(!seen[i], "node {i} appears in two tiers");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "every node must belong to a tier");
        assert!(cfg.tiers.iter().all(|t| !t.is_empty()), "tiers must be nonempty");
    }
    let apps: Vec<Box<dyn ServerApp>> = cfg.apps.iter().map(|k| k.app()).collect();
    let total_cores: usize = cfg.nodes.iter().map(MachineSpec::total_cores).sum();
    let tier_of: HashMap<usize, usize> = cfg
        .tiers
        .iter()
        .enumerate()
        .flat_map(|(t, ix)| ix.iter().map(move |&i| (i, t)))
        .collect();

    let mut nodes: Vec<Node> = Vec::new();
    for (n, spec) in cfg.nodes.iter().enumerate() {
        let facility = PowerContainerFacility::new(
            cals[n].model_for(Approach::ChipShare),
            None,
            spec,
            FacilityConfig {
                approach: Approach::ChipShare,
                // Records feed the §3.4 response tagging: each completed
                // request's cumulative energy flows back to the
                // dispatcher for comprehensive accounting.
                retain_records: true,
                // A cluster-wide cap decomposes into per-node shares
                // enforced by ordinary per-request conditioning.
                conditioning: cfg
                    .power_cap_w
                    .map(|cap| ConditioningPolicy::node_share(cap, spec.total_cores(), total_cores)),
                // Context ids are unique cluster-wide, so every node can
                // share one sink and attribution samples stay
                // per-container. (Kernel-level tracing stays off here:
                // per-tick switch events across N nodes would dwarf the
                // facility signal.)
                telemetry: cfg.telemetry.clone(),
                ..FacilityConfig::default()
            },
        );
        let state = facility.state();
        let mut machine = Machine::new(spec.clone(), cfg.seed.wrapping_add(n as u64));
        if cfg.faults.is_active() {
            // Same fault profile on every node, decorrelated by seed.
            machine.set_fault_config(FaultConfig {
                seed: cfg.faults.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..cfg.faults.clone()
            });
        }
        let mut kernel = Kernel::new(machine, KernelConfig::default());
        kernel.install_hooks(Box::new(facility));
        let stats = Rc::new(RefCell::new(RunStats::new()));
        let (notify_tx, reply_rx) = kernel.new_socket_pair();
        let mut inboxes = Vec::new();
        for app in &apps {
            let env = AppEnv {
                stats: Rc::clone(&stats),
                workers: cfg.workers_per_core * spec.total_cores(),
                spec: spec.clone(),
                seed: cfg.seed.wrapping_add(1000 + n as u64),
                notify: Some(notify_tx),
            };
            inboxes.push((app.setup(&mut kernel, &env), 0usize));
        }
        let mean_service = apps
            .iter()
            .map(|a| service_secs(a.as_ref(), spec))
            .sum::<f64>()
            / apps.len() as f64;
        nodes.push(Node {
            kernel,
            facility: state,
            stats,
            inboxes,
            reply_rx,
            outstanding: HashMap::new(),
            outstanding_std: 0.0,
            mean_service,
            injected: 0,
            responses: 0,
            rank: generation_rank(spec),
            tier: tier_of[&n],
            fault_windows: Vec::new(),
            next_window: 0,
            active_window: None,
            penalty_until: SimTime::ZERO,
            penalty: PENALTY_BASE,
            last_health_check: SimTime::ZERO,
            responses_at_check: 0,
            tele: cfg.telemetry.clone(),
            track: node_track(n),
        });
    }
    for w in plan_node_faults(&cfg.faults, nodes.len(), cfg.duration) {
        nodes[w.node].fault_windows.push(w);
    }

    // Per-node service estimate per app, so dispatch does not clone
    // machine specs on the hot path.
    let service: Vec<Vec<f64>> = cfg
        .nodes
        .iter()
        .map(|spec| apps.iter().map(|a| service_secs(a.as_ref(), spec)).collect())
        .collect();

    let rate = per_app_rate(cfg);
    let end = SimTime::ZERO + cfg.duration;
    let mut gen = OpenLoopGen::new(cfg.seed, &vec![rate; apps.len()], end);
    let mut pending = gen.next(&apps);

    let mut inflight: HashMap<u64, InFlight> = HashMap::new();
    let mut ctx_app: HashMap<ContextId, usize> = HashMap::new();
    let mut summaries: Vec<Summary> = vec![Summary::new(); apps.len()];
    let mut next_serial = 0u64;
    let mut next_ctx = 1u64;
    let mut dispatched = 0u64;
    let mut completed = 0usize;
    let mut rerouted = 0u64;
    let mut dropped = 0u64;
    let mut decisions = 0u64;
    let mut degradations_detected = 0u64;

    let mut t = SimTime::ZERO;
    loop {
        t = (t + cfg.tick).min(end);
        // 1. Advance every node to the tick boundary (once per tick, not
        //    once per arrival — the batching that keeps dispatcher work
        //    flat as the fleet grows).
        for node in nodes.iter_mut() {
            node.advance_to(t);
        }
        // 2. Drain stage completions; forward mid-pipeline requests to
        //    the next tier (carrying the tag observed on the wire) and
        //    finalize requests leaving the last tier.
        for n in 0..nodes.len() {
            let rx = nodes[n].reply_rx;
            let segs = nodes[n].kernel.drain_messages(rx);
            for seg in segs {
                let serial = seg.payload >> 32;
                let Some(fl) = inflight.get_mut(&serial) else { continue };
                nodes[n].settle(serial);
                let next_stage = fl.stage + 1;
                if next_stage < cfg.tiers.len() {
                    let (app_idx, label) = (fl.app, fl.label);
                    cfg.telemetry.instant_on(
                        t,
                        "cluster",
                        "hop",
                        DISPATCHER_TRACK,
                        &[("to_tier", (next_stage as u64).into())],
                    );
                    let req = ArrivalView { app: cfg.apps[app_idx], label };
                    match route(
                        policies[next_stage],
                        &cfg.tiers[next_stage],
                        &nodes,
                        req,
                        t,
                        &cfg.telemetry,
                        &mut rerouted,
                        &mut decisions,
                    ) {
                        Some(target) => {
                            fl.stage = next_stage;
                            // Propagate the identity as observed on the
                            // wire: a lost tag stays lost, a corrupted
                            // one misattributes downstream stages.
                            inject_stage(
                                &mut nodes[target],
                                app_idx,
                                serial,
                                label,
                                seg.ctx,
                                service[target][app_idx],
                                t,
                            );
                        }
                        None => {
                            inflight.remove(&serial);
                            dropped += 1;
                        }
                    }
                } else {
                    summaries[fl.app].record(t.duration_since(fl.arrived).as_secs_f64());
                    completed += 1;
                    inflight.remove(&serial);
                }
            }
        }
        // 3. Health checks.
        for (n, node) in nodes.iter_mut().enumerate() {
            if node.health_check(t) {
                degradations_detected += 1;
                let penalty_ms = node.penalty_until.duration_since(t).as_secs_f64() * 1e3;
                cfg.telemetry.instant_on(
                    t,
                    "cluster",
                    "degraded",
                    DISPATCHER_TRACK,
                    &[("node", (n as u64).into()), ("penalty_ms", penalty_ms.into())],
                );
                cfg.telemetry.add_count("cluster.degradations", 1);
            }
        }
        // 4. Dispatch the tick's batch of arrivals into tier 0.
        while let Some(a) = pending {
            if a.at > t {
                break;
            }
            pending = gen.next(&apps);
            dispatched += 1;
            cfg.telemetry.add_count("cluster.dispatched", 1);
            let req = ArrivalView { app: cfg.apps[a.app], label: a.label };
            let Some(target) = route(
                policies[0],
                &cfg.tiers[0],
                &nodes,
                req,
                a.at,
                &cfg.telemetry,
                &mut rerouted,
                &mut decisions,
            ) else {
                dropped += 1;
                continue;
            };
            let serial = next_serial;
            next_serial += 1;
            debug_assert!(serial < u32::MAX as u64, "serial space exhausted");
            let ctx = ContextId(next_ctx);
            next_ctx += 1;
            ctx_app.insert(ctx, a.app);
            inflight.insert(
                serial,
                InFlight { app: a.app, label: a.label, arrived: a.at, stage: 0 },
            );
            inject_stage(
                &mut nodes[target],
                a.app,
                serial,
                a.label,
                Some(ctx),
                service[target][a.app],
                a.at,
            );
        }
        if t >= end {
            break;
        }
    }
    // Final settle: close any window still open, replay frozen backlogs
    // so energy accounting covers the whole run, and drain the last
    // responses.
    for node in &mut nodes {
        node.advance_to(end);
        if node.active_window.take().is_some() {
            node.tele.end_span(end, node.track);
        }
        node.kernel.run_until(end);
    }
    for node in &mut nodes {
        let rx = node.reply_rx;
        let segs = node.kernel.drain_messages(rx);
        for seg in segs {
            let serial = seg.payload >> 32;
            let Some(fl) = inflight.get(&serial) else { continue };
            node.settle(serial);
            if fl.stage + 1 < cfg.tiers.len() {
                // The next stage can no longer run; the request stays
                // accounted as in flight.
                continue;
            }
            summaries[fl.app].record(end.duration_since(fl.arrived).as_secs_f64());
            completed += 1;
            inflight.remove(&serial);
        }
    }
    let cluster_degrade = nodes
        .iter()
        .map(|n| n.facility.borrow().degrade_stats())
        .fold(power_containers::DegradeStats::default(), |acc, d| acc + d);
    workloads::note_degrade(cluster_degrade);

    let secs = cfg.duration.as_secs_f64();
    let per_node: Vec<NodeOutcome> = nodes
        .iter()
        .map(|n| {
            let m = n.kernel.machine();
            let cores = m.spec().total_cores();
            let util = (0..cores)
                .map(|c| m.counters(hwsim::CoreId(c)).core_utilization())
                .sum::<f64>()
                / cores as f64;
            NodeOutcome {
                machine: m.spec().name,
                tier: n.tier,
                active_energy_j: m.true_active_energy_j(),
                attributed_energy_j: n.attributed_energy_j(),
                energy_rate_w: m.true_active_energy_j() / secs,
                dispatched: n.injected,
                completions: n.responses as usize,
                in_flight: n.outstanding.len() as u64,
                utilization: util,
            }
        })
        .collect();

    // The comprehensive per-app energy accounting, resolved through the
    // dispatcher's ctx→app map over every node's container records and
    // still-live containers (labels are app-local and may collide across
    // apps). The energy per identity is exactly what the §3.4 response
    // tag carries back from each serving machine; records created under
    // lost or corrupted identities simply fall out of the per-app sums.
    let mut energies = vec![0.0f64; apps.len()];
    let mut by_ctx: HashMap<u64, (f64, u32)> = HashMap::new();
    for node in &nodes {
        let facility = node.facility.borrow();
        let mut seen_here: HashMap<u64, f64> = HashMap::new();
        for r in facility.containers().records() {
            if let Some(&app_idx) = ctx_app.get(&r.ctx) {
                energies[app_idx] += r.energy_j + r.io_energy_j;
                *seen_here.entry(r.ctx.0).or_default() += r.energy_j + r.io_energy_j;
            }
        }
        for (ctx, c) in facility.containers().iter_live() {
            if let Some(&app_idx) = ctx_app.get(ctx) {
                energies[app_idx] += c.total_energy_j();
                *seen_here.entry(ctx.0).or_default() += c.total_energy_j();
            }
        }
        if cfg.retain_request_energy {
            for (ctx, e) in seen_here {
                let entry = by_ctx.entry(ctx).or_insert((0.0, 0));
                entry.0 += e;
                entry.1 += 1;
            }
        }
    }
    let mut energy_by_ctx: Vec<CtxEnergy> = by_ctx
        .into_iter()
        .map(|(ctx, (energy_j, nodes))| CtxEnergy { ctx, energy_j, nodes })
        .collect();
    energy_by_ctx.sort_by_key(|c| c.ctx);

    let response_by_app = cfg.apps.iter().copied().zip(summaries).collect();
    let energy_by_app_j = cfg.apps.iter().copied().zip(energies).collect();
    let mut fault_counts = [0u64; hwsim::FaultKind::ALL.len()];
    let mut tags_lost = 0u64;
    let mut tags_corrupted = 0u64;
    for node in &nodes {
        for (total, n) in
            fault_counts.iter_mut().zip(node.kernel.machine().fault_log().counts())
        {
            *total += n;
        }
        let ks = node.kernel.stats();
        tags_lost += ks.tags_lost;
        tags_corrupted += ks.tags_corrupted;
    }
    ClusterOutcome {
        policy: policies[0].name(),
        per_node,
        response_by_app,
        energy_by_app_j,
        energy_by_ctx,
        dispatched,
        completed,
        rerouted,
        dropped,
        in_flight: inflight.len() as u64,
        decisions,
        degradations_detected,
        tags_lost,
        tags_corrupted,
        fault_counts,
    }
}
