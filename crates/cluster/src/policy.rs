//! Request-distribution policies (paper §4.4).
//!
//! Three dispatchers over a two-machine heterogeneous cluster:
//!
//! * **Simple load balance** — equal request streams to both machines,
//!   oblivious to heterogeneity.
//! * **Machine heterogeneity-aware** — fills the newer, more
//!   energy-efficient machine to a healthy high utilization (~70%)
//!   before spilling to the older one; same request mix everywhere.
//! * **Workload heterogeneity-aware** — additionally uses per-workload
//!   cross-machine energy profiles (from power containers) to decide
//!   *which* requests spill: those with high relative energy efficiency
//!   on the old machine go there; the rest stay on the new machine.

use workloads::WorkloadKind;

/// Dispatcher-visible state of one cluster node.
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Estimated outstanding work, in "standard requests" (service time
    /// over the mix mean) — ≈ busy cores by Little's law.
    pub outstanding: f64,
    /// Core count.
    pub cores: usize,
}

impl NodeView {
    /// Outstanding work as a fraction of the node's cores.
    pub fn load_fraction(&self) -> f64 {
        self.outstanding / self.cores as f64
    }
}

/// An arriving request, as the dispatcher sees it.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalView {
    /// Which application the request belongs to.
    pub app: WorkloadKind,
    /// The app-local request-type label.
    pub label: u32,
}

/// A request-distribution policy. Node 0 is the newer/more efficient
/// machine by convention.
pub trait DistributionPolicy {
    /// The policy's display name (matches the paper's terminology).
    fn name(&self) -> &'static str;
    /// Chooses the node for one arriving request.
    fn choose(&mut self, req: ArrivalView, nodes: &[NodeView]) -> usize;
}

/// Equal request streams to every node.
#[derive(Debug, Default)]
pub struct SimpleBalance {
    next: usize,
}

impl SimpleBalance {
    /// Creates the policy.
    pub fn new() -> SimpleBalance {
        SimpleBalance::default()
    }
}

impl DistributionPolicy for SimpleBalance {
    fn name(&self) -> &'static str {
        "simple load balance"
    }

    fn choose(&mut self, _req: ArrivalView, nodes: &[NodeView]) -> usize {
        let n = self.next;
        self.next = (self.next + 1) % nodes.len();
        n
    }
}

/// Fills node 0 to `threshold` of its cores before using the others.
#[derive(Debug)]
pub struct MachineHeterogeneityAware {
    /// Utilization up to which node 0 absorbs all load.
    pub threshold: f64,
    spill: usize,
}

impl MachineHeterogeneityAware {
    /// Creates the policy with the paper's "healthy high utilization"
    /// fill threshold (the in-flight-request proxy undershoots CPU
    /// utilization because requests also block on I/O, so the threshold
    /// sits above the ~70% utilization it produces).
    pub fn new() -> MachineHeterogeneityAware {
        MachineHeterogeneityAware { threshold: 0.85, spill: 0 }
    }
}

impl Default for MachineHeterogeneityAware {
    fn default() -> Self {
        Self::new()
    }
}

impl DistributionPolicy for MachineHeterogeneityAware {
    fn name(&self) -> &'static str {
        "machine heterogeneity-aware"
    }

    fn choose(&mut self, _req: ArrivalView, nodes: &[NodeView]) -> usize {
        if nodes[0].load_fraction() < self.threshold {
            return 0;
        }
        // Spill round-robin over the remaining nodes.
        let others = nodes.len() - 1;
        let n = 1 + self.spill % others;
        self.spill += 1;
        n
    }
}

/// Like [`MachineHeterogeneityAware`], but spills preferentially the
/// requests whose cross-machine energy ratio (node 0 energy over node 1
/// energy) is *highest* — they lose the least by running on the old
/// machine.
#[derive(Debug)]
pub struct WorkloadHeterogeneityAware {
    /// Fill threshold for node 0.
    pub threshold: f64,
    /// Per-app energy ratio (node 0 / node 1), from container profiling.
    ratios: Vec<(WorkloadKind, f64)>,
    /// Apps with ratio above this spill first.
    cutoff: f64,
}

impl WorkloadHeterogeneityAware {
    /// Creates the policy from profiled cross-machine energy ratios
    /// (Fig. 13's values). The cutoff splits apps into "keep on the new
    /// machine" (low ratio) and "fine to spill" (high ratio) at the
    /// midpoint of the observed ratios.
    pub fn new(ratios: Vec<(WorkloadKind, f64)>) -> WorkloadHeterogeneityAware {
        assert!(!ratios.is_empty(), "need at least one profiled app");
        let min = ratios.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let max = ratios.iter().map(|r| r.1).fold(0.0, f64::max);
        WorkloadHeterogeneityAware { threshold: 0.85, ratios, cutoff: (min + max) / 2.0 }
    }

    fn ratio_of(&self, app: WorkloadKind) -> f64 {
        self.ratios
            .iter()
            .find(|(k, _)| *k == app)
            .map(|(_, r)| *r)
            .unwrap_or(0.5)
    }
}

impl DistributionPolicy for WorkloadHeterogeneityAware {
    fn name(&self) -> &'static str {
        "workload heterogeneity-aware"
    }

    fn choose(&mut self, req: ArrivalView, nodes: &[NodeView]) -> usize {
        let node0_free = nodes[0].load_fraction() < self.threshold;
        if node0_free {
            return 0;
        }
        let spillable = self.ratio_of(req.app) >= self.cutoff;
        if spillable {
            // This request runs nearly as efficiently on the old machine.
            1
        } else if nodes[0].load_fraction() < 1.25 {
            // Strong affinity for node 0: tolerate higher fill there.
            0
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(load0: f64, load1: f64) -> Vec<NodeView> {
        vec![
            NodeView { outstanding: load0 * 4.0, cores: 4 },
            NodeView { outstanding: load1 * 4.0, cores: 4 },
        ]
    }

    fn rsa() -> ArrivalView {
        ArrivalView { app: WorkloadKind::RsaCrypto, label: 0 }
    }

    fn gae() -> ArrivalView {
        ArrivalView { app: WorkloadKind::GaeVosao, label: 0 }
    }

    #[test]
    fn simple_balance_alternates() {
        let mut p = SimpleBalance::new();
        let n = nodes(0.0, 0.0);
        assert_eq!(p.choose(rsa(), &n), 0);
        assert_eq!(p.choose(rsa(), &n), 1);
        assert_eq!(p.choose(rsa(), &n), 0);
    }

    #[test]
    fn machine_aware_fills_node0_first() {
        let mut p = MachineHeterogeneityAware::new();
        assert_eq!(p.choose(rsa(), &nodes(0.3, 0.0)), 0);
        assert_eq!(p.choose(rsa(), &nodes(0.9, 0.0)), 1);
    }

    #[test]
    fn workload_aware_spills_high_ratio_apps() {
        let mut p = WorkloadHeterogeneityAware::new(vec![
            (WorkloadKind::RsaCrypto, 0.25),
            (WorkloadKind::GaeVosao, 0.75),
        ]);
        let full0 = nodes(0.9, 0.2);
        // GAE (high ratio) spills to the old machine...
        assert_eq!(p.choose(gae(), &full0), 1);
        // ...RSA (strong node-0 affinity) stays while node 0 has any room.
        assert_eq!(p.choose(rsa(), &full0), 0);
        // Under the threshold everyone goes to node 0.
        assert_eq!(p.choose(gae(), &nodes(0.3, 0.0)), 0);
        // Node 0 completely saturated: even RSA spills.
        assert_eq!(p.choose(rsa(), &nodes(1.3, 0.2)), 1);
    }

    #[test]
    fn policy_names_match_paper() {
        assert!(SimpleBalance::new().name().contains("balance"));
        assert!(MachineHeterogeneityAware::new().name().contains("machine"));
        let w = WorkloadHeterogeneityAware::new(vec![(WorkloadKind::RsaCrypto, 0.2)]);
        assert!(w.name().contains("workload"));
    }
}
