//! Request-distribution policies (paper §4.4).
//!
//! Three dispatchers over a heterogeneous cluster of any size:
//!
//! * **Simple load balance** — equal request streams to every machine,
//!   oblivious to heterogeneity.
//! * **Machine heterogeneity-aware** — fills machines in efficiency
//!   order (newest generation first) to a healthy high utilization
//!   (~70%) before spilling to older ones; same request mix everywhere.
//! * **Workload heterogeneity-aware** — additionally uses per-workload
//!   cross-machine energy profiles (from power containers) to decide
//!   *which* requests spill: those with high relative energy efficiency
//!   on the old machines go there; the rest stay on the new ones.
//!
//! Policies are pure functions of their own state and the per-arrival
//! [`NodeView`]s: equal inputs give equal choices, which is what keeps
//! cluster runs byte-identical at any `--jobs` count.

use workloads::WorkloadKind;

/// Dispatcher-visible state of one cluster node (tier-local: a policy
/// instance sees only the nodes of the tier it routes for).
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Estimated outstanding work, in "standard requests" (service time
    /// over the mix mean) — ≈ busy cores by Little's law.
    pub outstanding: f64,
    /// Core count.
    pub cores: usize,
    /// Machine-generation rank: lower is newer/more efficient. Nodes at
    /// the minimum rank present form the "new machine" set the aware
    /// policies fill first.
    pub rank: u8,
}

impl NodeView {
    /// Outstanding work as a fraction of the node's cores.
    pub fn load_fraction(&self) -> f64 {
        self.outstanding / self.cores as f64
    }
}

/// An arriving request, as the dispatcher sees it.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalView {
    /// Which application the request belongs to.
    pub app: WorkloadKind,
    /// The app-local request-type label.
    pub label: u32,
}

/// A request-distribution policy. Views arrive in efficiency order by
/// convention (newest machines at the lowest indices), but the aware
/// policies order by [`NodeView::rank`] explicitly.
pub trait DistributionPolicy {
    /// The policy's display name (matches the paper's terminology).
    fn name(&self) -> &'static str;
    /// Chooses the node for one arriving request.
    fn choose(&mut self, req: ArrivalView, nodes: &[NodeView]) -> usize;
}

/// Cached efficiency order — node indices sorted by (rank, index), the
/// order in which the aware policies consider filling machines.
///
/// Ranks are static for a tier across a run, so the sort (and its
/// allocation) happens once; subsequent arrivals revalidate with a
/// linear rank scan. This keeps the per-arrival routing cost flat in
/// steady state instead of O(n log n) with a fresh `Vec` per request.
#[derive(Debug, Default)]
struct OrderCache {
    ranks: Vec<u8>,
    order: Vec<usize>,
}

impl OrderCache {
    fn order(&mut self, nodes: &[NodeView]) -> &[usize] {
        let stale = self.ranks.len() != nodes.len()
            || self.ranks.iter().zip(nodes).any(|(&r, n)| r != n.rank);
        if stale {
            self.ranks.clear();
            self.ranks.extend(nodes.iter().map(|n| n.rank));
            self.order.clear();
            self.order.extend(0..nodes.len());
            self.order.sort_by_key(|&i| (nodes[i].rank, i));
        }
        &self.order
    }
}

/// The least-loaded node (by load fraction, ties to the lowest index).
fn least_loaded<'a>(ix: impl Iterator<Item = &'a usize>, nodes: &[NodeView]) -> Option<usize> {
    ix.copied().min_by(|&a, &b| {
        nodes[a]
            .load_fraction()
            .total_cmp(&nodes[b].load_fraction())
            .then(a.cmp(&b))
    })
}

/// Equal request streams to every node.
#[derive(Debug, Default)]
pub struct SimpleBalance {
    next: usize,
}

impl SimpleBalance {
    /// Creates the policy.
    pub fn new() -> SimpleBalance {
        SimpleBalance::default()
    }
}

impl DistributionPolicy for SimpleBalance {
    fn name(&self) -> &'static str {
        "simple load balance"
    }

    fn choose(&mut self, _req: ArrivalView, nodes: &[NodeView]) -> usize {
        // Re-mod the stored cursor: the view can shrink between calls
        // when the autoscaler drains nodes (a no-op on fixed fleets,
        // where the cursor is always already in range).
        let n = self.next % nodes.len();
        self.next = (n + 1) % nodes.len();
        n
    }
}

/// Fills machines in efficiency order to `threshold` of their cores
/// before using older ones; falls back to the least-loaded node when the
/// whole fleet is saturated.
#[derive(Debug)]
pub struct MachineHeterogeneityAware {
    /// Utilization up to which a machine absorbs load before the policy
    /// moves on to the next one in efficiency order.
    pub threshold: f64,
    order: OrderCache,
}

impl MachineHeterogeneityAware {
    /// Creates the policy with the paper's "healthy high utilization"
    /// fill threshold (the in-flight-request proxy undershoots CPU
    /// utilization because requests also block on I/O, so the threshold
    /// sits above the ~70% utilization it produces).
    pub fn new() -> MachineHeterogeneityAware {
        MachineHeterogeneityAware { threshold: 0.85, order: OrderCache::default() }
    }
}

impl Default for MachineHeterogeneityAware {
    fn default() -> Self {
        Self::new()
    }
}

impl DistributionPolicy for MachineHeterogeneityAware {
    fn name(&self) -> &'static str {
        "machine heterogeneity-aware"
    }

    fn choose(&mut self, _req: ArrivalView, nodes: &[NodeView]) -> usize {
        let threshold = self.threshold;
        let order = self.order.order(nodes);
        if let Some(&i) = order
            .iter()
            .find(|&&i| nodes[i].load_fraction() < threshold)
        {
            return i;
        }
        least_loaded(order.iter(), nodes).expect("nodes nonempty")
    }
}

/// Like [`MachineHeterogeneityAware`], but spills preferentially the
/// requests whose cross-machine energy ratio (new-machine energy over
/// old-machine energy) is *highest* — they lose the least by running on
/// an old machine.
#[derive(Debug)]
pub struct WorkloadHeterogeneityAware {
    /// Fill threshold for the efficient (newest-generation) machines.
    pub threshold: f64,
    /// Load fraction up to which a low-ratio (strong-affinity) request
    /// still crowds onto an efficient machine over the threshold.
    pub hard_cap: f64,
    /// Per-app energy ratio (new machine / old machine), from container
    /// profiling.
    ratios: Vec<(WorkloadKind, f64)>,
    /// Apps with ratio above this spill first.
    cutoff: f64,
    order: OrderCache,
}

impl WorkloadHeterogeneityAware {
    /// Creates the policy from profiled cross-machine energy ratios
    /// (Fig. 13's values). The cutoff splits apps into "keep on the new
    /// machines" (low ratio) and "fine to spill" (high ratio) at the
    /// midpoint of the observed ratios.
    pub fn new(ratios: Vec<(WorkloadKind, f64)>) -> WorkloadHeterogeneityAware {
        assert!(!ratios.is_empty(), "need at least one profiled app");
        let min = ratios.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let max = ratios.iter().map(|r| r.1).fold(0.0, f64::max);
        WorkloadHeterogeneityAware {
            threshold: 0.85,
            hard_cap: 1.25,
            ratios,
            cutoff: (min + max) / 2.0,
            order: OrderCache::default(),
        }
    }

    fn ratio_of(&self, app: WorkloadKind) -> f64 {
        self.ratios
            .iter()
            .find(|(k, _)| *k == app)
            .map(|(_, r)| *r)
            .unwrap_or(0.5)
    }
}

impl DistributionPolicy for WorkloadHeterogeneityAware {
    fn name(&self) -> &'static str {
        "workload heterogeneity-aware"
    }

    fn choose(&mut self, req: ArrivalView, nodes: &[NodeView]) -> usize {
        let best_rank = nodes.iter().map(|n| n.rank).min().expect("nodes nonempty");
        let spillable = self.ratio_of(req.app) >= self.cutoff;
        let (threshold, hard_cap) = (self.threshold, self.hard_cap);
        let order = self.order.order(nodes);
        // Fill the efficient set to the threshold first, like the
        // machine-aware policy.
        if let Some(&i) = order.iter().find(|&&i| {
            nodes[i].rank == best_rank && nodes[i].load_fraction() < threshold
        }) {
            return i;
        }
        if spillable {
            // This request runs nearly as efficiently on an old machine:
            // pack the old generations in efficiency order (newest
            // first), exactly like the machine-aware fill — spreading
            // would keep every old machine active and waste their
            // overheads.
            if let Some(&i) = order.iter().find(|&&i| {
                nodes[i].rank != best_rank && nodes[i].load_fraction() < threshold
            }) {
                return i;
            }
            // Every old machine is over threshold: least-loaded old one.
            if let Some(i) = least_loaded(
                order.iter().filter(|&&i| nodes[i].rank != best_rank),
                nodes,
            ) {
                return i;
            }
        } else {
            // Strong affinity for the new machines: tolerate higher fill
            // there before giving up.
            if let Some(&i) = order.iter().find(|&&i| {
                nodes[i].rank == best_rank && nodes[i].load_fraction() < hard_cap
            }) {
                return i;
            }
            // The new set is beyond even the hard cap: fall back to the
            // efficiency-order fill over the rest of the fleet.
            if let Some(&i) =
                order.iter().find(|&&i| nodes[i].load_fraction() < threshold)
            {
                return i;
            }
        }
        least_loaded(order.iter(), nodes).expect("nodes nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(load0: f64, load1: f64) -> Vec<NodeView> {
        vec![
            NodeView { outstanding: load0 * 4.0, cores: 4, rank: 0 },
            NodeView { outstanding: load1 * 4.0, cores: 4, rank: 2 },
        ]
    }

    fn rsa() -> ArrivalView {
        ArrivalView { app: WorkloadKind::RsaCrypto, label: 0 }
    }

    fn gae() -> ArrivalView {
        ArrivalView { app: WorkloadKind::GaeVosao, label: 0 }
    }

    #[test]
    fn simple_balance_alternates() {
        let mut p = SimpleBalance::new();
        let n = nodes(0.0, 0.0);
        assert_eq!(p.choose(rsa(), &n), 0);
        assert_eq!(p.choose(rsa(), &n), 1);
        assert_eq!(p.choose(rsa(), &n), 0);
    }

    #[test]
    fn machine_aware_fills_node0_first() {
        let mut p = MachineHeterogeneityAware::new();
        assert_eq!(p.choose(rsa(), &nodes(0.3, 0.0)), 0);
        assert_eq!(p.choose(rsa(), &nodes(0.9, 0.0)), 1);
    }

    #[test]
    fn machine_aware_fills_in_efficiency_order_not_index_order() {
        let mut p = MachineHeterogeneityAware::new();
        // The efficient machine sits at index 2 here; it must fill first.
        let views = vec![
            NodeView { outstanding: 0.0, cores: 4, rank: 2 },
            NodeView { outstanding: 0.0, cores: 4, rank: 1 },
            NodeView { outstanding: 0.0, cores: 4, rank: 0 },
        ];
        assert_eq!(p.choose(rsa(), &views), 2);
    }

    #[test]
    fn machine_aware_saturated_fleet_goes_least_loaded() {
        let mut p = MachineHeterogeneityAware::new();
        let views = vec![
            NodeView { outstanding: 4.0, cores: 4, rank: 0 },
            NodeView { outstanding: 3.6, cores: 4, rank: 2 },
        ];
        assert_eq!(p.choose(rsa(), &views), 1);
    }

    #[test]
    fn workload_aware_spills_high_ratio_apps() {
        let mut p = WorkloadHeterogeneityAware::new(vec![
            (WorkloadKind::RsaCrypto, 0.25),
            (WorkloadKind::GaeVosao, 0.75),
        ]);
        let full0 = nodes(0.9, 0.2);
        // GAE (high ratio) spills to the old machine...
        assert_eq!(p.choose(gae(), &full0), 1);
        // ...RSA (strong node-0 affinity) stays while node 0 has any room.
        assert_eq!(p.choose(rsa(), &full0), 0);
        // Under the threshold everyone goes to node 0.
        assert_eq!(p.choose(gae(), &nodes(0.3, 0.0)), 0);
        // Node 0 completely saturated: even RSA spills.
        assert_eq!(p.choose(rsa(), &nodes(1.3, 0.2)), 1);
    }

    #[test]
    fn workload_aware_packs_spill_in_efficiency_order() {
        let mut p = WorkloadHeterogeneityAware::new(vec![
            (WorkloadKind::RsaCrypto, 0.25),
            (WorkloadKind::GaeVosao, 0.75),
        ]);
        let views = vec![
            NodeView { outstanding: 3.8, cores: 4, rank: 0 },
            NodeView { outstanding: 2.0, cores: 4, rank: 1 },
            NodeView { outstanding: 0.4, cores: 4, rank: 2 },
        ];
        // The spill packs the newest old machine that still has room,
        // not the least-loaded one.
        assert_eq!(p.choose(gae(), &views), 1);
        // Once that one is full, the next generation takes over.
        let mut full1 = views.clone();
        full1[1].outstanding = 3.6;
        assert_eq!(p.choose(gae(), &full1), 2);
    }

    #[test]
    fn policy_names_match_paper() {
        assert!(SimpleBalance::new().name().contains("balance"));
        assert!(MachineHeterogeneityAware::new().name().contains("machine"));
        let w = WorkloadHeterogeneityAware::new(vec![(WorkloadKind::RsaCrypto, 0.2)]);
        assert!(w.name().contains("workload"));
    }
}
