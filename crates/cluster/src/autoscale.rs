//! The power-aware elastic autoscaler and its graceful-brownout ladder.
//!
//! [`Autoscaler`] is a *pure* controller: the engine hands it one
//! [`FleetSample`] per evaluation interval at a tick barrier (on the
//! driving thread, so decisions are byte-identical at every `--shards`
//! and `--jobs` count) and receives back a [`ScaleDecision`] plus the
//! [`BrownoutLevel`] to hold. All actuation — provisioning standby
//! nodes through the Down→WarmingUp→Healthy lifecycle, draining
//! scale-in victims, shedding optional sessions, tightening admission,
//! clamping duty cycles — lives in the engine (`sim.rs`); the
//! controller only ever sees aggregate load and power.
//!
//! The objective is joules per request under the cluster cap: the fleet
//! should hold just enough capacity that the offered load runs near the
//! utilization set-point (amortizing each node's large idle draw over
//! more requests), while the brownout ladder absorbs headroom collapses
//! that arrive faster than a scale-out can land — degrade, never
//! violate the cap.

use simkern::{SimDuration, SimTime};

/// Elasticity-controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Fleet floor: scale-in never drains below this many active nodes.
    pub min_nodes: usize,
    /// Nodes active at t = 0 (the rest of the topology starts standby).
    pub initial_nodes: usize,
    /// Controller evaluation cadence (decisions happen only at the
    /// first tick barrier at or past each boundary).
    pub eval_every: SimDuration,
    /// Minimum spacing between consecutive resize decisions (in either
    /// direction) — the anti-flap half of the hysteresis pair.
    pub cooldown: SimDuration,
    /// Scale out while per-core outstanding work exceeds this.
    pub high_util: f64,
    /// Scale in while per-core outstanding work is below this (must sit
    /// well under [`AutoscaleConfig::high_util`] — the deadband is the
    /// other half of the hysteresis pair).
    pub low_util: f64,
    /// Most nodes resized by a single decision.
    pub max_step: usize,
    /// Boot latency of a scale-out: a provisioned node spends this long
    /// powered but useless before its warm-up starts.
    pub provision_delay: SimDuration,
    /// Warm-up window after provisioning, during which the node admits
    /// only a bounded probe load (same mechanism as crash restarts).
    pub warmup: SimDuration,
    /// A draining node that still holds requests past this deadline is
    /// force-retired (its stragglers re-enter the retry machinery).
    pub drain_deadline: SimDuration,
    /// The brownout ladder.
    pub brownout: BrownoutConfig,
    /// Rolling generation-upgrade schedule, or `None`.
    pub upgrade: Option<RollingUpgrade>,
}

impl AutoscaleConfig {
    /// Defaults tuned for the diurnal sweep: ~1.8 outstanding per core
    /// scale-out trigger, 0.55 scale-in, 400 ms cooldown, two-node
    /// steps, 150 ms boot + 100 ms warm-up, 500 ms drain deadline.
    pub fn standard(min_nodes: usize, initial_nodes: usize) -> AutoscaleConfig {
        AutoscaleConfig {
            min_nodes,
            initial_nodes,
            eval_every: SimDuration::from_millis(50),
            cooldown: SimDuration::from_millis(400),
            high_util: 1.8,
            low_util: 0.55,
            max_step: 2,
            provision_delay: SimDuration::from_millis(150),
            warmup: SimDuration::from_millis(100),
            drain_deadline: SimDuration::from_millis(500),
            brownout: BrownoutConfig::standard(),
            upgrade: None,
        }
    }
}

/// Brownout-ladder thresholds. The ladder is typed and ordered:
/// `Normal < ShedOptional < TightenAdmission < DvfsClamp`; the
/// controller climbs one level per evaluation while the fleet power
/// sits above the engage fraction of the cap, and descends one level
/// per evaluation once it has held below the release fraction for the
/// hold window.
#[derive(Debug, Clone, Copy)]
pub struct BrownoutConfig {
    /// Climb while fleet active power exceeds this fraction of the cap.
    pub engage_frac: f64,
    /// Descend only while below this fraction (engage > release —
    /// the ladder's own hysteresis deadband).
    pub release_frac: f64,
    /// Minimum dwell at a level before descending.
    pub hold: SimDuration,
    /// At [`BrownoutLevel::TightenAdmission`]: multiply the admission
    /// queue bound by this factor (< 1).
    pub admission_tighten: f64,
    /// At [`BrownoutLevel::DvfsClamp`]: cap every active node's duty
    /// cycle at this fraction.
    pub dvfs_clamp: f64,
}

impl BrownoutConfig {
    /// Defaults: engage at 92 % of cap, release below 82 %, 100 ms
    /// dwell, 0.35× admission bound, 0.6 duty clamp.
    pub fn standard() -> BrownoutConfig {
        BrownoutConfig {
            engage_frac: 0.92,
            release_frac: 0.82,
            hold: SimDuration::from_millis(100),
            admission_tighten: 0.35,
            dvfs_clamp: 0.6,
        }
    }
}

/// Rolling generation upgrade: every `every` starting at `start`, the
/// engine pairs one scale-in of the oldest-generation active node with
/// one scale-out of the newest-generation standby node, `count` times.
#[derive(Debug, Clone, Copy)]
pub struct RollingUpgrade {
    /// Offset of the first paired swap.
    pub start: SimDuration,
    /// Spacing between swaps.
    pub every: SimDuration,
    /// Total swaps to perform.
    pub count: usize,
}

/// The graceful-degradation ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// No degradation.
    Normal,
    /// Shed arrivals whose session is marked optional.
    ShedOptional,
    /// Also multiply the admission queue bound by
    /// [`BrownoutConfig::admission_tighten`].
    TightenAdmission,
    /// Also clamp every active node's duty cycle at
    /// [`BrownoutConfig::dvfs_clamp`].
    DvfsClamp,
}

impl BrownoutLevel {
    /// Ladder order, mildest first.
    pub const ALL: [BrownoutLevel; 4] = [
        BrownoutLevel::Normal,
        BrownoutLevel::ShedOptional,
        BrownoutLevel::TightenAdmission,
        BrownoutLevel::DvfsClamp,
    ];

    /// Ladder rung index (0 = Normal).
    pub fn index(self) -> usize {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::ShedOptional => 1,
            BrownoutLevel::TightenAdmission => 2,
            BrownoutLevel::DvfsClamp => 3,
        }
    }

    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::ShedOptional => "shed-optional",
            BrownoutLevel::TightenAdmission => "tighten-admission",
            BrownoutLevel::DvfsClamp => "dvfs-clamp",
        }
    }

    fn up(self) -> BrownoutLevel {
        Self::ALL[(self.index() + 1).min(Self::ALL.len() - 1)]
    }

    fn down(self) -> BrownoutLevel {
        Self::ALL[self.index().saturating_sub(1)]
    }
}

/// What the engine tells the controller at each evaluation.
#[derive(Debug, Clone, Copy)]
pub struct FleetSample {
    /// Evaluation time (a tick barrier).
    pub now: SimTime,
    /// Active (healthy/warming/degraded, routable) nodes.
    pub active: usize,
    /// Nodes provisioning or warming up — capacity already bought but
    /// not fully landed; counted against further scale-outs.
    pub landing: usize,
    /// Nodes draining toward standby.
    pub draining: usize,
    /// Standby nodes still available to provision.
    pub standby: usize,
    /// Outstanding standard requests per active core (the same signal
    /// admission control reads).
    pub util: f64,
    /// Fleet active power as a fraction of the cap (0 when uncapped).
    pub power_frac: f64,
}

/// A resize decision: how many nodes to provision or drain this
/// evaluation. The engine picks the concrete victims (newest standby
/// first out, oldest active first in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No resize.
    Hold,
    /// Provision this many standby nodes.
    Out(usize),
    /// Drain this many active nodes.
    In(usize),
}

/// The elasticity controller. See the module docs for the objective.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    next_eval: SimTime,
    last_resize: SimTime,
    has_resized: bool,
    level: BrownoutLevel,
    /// When the ladder last moved (either direction).
    level_since: SimTime,
    /// Time power last sat at or above the release fraction.
    last_hot: SimTime,
    evals: u64,
}

impl Autoscaler {
    /// A controller starting at fleet birth: first evaluation one
    /// interval in, ladder at [`BrownoutLevel::Normal`].
    pub fn new(cfg: AutoscaleConfig) -> Autoscaler {
        assert!(cfg.min_nodes >= 1, "fleet floor must be at least one node");
        assert!(cfg.initial_nodes >= cfg.min_nodes, "initial fleet below the floor");
        assert!(cfg.high_util > cfg.low_util, "hysteresis band must be positive");
        assert!(cfg.max_step >= 1, "resize step must be positive");
        assert!(
            cfg.brownout.engage_frac > cfg.brownout.release_frac,
            "brownout deadband must be positive"
        );
        Autoscaler {
            next_eval: SimTime::ZERO + cfg.eval_every,
            last_resize: SimTime::ZERO,
            has_resized: false,
            level: BrownoutLevel::Normal,
            level_since: SimTime::ZERO,
            last_hot: SimTime::ZERO,
            evals: 0,
            cfg,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// `true` when an evaluation is due at tick barrier `now`.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_eval
    }

    /// Evaluations performed so far (the perf_report divides controller
    /// wall cost by this).
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The brownout level currently held.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// One controller evaluation: returns the resize decision and the
    /// brownout level to hold until the next evaluation. Pure in the
    /// sample and the controller's own state — no clocks, no RNG.
    pub fn decide(&mut self, s: &FleetSample) -> (ScaleDecision, BrownoutLevel) {
        self.evals += 1;
        self.next_eval = s.now + self.cfg.eval_every;

        // Brownout ladder first: cap protection outranks elasticity.
        let b = &self.cfg.brownout;
        if s.power_frac >= b.release_frac {
            self.last_hot = s.now;
        }
        if s.power_frac >= b.engage_frac {
            let next = self.level.up();
            if next != self.level {
                self.level = next;
                self.level_since = s.now;
            }
        } else if self.level != BrownoutLevel::Normal
            && s.power_frac < b.release_frac
            && s.now.duration_since(self.level_since) >= b.hold
            && s.now.duration_since(self.last_hot) >= b.hold
        {
            self.level = self.level.down();
            self.level_since = s.now;
        }

        // Elasticity: hysteresis band on per-core outstanding work, a
        // cooldown between resizes, and capacity still landing counted
        // as already bought.
        let decision = if self.has_resized
            && s.now.duration_since(self.last_resize) < self.cfg.cooldown
        {
            ScaleDecision::Hold
        } else if s.util > self.cfg.high_util && s.landing == 0 && s.standby > 0 {
            // Size the step to the overshoot: a flash crowd doubling
            // util buys more than one node at a time.
            let overshoot = (s.util / self.cfg.high_util - 1.0).max(0.0);
            let want = ((s.active.max(1) as f64 * overshoot).ceil() as usize).max(1);
            ScaleDecision::Out(want.min(self.cfg.max_step).min(s.standby))
        } else if s.util < self.cfg.low_util
            && self.level == BrownoutLevel::Normal
            && s.power_frac < b.release_frac
            && s.active > self.cfg.min_nodes + s.draining
        {
            let room = s.active - self.cfg.min_nodes - s.draining;
            // Scale-in stays gentle: one node per decision, so a
            // mis-read trough never collapses the fleet.
            ScaleDecision::In(room.min(1))
        } else {
            ScaleDecision::Hold
        };
        if decision != ScaleDecision::Hold {
            self.last_resize = s.now;
            self.has_resized = true;
        }
        (decision, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(now_ms: u64, util: f64, power_frac: f64) -> FleetSample {
        FleetSample {
            now: SimTime::from_millis(now_ms),
            active: 8,
            landing: 0,
            draining: 0,
            standby: 8,
            util,
            power_frac,
        }
    }

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscaleConfig::standard(2, 8))
    }

    #[test]
    fn holds_inside_the_hysteresis_band() {
        let mut a = scaler();
        for ms in [50u64, 500, 1000, 1500] {
            let (d, level) = a.decide(&sample(ms, 1.0, 0.3));
            assert_eq!(d, ScaleDecision::Hold);
            assert_eq!(level, BrownoutLevel::Normal);
        }
    }

    #[test]
    fn scales_out_on_high_util_and_respects_cooldown() {
        let mut a = scaler();
        let (d, _) = a.decide(&sample(50, 3.0, 0.3));
        assert_eq!(d, ScaleDecision::Out(2), "overshoot sizes the step up to max_step");
        // Inside the cooldown: hold even though util is still high.
        let (d, _) = a.decide(&sample(100, 3.0, 0.3));
        assert_eq!(d, ScaleDecision::Hold);
        // Past the cooldown: buys again.
        let (d, _) = a.decide(&sample(500, 3.0, 0.3));
        assert!(matches!(d, ScaleDecision::Out(_)));
    }

    #[test]
    fn landing_capacity_blocks_further_buys() {
        let mut a = scaler();
        let s = FleetSample { landing: 2, ..sample(500, 3.0, 0.3) };
        assert_eq!(a.decide(&s).0, ScaleDecision::Hold);
    }

    #[test]
    fn scales_in_gently_and_never_below_floor() {
        let mut a = scaler();
        let (d, _) = a.decide(&sample(500, 0.2, 0.2));
        assert_eq!(d, ScaleDecision::In(1), "scale-in is one node per decision");
        let mut at_floor = FleetSample { active: 2, ..sample(1000, 0.1, 0.1) };
        assert_eq!(a.decide(&at_floor).0, ScaleDecision::Hold);
        at_floor.active = 3;
        at_floor.draining = 1;
        at_floor.now = SimTime::from_millis(1500);
        assert_eq!(
            a.decide(&at_floor).0,
            ScaleDecision::Hold,
            "draining nodes count against the floor"
        );
    }

    #[test]
    fn brownout_climbs_one_level_per_eval_and_releases_with_hold() {
        let mut a = scaler();
        assert_eq!(a.decide(&sample(50, 1.0, 0.95)).1, BrownoutLevel::ShedOptional);
        assert_eq!(a.decide(&sample(100, 1.0, 0.95)).1, BrownoutLevel::TightenAdmission);
        assert_eq!(a.decide(&sample(150, 1.0, 0.95)).1, BrownoutLevel::DvfsClamp);
        // Stays clamped while hot, even between the thresholds.
        assert_eq!(a.decide(&sample(200, 1.0, 0.88)).1, BrownoutLevel::DvfsClamp);
        // Cool, but inside the hold window: no release yet.
        assert_eq!(a.decide(&sample(250, 1.0, 0.5)).1, BrownoutLevel::DvfsClamp);
        // Past the hold: descends one level per eval.
        assert_eq!(a.decide(&sample(360, 1.0, 0.5)).1, BrownoutLevel::TightenAdmission);
        assert_eq!(a.decide(&sample(470, 1.0, 0.5)).1, BrownoutLevel::ShedOptional);
        assert_eq!(a.decide(&sample(580, 1.0, 0.5)).1, BrownoutLevel::Normal);
    }

    #[test]
    fn brownout_blocks_scale_in() {
        let mut a = scaler();
        let _ = a.decide(&sample(50, 1.0, 0.95));
        // Util reads low (the shed is working) but the ladder is
        // engaged: the fleet must not shrink under a cap emergency.
        let (d, level) = a.decide(&sample(500, 0.2, 0.95));
        assert_ne!(level, BrownoutLevel::Normal);
        assert_eq!(d, ScaleDecision::Hold);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut a = scaler();
            let mut out = Vec::new();
            for i in 0..200u64 {
                let util = 0.3 + 2.0 * ((i as f64) / 13.0).sin().abs();
                let power = 0.5 + 0.5 * ((i as f64) / 7.0).cos().abs();
                let (d, l) = a.decide(&sample(50 * (i + 1), util, power));
                out.push((d, l));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
