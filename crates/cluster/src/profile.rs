//! Cross-machine energy profiling (paper Fig. 13).
//!
//! Power containers quantify each workload's *relative* energy affinity
//! across machine generations: run the workload at peak load on each
//! machine, take the mean per-request active energy from the container
//! records, and form the ratio (new machine over old machine). A low
//! ratio means the workload loses a lot by running on the old machine.

use hwsim::MachineSpec;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, MachineCalibration, RunConfig, WorkloadKind};

/// Mean per-request active energy of `kind` at peak load on `spec`, in
/// Joules, profiled through power containers.
pub fn mean_request_energy_j(
    kind: WorkloadKind,
    spec: &MachineSpec,
    cal: &MachineCalibration,
    seed: u64,
    duration: SimDuration,
) -> f64 {
    let mut cfg = RunConfig::new(spec.clone());
    cfg.seed = seed;
    cfg.load = LoadLevel::Peak;
    cfg.duration = duration;
    let outcome = run_app(kind, &cfg, cal);
    let f = outcome.facility.borrow();
    let records = f.containers().records();
    let finished: Vec<f64> = records
        .iter()
        .filter(|r| r.busy_seconds > 0.0)
        .map(|r| r.energy_j + r.io_energy_j)
        .collect();
    assert!(
        !finished.is_empty(),
        "no completed requests profiling {kind} on {}",
        spec.name
    );
    finished.iter().sum::<f64>() / finished.len() as f64
}

/// One row of Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffinityRow {
    /// The workload.
    pub kind: WorkloadKind,
    /// Mean request energy on the new machine, Joules.
    pub new_machine_j: f64,
    /// Mean request energy on the old machine, Joules.
    pub old_machine_j: f64,
}

impl AffinityRow {
    /// The cross-machine active energy usage ratio (new over old).
    pub fn ratio(&self) -> f64 {
        self.new_machine_j / self.old_machine_j
    }
}

/// Profiles the cross-machine energy ratio of each workload between two
/// machines (Fig. 13's SandyBridge-over-Woodcrest ratios).
pub fn energy_affinity(
    kinds: &[WorkloadKind],
    new_machine: (&MachineSpec, &MachineCalibration),
    old_machine: (&MachineSpec, &MachineCalibration),
    seed: u64,
    duration: SimDuration,
) -> Vec<AffinityRow> {
    kinds
        .iter()
        .map(|&kind| AffinityRow {
            kind,
            new_machine_j: mean_request_energy_j(kind, new_machine.0, new_machine.1, seed, duration),
            old_machine_j: mean_request_energy_j(kind, old_machine.0, old_machine.1, seed, duration),
        })
        .collect()
}
