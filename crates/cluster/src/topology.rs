//! Fleet topologies: heterogeneous machine sets arranged into serving
//! tiers.
//!
//! The paper's §4.4 study uses a fixed two-machine cluster; production
//! serving runs **sharded fleets** of mixed machine generations arranged
//! in multi-stage pipelines (web → app → db). A [`Topology`] describes
//! such a fleet: an ordered list of [`Tier`]s, each holding the
//! [`MachineSpec`]s of its member nodes. Nodes are numbered flat across
//! tiers (tier 0 first), and within each tier members are sorted
//! newest-generation-first so that index order is efficiency order — the
//! convention the heterogeneity-aware dispatch policies rely on.

use hwsim::MachineSpec;

/// One serving stage of the pipeline.
#[derive(Debug, Clone)]
pub struct Tier {
    /// Display name ("web", "app", "db", ...).
    pub name: &'static str,
    /// Member machines, newest generation first.
    pub specs: Vec<MachineSpec>,
}

/// A fleet of machines arranged into one or more serving tiers.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The pipeline stages, in request-flow order.
    pub tiers: Vec<Tier>,
}

/// Machine-generation rank: lower is newer (more energy-efficient per
/// unit of work). Unknown machines rank oldest. Delegates to
/// [`MachineSpec::generation_rank`] so the dispatcher and the metering
/// layer's regime keys agree on ranks.
pub fn generation_rank(spec: &MachineSpec) -> u8 {
    spec.generation_rank() as u8
}

/// Sorts specs newest-generation-first, stably.
fn efficiency_order(mut specs: Vec<MachineSpec>) -> Vec<MachineSpec> {
    specs.sort_by_key(generation_rank);
    specs
}

impl Topology {
    /// A single-tier fleet (the paper's flat-cluster shape).
    pub fn single_tier(specs: Vec<MachineSpec>) -> Topology {
        assert!(!specs.is_empty(), "topology needs at least one node");
        Topology { tiers: vec![Tier { name: "web", specs: efficiency_order(specs) }] }
    }

    /// A three-stage web → app → db pipeline from explicit member lists.
    pub fn three_tier(
        web: Vec<MachineSpec>,
        app: Vec<MachineSpec>,
        db: Vec<MachineSpec>,
    ) -> Topology {
        assert!(
            !web.is_empty() && !app.is_empty() && !db.is_empty(),
            "every pipeline tier needs at least one node"
        );
        Topology {
            tiers: vec![
                Tier { name: "web", specs: efficiency_order(web) },
                Tier { name: "app", specs: efficiency_order(app) },
                Tier { name: "db", specs: efficiency_order(db) },
            ],
        }
    }

    /// A heterogeneous fleet of `n` machines mixing the three calibrated
    /// generations (half SandyBridge, the rest alternating Westmere and
    /// Woodcrest — a data center mid-refresh), as a flat single tier.
    pub fn scaled_fleet(n: usize) -> Topology {
        Topology::single_tier(heterogeneous_specs(n))
    }

    /// A heterogeneous fleet of `n` machines split into a web → app → db
    /// pipeline (roughly equal tier sizes; the db tier absorbs the
    /// remainder). Requires `n >= 3` so every tier has a node.
    pub fn serving_pipeline(n: usize) -> Topology {
        assert!(n >= 3, "a three-tier pipeline needs at least 3 nodes, got {n}");
        let specs = heterogeneous_specs(n);
        let per = n / 3;
        Topology::three_tier(
            specs[..per].to_vec(),
            specs[per..2 * per].to_vec(),
            specs[2 * per..].to_vec(),
        )
    }

    /// All member machines, flat, tier 0 first (the cluster node order).
    pub fn flat_specs(&self) -> Vec<MachineSpec> {
        self.tiers.iter().flat_map(|t| t.specs.iter().cloned()).collect()
    }

    /// Flat node indices of each tier, in tier order.
    pub fn tier_indices(&self) -> Vec<Vec<usize>> {
        let mut next = 0usize;
        self.tiers
            .iter()
            .map(|t| {
                let ix: Vec<usize> = (next..next + t.specs.len()).collect();
                next += t.specs.len();
                ix
            })
            .collect()
    }

    /// Total node count across tiers.
    pub fn total_nodes(&self) -> usize {
        self.tiers.iter().map(|t| t.specs.len()).sum()
    }

    /// Total core count across tiers.
    pub fn total_cores(&self) -> usize {
        self.tiers
            .iter()
            .flat_map(|t| t.specs.iter())
            .map(MachineSpec::total_cores)
            .sum()
    }
}

/// The standard mixed-generation machine list used by the scaled fleets:
/// even slots are SandyBridge, odd slots alternate Westmere/Woodcrest.
fn heterogeneous_specs(n: usize) -> Vec<MachineSpec> {
    assert!(n >= 1, "fleet needs at least one machine");
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                MachineSpec::sandybridge()
            } else if i % 4 == 1 {
                MachineSpec::westmere()
            } else {
                MachineSpec::woodcrest()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tier_sorts_newest_first() {
        let t = Topology::single_tier(vec![
            MachineSpec::woodcrest(),
            MachineSpec::sandybridge(),
            MachineSpec::westmere(),
        ]);
        let names: Vec<&str> = t.flat_specs().iter().map(|s| s.name).collect();
        assert_eq!(names, ["sandybridge", "westmere", "woodcrest"]);
        assert_eq!(t.tier_indices(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn serving_pipeline_covers_all_nodes_once() {
        for n in [3, 7, 16] {
            let t = Topology::serving_pipeline(n);
            assert_eq!(t.tiers.len(), 3);
            assert_eq!(t.total_nodes(), n);
            let ix: Vec<usize> = t.tier_indices().into_iter().flatten().collect();
            assert_eq!(ix, (0..n).collect::<Vec<_>>(), "flat numbering must be dense");
        }
    }

    #[test]
    fn scaled_fleets_are_heterogeneous() {
        let t = Topology::scaled_fleet(8);
        let specs = t.flat_specs();
        assert_eq!(specs.len(), 8);
        let gens: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.name).collect();
        assert!(gens.len() >= 3, "expected a mixed fleet, got {gens:?}");
        // Efficiency order within the tier.
        let ranks: Vec<u8> = specs.iter().map(generation_rank).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted);
    }

    #[test]
    fn core_totals_add_up() {
        let t = Topology::serving_pipeline(4);
        assert_eq!(
            t.total_cores(),
            t.flat_specs().iter().map(|s| s.total_cores()).sum::<usize>()
        );
    }
}
