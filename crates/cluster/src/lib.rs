//! Heterogeneous-cluster request distribution (paper §3.4, §4.4).
//!
//! A production cluster mixes machine generations; where a request runs
//! determines how much energy it costs. This crate reproduces the
//! paper's two-machine study:
//!
//! * [`profile`] — per-workload cross-machine energy profiles obtained
//!   through power containers (Fig. 13);
//! * [`policy`] — the three dispatch policies compared in Fig. 14 and
//!   Table 1 (simple balance, machine heterogeneity-aware, workload
//!   heterogeneity-aware);
//! * [`sim`] — the lockstep two-kernel cluster simulation with an
//!   energy- and latency-instrumented dispatcher.
//!
//! # Example
//!
//! ```no_run
//! use cluster::{run_cluster, ClusterConfig, SimpleBalance};
//! use hwsim::MachineSpec;
//! use workloads::calibrate_machine;
//!
//! let cfg = ClusterConfig::paper_setup();
//! let cals: Vec<_> = cfg.nodes.iter().map(|s| calibrate_machine(s, 42)).collect();
//! let outcome = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
//! println!("total energy rate: {:.1} W", outcome.total_energy_rate_w());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod profile;
pub mod sim;

pub use policy::{
    ArrivalView, DistributionPolicy, MachineHeterogeneityAware, NodeView, SimpleBalance,
    WorkloadHeterogeneityAware,
};
pub use profile::{energy_affinity, mean_request_energy_j, AffinityRow};
pub use sim::{run_cluster, ClusterConfig, ClusterOutcome, NodeOutcome};
