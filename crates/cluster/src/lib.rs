//! Heterogeneous-cluster request distribution (paper §3.4, §4.4).
//!
//! A production cluster mixes machine generations; where a request runs
//! determines how much energy it costs. This crate reproduces the
//! paper's two-machine study:
//!
//! * [`profile`] — per-workload cross-machine energy profiles obtained
//!   through power containers (Fig. 13);
//! * [`policy`] — the three dispatch policies compared in Fig. 14 and
//!   Table 1 (simple balance, machine heterogeneity-aware, workload
//!   heterogeneity-aware);
//! * [`topology`] — heterogeneous fleet construction: arbitrary machine
//!   mixes arranged into multi-stage serving tiers (web → app → db);
//! * [`sim`] — the sharded N-node serving simulation: a tick-batched
//!   dispatcher drives a deterministic open-loop load through the
//!   pipeline, request tags propagate across node boundaries on the
//!   socket path (and degrade under tag faults exactly as on one
//!   machine), and a cluster-wide power cap decomposes into per-node
//!   conditioning shares.
//!
//! # Example
//!
//! ```no_run
//! use cluster::{run_cluster, ClusterConfig, SimpleBalance};
//! use hwsim::MachineSpec;
//! use workloads::calibrate_machine;
//!
//! let cfg = ClusterConfig::paper_setup();
//! let cals: Vec<_> = cfg.nodes.iter().map(|s| calibrate_machine(s, 42)).collect();
//! let outcome = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
//! println!("total energy rate: {:.1} W", outcome.total_energy_rate_w());
//! ```

// `deny`, not `forbid`: the sharded engine carries one audited
// exception (the `Send` bound on its per-node runtime bundle — see
// `sim::Node`); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod obs;
pub mod policy;
pub mod profile;
pub mod sim;
pub mod topology;

pub use autoscale::{
    Autoscaler, AutoscaleConfig, BrownoutConfig, BrownoutLevel, FleetSample, RollingUpgrade,
    ScaleDecision,
};
pub use obs::{ObsConfig, ObsOutcome};
pub use policy::{
    ArrivalView, DistributionPolicy, MachineHeterogeneityAware, NodeView, SimpleBalance,
    WorkloadHeterogeneityAware,
};
pub use profile::{energy_affinity, mean_request_energy_j, AffinityRow};
pub use sim::{
    offered_cluster_rate, run_cluster, run_pipeline, AdmissionConfig, ClusterConfig,
    ClusterOutcome, CrashRecord, CtxEnergy, NodeOutcome, RecoveryConfig, ScaleEvent, ScaleKind,
    ShedReason,
};
pub use topology::{generation_rank, Tier, Topology};
