//! The always-on observability plane of the cluster engine.
//!
//! Layered on `telemetry::obs`: the engine drives one [`ObsPlane`] per
//! run from the dispatcher thread. Per-request latency lands in
//! bounded-memory quantile sketches as requests complete; once per
//! window the plane reads every node's cumulative active/attributed
//! energy *in node order* (at a tick barrier, so the numbers are
//! identical at any `--shards`/`--jobs` count), folds the deltas into
//! time-bucketed rollups, and feeds the energy-SLO burn-rate monitor.
//! Newly fired alerts are stamped with simulated time and emitted both
//! into the telemetry stream (category `obs`, dispatcher track) and
//! into [`ObsOutcome`].
//!
//! Nothing here samples inside the shard threads: all observability
//! state lives on the driving thread, which is what makes the plane
//! deterministic by construction rather than by synchronization.

use crate::sim::DISPATCHER_TRACK;
use simkern::{SimDuration, SimTime};
use telemetry::obs::{
    BurnRateMonitor, ObsReport, ProvenanceEntry, QuantileSketch, SloRules, WindowSample,
};

/// Configuration of the observability plane.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Aggregation window. Windows close at the first tick barrier at
    /// or past each boundary; only full windows feed the burn-rate
    /// monitor.
    pub window: SimDuration,
    /// Burn-rate rule thresholds and hysteresis.
    pub rules: SloRules,
    /// Collect the per-request energy provenance breakdown (node →
    /// incarnation → container → cpu/throttled/io segment). Costs
    /// memory proportional to the retained container records; off for
    /// megafleet cells.
    pub provenance: bool,
    /// Per-node `power_w/node/NNNN` rollup series are kept for the
    /// first this-many nodes (fleet-level series are always kept).
    pub per_node_series_max: usize,
    /// Multi-tenant grouping: app `i` belongs to tenant `i % tenants`.
    /// Zero disables the per-tenant sketches.
    pub tenants: usize,
}

impl ObsConfig {
    /// Defaults: 250 ms windows, [`SloRules::standard`], no provenance,
    /// per-node series for fleets up to 64 nodes, no tenant grouping.
    pub fn standard() -> ObsConfig {
        ObsConfig {
            window: SimDuration::from_millis(250),
            rules: SloRules::standard(),
            provenance: false,
            per_node_series_max: 64,
            tenants: 0,
        }
    }
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::standard()
    }
}

/// Observability results of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOutcome {
    /// The merged report: sketches, rollup series, and the full typed
    /// alert stream (also available rendered via
    /// [`ObsReport::render`] or as one byte-stable JSON line via
    /// [`ObsReport::to_json`]).
    pub report: ObsReport,
    /// Per-request energy provenance entries (empty unless
    /// [`ObsConfig::provenance`] is set), already in folded order.
    pub provenance: Vec<ProvenanceEntry>,
}

impl ObsOutcome {
    /// Number of alerts fired over the run.
    pub fn alert_count(&self) -> usize {
        self.report.alerts.len()
    }
}

/// The engine-side driver of the plane (crate-internal; the engine owns
/// one per run when [`crate::ClusterConfig::obs`] is set).
pub(crate) struct ObsPlane {
    window: SimDuration,
    window_secs: f64,
    provenance: bool,
    per_node_series_max: usize,
    tenants: usize,
    next_end: SimTime,
    monitor: BurnRateMonitor,
    report: ObsReport,
    cap_w: Option<f64>,
    // Hot-path sketches held directly (no per-completion map lookup);
    // folded into the report keyed by name at `finish`.
    fleet_latency: QuantileSketch,
    app_latency: Vec<QuantileSketch>,
    tenant_latency: Vec<QuantileSketch>,
    fleet_energy: QuantileSketch,
    app_energy: Vec<QuantileSketch>,
    tenant_energy: Vec<QuantileSketch>,
    unknown_energy: QuantileSketch,
    app_names: Vec<&'static str>,
    // Cumulative snapshots at the last window close, per node / fleet.
    last_active: Vec<f64>,
    last_attr: Vec<f64>,
    last_completed: u64,
    last_dropped: u64,
    last_degrade: u64,
}

impl ObsPlane {
    pub(crate) fn new(
        cfg: &ObsConfig,
        n_nodes: usize,
        app_names: Vec<&'static str>,
        cap_w: Option<f64>,
        duration: SimDuration,
    ) -> ObsPlane {
        assert!(!cfg.window.is_zero(), "obs window must be positive");
        let window_ns = cfg.window.as_nanos();
        let tenants = cfg.tenants.min(app_names.len());
        ObsPlane {
            window: cfg.window,
            window_secs: cfg.window.as_secs_f64(),
            provenance: cfg.provenance,
            per_node_series_max: cfg.per_node_series_max,
            tenants,
            next_end: SimTime::ZERO + cfg.window,
            monitor: BurnRateMonitor::new(cfg.rules, window_ns),
            report: ObsReport::new(window_ns, duration.as_nanos()),
            cap_w,
            fleet_latency: QuantileSketch::new(),
            app_latency: vec![QuantileSketch::new(); app_names.len()],
            tenant_latency: vec![QuantileSketch::new(); tenants],
            fleet_energy: QuantileSketch::new(),
            app_energy: vec![QuantileSketch::new(); app_names.len()],
            tenant_energy: vec![QuantileSketch::new(); tenants],
            unknown_energy: QuantileSketch::new(),
            app_names,
            last_active: vec![0.0; n_nodes],
            last_attr: vec![0.0; n_nodes],
            last_completed: 0,
            last_dropped: 0,
            last_degrade: 0,
        }
    }

    pub(crate) fn wants_provenance(&self) -> bool {
        self.provenance
    }

    /// `true` once the current window's boundary is at or behind `t` —
    /// the engine only assembles the (O(nodes)) sample when this holds.
    pub(crate) fn due(&self, t: SimTime) -> bool {
        t >= self.next_end
    }

    /// One request completed end-to-end with the given latency.
    pub(crate) fn note_completion(&mut self, app: usize, latency_s: f64) {
        self.fleet_latency.observe(latency_s);
        if let Some(s) = self.app_latency.get_mut(app) {
            s.observe(latency_s);
        }
        if self.tenants > 0 {
            self.tenant_latency[app % self.tenants].observe(latency_s);
        }
    }

    /// Closes the window ending at (or just before) `t`. `per_node`
    /// holds each node's *cumulative* (active, attributed) Joules in
    /// node order; `completed`/`dropped`/`degrade` are cumulative fleet
    /// counters. Emits any newly fired alerts into `tele`.
    pub(crate) fn close_window(
        &mut self,
        t: SimTime,
        per_node: &[(f64, f64)],
        completed: u64,
        dropped: u64,
        degrade: u64,
        tele: &telemetry::Telemetry,
    ) {
        let end_ns = t.as_nanos();
        let mut active_d = 0.0f64;
        let mut attr_d = 0.0f64;
        for (i, &(active, attr)) in per_node.iter().enumerate() {
            // A crash restores the checkpointed totals, so cumulative
            // attribution can step backwards by the loss window; the
            // clamp charges that window zero attribution (the residual
            // the anomaly rule watches for) instead of going negative.
            let da = (active - self.last_active[i]).max(0.0);
            let dr = (attr - self.last_attr[i]).max(0.0);
            self.last_active[i] = active;
            self.last_attr[i] = attr;
            active_d += da;
            attr_d += dr;
            if i < self.per_node_series_max {
                self.report
                    .rollup(&format!("power_w/node/{i:04}"))
                    .observe(end_ns, da / self.window_secs);
            }
        }
        let completed_d = completed - self.last_completed;
        let dropped_d = dropped - self.last_dropped;
        let degrade_d = degrade - self.last_degrade;
        self.last_completed = completed;
        self.last_dropped = dropped;
        self.last_degrade = degrade;

        let power_w = active_d / self.window_secs;
        self.report.rollup("power_w/fleet").observe(end_ns, power_w);
        self.report.rollup("completed/fleet").observe(end_ns, completed_d as f64);
        self.report.rollup("shed/fleet").observe(end_ns, dropped_d as f64);
        self.report.rollup("drift/fleet").observe(end_ns, degrade_d as f64);
        if completed_d > 0 {
            self.report
                .rollup("j_per_req/fleet")
                .observe(end_ns, attr_d / completed_d as f64);
        }
        if let Some(cap) = self.cap_w {
            self.report
                .rollup("headroom/fleet")
                .observe(end_ns, 1.0 - power_w / cap);
        }

        let before = self.monitor.alerts().len();
        self.monitor.observe_window(&WindowSample {
            end_ns,
            active_j: active_d,
            attributed_j: attr_d,
            completed: completed_d,
            cap_w: self.cap_w,
        });
        for a in &self.monitor.alerts()[before..] {
            tele.instant_on(
                t,
                "obs",
                a.kind.name(),
                DISPATCHER_TRACK,
                &[("value", a.value.into()), ("threshold", a.threshold.into())],
            );
            tele.add_count(a.kind.counter(), 1);
        }

        while self.next_end <= t {
            self.next_end += self.window;
        }
    }

    /// One per-request energy total (summed across nodes), observed at
    /// end of run into the energy-per-request sketches.
    pub(crate) fn note_request_energy(&mut self, app: Option<usize>, energy_j: f64) {
        self.fleet_energy.observe(energy_j);
        if let Some(app) = app {
            match self.app_energy.get_mut(app) {
                Some(s) => s.observe(energy_j),
                None => self.unknown_energy.observe(energy_j),
            }
            if self.tenants > 0 {
                self.tenant_energy[app % self.tenants].observe(energy_j);
            }
        }
    }

    /// Folds the hot-path sketches into the report and hands the plane's
    /// results out. `provenance` must already be in the caller's
    /// deterministic order.
    pub(crate) fn finish(mut self, provenance: Vec<ProvenanceEntry>) -> ObsOutcome {
        self.report.sketch("latency_s/fleet").merge(&self.fleet_latency);
        for (i, s) in self.app_latency.iter().enumerate() {
            if s.count() > 0 {
                self.report
                    .sketch(&format!("latency_s/app/{}", self.app_names[i]))
                    .merge(s);
            }
        }
        for (tnt, s) in self.tenant_latency.iter().enumerate() {
            if s.count() > 0 {
                self.report.sketch(&format!("latency_s/tenant/{tnt:02}")).merge(s);
            }
        }
        if self.fleet_energy.count() > 0 {
            self.report.sketch("energy_j_per_req/fleet").merge(&self.fleet_energy);
        }
        for (i, s) in self.app_energy.iter().enumerate() {
            if s.count() > 0 {
                self.report
                    .sketch(&format!("energy_j_per_req/app/{}", self.app_names[i]))
                    .merge(s);
            }
        }
        if self.unknown_energy.count() > 0 {
            self.report.sketch("energy_j_per_req/app/unknown").merge(&self.unknown_energy);
        }
        for (tnt, s) in self.tenant_energy.iter().enumerate() {
            if s.count() > 0 {
                self.report.sketch(&format!("energy_j_per_req/tenant/{tnt:02}")).merge(s);
            }
        }
        self.report.alerts = self.monitor.alerts().to_vec();
        ObsOutcome { report: self.report, provenance }
    }
}
