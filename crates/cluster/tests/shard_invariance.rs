//! Shard-count invariance of the intra-cell sharded engine.
//!
//! The engine's contract is exact: partitioning a cell's nodes across
//! worker threads is a pure execution-layout choice. Outcome records,
//! the telemetry JSONL stream, and the conservation ledgers must be
//! byte-identical at every `shards` setting — including shard counts
//! exceeding the node count — for healthy cells, chaos cells (crashes,
//! slowdowns, retries, hedges), and megafleet-shaped cells.

use cluster::{
    run_pipeline, ClusterConfig, ClusterOutcome, DistributionPolicy, RecoveryConfig,
    SimpleBalance, Topology,
};
use hwsim::FaultConfig;
use proptest::prelude::*;
use simkern::SimDuration;
use workloads::{calibrate_machine, MachineCalibration};

fn cals_for(cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    let mut cache: Vec<(&'static str, MachineCalibration)> = Vec::new();
    cfg.nodes
        .iter()
        .map(|spec| {
            if let Some((_, c)) = cache.iter().find(|(n, _)| *n == spec.name) {
                return c.clone();
            }
            let c = calibrate_machine(spec, 7);
            cache.push((spec.name, c.clone()));
            c
        })
        .collect()
}

/// Runs `cfg` at the given shard count with a recording trace sink;
/// returns the full outcome rendering and the exported JSONL, the two
/// artifacts the invariance contract is stated over.
fn run_traced(cfg: &ClusterConfig, shards: usize) -> (String, String) {
    let mut cfg = cfg.clone();
    cfg.shards = shards;
    cfg.telemetry = telemetry::Telemetry::recording();
    let cals = cals_for(&cfg);
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    let o = run_pipeline(&mut policies, &cfg, &cals);
    assert_conservation(&o);
    (format!("{o:?}"), cfg.telemetry.to_jsonl())
}

fn assert_conservation(o: &ClusterOutcome) {
    assert_eq!(
        o.dispatched,
        o.completed as u64 + o.dropped + o.in_flight,
        "cluster ledger must balance at every shard count"
    );
    for n in &o.per_node {
        assert_eq!(
            n.dispatched,
            n.completions as u64 + n.in_flight + n.lost_requests,
            "node ledger must balance on {} (tier {})",
            n.machine,
            n.tier
        );
    }
}

/// A chaos cell: slowdowns, crashes, tight deadlines, hedging — every
/// serial phase of the engine active at once.
fn chaos_config(n: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(n));
    cfg.seed = seed;
    cfg.duration = SimDuration::from_millis(600);
    cfg.workers_per_core = 2;
    cfg.faults = FaultConfig {
        seed: seed ^ 0xD00D,
        node_slowdown_hz: 4.0,
        node_slowdown_factor: 0.25,
        node_slowdown_len: SimDuration::from_millis(150),
        node_crash_hz: 2.0,
        node_crash_len: SimDuration::from_millis(100),
        node_warmup_len: SimDuration::from_millis(60),
        ..FaultConfig::none()
    };
    cfg.recovery = Some(RecoveryConfig {
        hop_timeout_mult: 2.0,
        min_timeout: SimDuration::from_millis(8),
        max_retries: 2,
        backoff_base: SimDuration::from_millis(4),
        hedge_after: Some(SimDuration::from_millis(6)),
        checkpoint_every: SimDuration::from_millis(40),
    });
    cfg
}

/// A megafleet-shaped cell: a wide single-tier fleet with per-request
/// energy retention on, exercising the accounting merge at scale.
fn megafleet_config(nodes: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::scaled_fleet(nodes));
    cfg.seed = seed;
    cfg.duration = SimDuration::from_millis(350);
    cfg.workers_per_core = 2;
    cfg.retain_request_energy = true;
    cfg
}

/// Megafleet family: a 24-node fleet is byte-identical at 1, 2, 4, and
/// 8 shards, per-request energy ledger included.
#[test]
fn megafleet_cell_is_shard_invariant() {
    let cfg = megafleet_config(24, 42);
    let baseline = run_traced(&cfg, 1);
    for shards in [2, 4, 8] {
        let run = run_traced(&cfg, shards);
        assert_eq!(baseline.0, run.0, "outcome diverged at {shards} shards");
        assert_eq!(baseline.1, run.1, "trace diverged at {shards} shards");
    }
}

/// Degenerate layouts: more shards than nodes, and a single-node cell,
/// still reduce to the serial result exactly.
#[test]
fn oversharded_and_tiny_cells_reduce_to_serial() {
    let cfg = megafleet_config(3, 7);
    assert_eq!(run_traced(&cfg, 1), run_traced(&cfg, 64));
    let one = megafleet_config(1, 7);
    assert_eq!(run_traced(&one, 1), run_traced(&one, 4));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Chaos cells — crashes, retries, hedges, checkpoints all firing —
    /// stay byte-identical across shard counts for any seed.
    #[test]
    fn chaos_cell_is_shard_invariant(seed in 0u64..1000, shards in 2usize..5) {
        let cfg = chaos_config(4, seed);
        let a = run_traced(&cfg, 1);
        let b = run_traced(&cfg, shards);
        prop_assert_eq!(a.0, b.0, "outcome diverged at {} shards", shards);
        prop_assert_eq!(a.1, b.1, "trace diverged at {} shards", shards);
    }
}
