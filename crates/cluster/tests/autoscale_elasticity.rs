//! Integration tests for the elastic autoscaler: diurnal traffic drives
//! real fleet resizes through the engine, and every conservation
//! invariant the fixed-fleet engine honors must survive them.

use cluster::{
    run_cluster, AutoscaleConfig, ClusterConfig, RecoveryConfig, RollingUpgrade, ScaleKind,
    ShedReason, SimpleBalance, Topology,
};
use simkern::SimDuration;
use workloads::{calibrate_machine, Diurnal, MachineCalibration, TrafficShape};

fn calibrations(cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    cfg.nodes.iter().map(|s| calibrate_machine(s, 42)).collect()
}

/// A diurnal day compressed into the run: peak ~1.7× the mean, trough
/// ~0.3× — enough swing to force both scale-outs and scale-ins against
/// the controller's 1.8 / 0.55 hysteresis band.
fn diurnal_shape(day: SimDuration) -> TrafficShape {
    TrafficShape {
        diurnal: Some(Diurnal { period: day, amplitude: 0.7, phase: 0.0 }),
        ..TrafficShape::steady()
    }
}

/// A 6-node fleet, 4 active at birth, riding one compressed day.
fn elastic_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::scaled_fleet(6));
    cfg.duration = SimDuration::from_secs(6);
    cfg.traffic = Some(diurnal_shape(cfg.duration));
    cfg.autoscale = Some(AutoscaleConfig::standard(2, 4));
    cfg.recovery = Some(RecoveryConfig::standard());
    cfg
}

#[test]
fn diurnal_day_resizes_the_fleet_and_conserves_requests() {
    let cfg = elastic_config();
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);

    // The day's peak must buy nodes and its trough must return them.
    assert!(o.scale_outs > 0, "no scale-outs over a diurnal day");
    assert!(o.scale_ins > 0, "no scale-ins over a diurnal day");
    assert_eq!(
        o.scale_log.len() as u64,
        o.scale_outs + o.scale_ins,
        "every resize must be journaled"
    );
    assert!(o.autoscale_evals > 0);
    assert!(o.completed > 1000, "completed {}", o.completed);

    // Global conservation: nothing vanishes across resizes.
    assert_eq!(o.dispatched, o.completed as u64 + o.dropped + o.in_flight);
    assert_eq!(o.dropped, o.total_shed() + o.lost_in_crash);
    for n in &o.per_node {
        assert_eq!(
            n.dispatched,
            n.completions as u64 + n.in_flight + n.lost_requests,
            "per-node identity broken on {}",
            n.machine
        );
    }

    // Scale-out charges boot energy to the provisioning container;
    // uptime stays inside the run and idle burden follows it.
    assert!(o.provisioning_energy_j > 0.0);
    for n in &o.per_node {
        assert!(n.uptime_s <= cfg.duration.as_secs_f64() + 1e-9);
        let idle = n.idle_energy_j / n.uptime_s.max(f64::MIN_POSITIVE);
        assert!(idle > 0.0, "active stretches must carry idle burden");
    }
    let journaled: f64 = o.scale_log.iter().map(|e| e.provision_energy_j).sum();
    assert!((journaled - o.provisioning_energy_j).abs() < 1e-9);
}

#[test]
fn clean_drains_checkpoint_and_lose_exactly_zero_energy() {
    let cfg = elastic_config();
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);

    let drains: Vec<_> = o
        .scale_log
        .iter()
        .filter(|e| matches!(e.kind, ScaleKind::In | ScaleKind::UpgradeIn))
        .collect();
    assert!(!drains.is_empty(), "expected at least one drain");
    for e in drains {
        assert!(e.completed_at >= e.decided_at);
        if e.forced {
            // A deadline expiry kills stragglers (requests), but their
            // partially-done work stays attributed — never an energy
            // loss window.
            assert!(e.lost_requests > 0);
        } else {
            assert_eq!(e.lost_requests, 0, "clean drain killed requests");
        }
        assert_eq!(
            e.lost_energy_j, 0.0,
            "drain on node {} journaled an energy loss window",
            e.node
        );
    }
    // Drains journal a final checkpoint each.
    assert!(o.checkpoints >= o.scale_ins);
}

#[test]
fn autoscaled_outcome_is_byte_identical_across_shards() {
    let base = elastic_config();
    let cals = calibrations(&base);
    let outcomes: Vec<_> = [1usize, 3]
        .iter()
        .map(|&shards| {
            let mut cfg = base.clone();
            cfg.shards = shards;
            run_cluster(&mut SimpleBalance::new(), &cfg, &cals)
        })
        .collect();
    let (a, b) = (&outcomes[0], &outcomes[1]);
    assert_eq!(a.dispatched, b.dispatched);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.scale_outs, b.scale_outs);
    assert_eq!(a.scale_ins, b.scale_ins);
    assert_eq!(a.brownout_engagements, b.brownout_engagements);
    assert_eq!(format!("{:?}", a.scale_log), format!("{:?}", b.scale_log));
    assert_eq!(a.peak_power_w.to_bits(), b.peak_power_w.to_bits());
    assert_eq!(a.provisioning_energy_j.to_bits(), b.provisioning_energy_j.to_bits());
    for (x, y) in a.per_node.iter().zip(&b.per_node) {
        assert_eq!(x.active_energy_j.to_bits(), y.active_energy_j.to_bits());
        assert_eq!(x.attributed_energy_j.to_bits(), y.attributed_energy_j.to_bits());
        assert_eq!(x.uptime_s.to_bits(), y.uptime_s.to_bits());
    }
    for ((ka, ea), (kb, eb)) in a.energy_by_app_j.iter().zip(&b.energy_by_app_j) {
        assert_eq!(ka, kb);
        assert_eq!(ea.to_bits(), eb.to_bits());
    }
}

#[test]
fn brownout_ladder_engages_under_a_tight_cap_and_sheds_optional() {
    // Full fleet from birth, min == initial so elasticity cannot shrink
    // away from the cap pressure; the ladder must do the degrading.
    let mut cfg = ClusterConfig::sharded(&Topology::scaled_fleet(4));
    cfg.duration = SimDuration::from_secs(4);
    cfg.traffic = Some(TrafficShape::steady());
    cfg.autoscale = Some(AutoscaleConfig::standard(4, 4));
    cfg.recovery = Some(RecoveryConfig::standard());
    let cals = calibrations(&cfg);

    // Measure the uncapped draw, then cap well below it.
    let uncapped = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    assert_eq!(uncapped.brownout_engagements, 0, "no cap, no ladder");
    let cap = 0.7 * uncapped.total_energy_rate_w();
    cfg.power_cap_w = Some(cap);

    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    assert!(o.brownout_engagements > 0, "tight cap never engaged the ladder");
    assert!(
        o.shed[ShedReason::BrownoutOptional.index()] > 0,
        "shed-optional rung never shed an optional session"
    );
    // Conditioning enforces the cap on *average* active power through
    // per-request duty cycling; instantaneous tick samples may spike.
    assert!(o.peak_power_w > 0.0);
    let mean_w = o.total_energy_rate_w();
    assert!(
        mean_w <= cap * 1.05,
        "mean active power {mean_w:.1} W broke the cap {cap:.1} W"
    );
    assert_eq!(o.dispatched, o.completed as u64 + o.dropped + o.in_flight);
}

#[test]
fn rolling_upgrade_swaps_old_actives_for_fresh_standbys() {
    let mut cfg = elastic_config();
    // Steady traffic keeps util inside the hysteresis band, so the
    // standby pool stays free for the scheduled swaps.
    cfg.traffic = Some(TrafficShape::steady());
    let ac = cfg.autoscale.as_mut().unwrap();
    ac.upgrade = Some(RollingUpgrade {
        start: SimDuration::from_secs(1),
        every: SimDuration::from_secs(2),
        count: 2,
    });
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);

    assert_eq!(o.upgrades, 2, "both scheduled swaps must start");
    let outs: Vec<_> =
        o.scale_log.iter().filter(|e| e.kind == ScaleKind::UpgradeOut).collect();
    let ins: Vec<_> =
        o.scale_log.iter().filter(|e| e.kind == ScaleKind::UpgradeIn).collect();
    // Every started swap lands both halves: one drain of the oldest
    // active node, one provision of the freshest standby.
    assert_eq!(outs.len() as u64, o.upgrades, "provision halves missing");
    assert_eq!(ins.len() as u64, o.upgrades, "drain halves missing");
    for e in &ins {
        assert_eq!(e.lost_energy_j, 0.0, "upgrade drain lost energy");
    }
    // Each swap drains one node and provisions a *different* one (the
    // concrete indices depend on what elasticity did in between).
    for (i, e) in ins.iter().zip(&outs) {
        assert_ne!(i.node, e.node, "a swap drained the node it provisioned");
    }
    assert_eq!(o.dispatched, o.completed as u64 + o.dropped + o.in_flight);
}

#[test]
fn fixed_fleet_is_unchanged_by_the_elasticity_plumbing() {
    // traffic = None, autoscale = None must reproduce the legacy engine:
    // full uptime on every node and zero elasticity counters.
    let mut cfg = ClusterConfig::sharded(&Topology::scaled_fleet(4));
    cfg.duration = SimDuration::from_secs(3);
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    assert_eq!(o.scale_outs + o.scale_ins + o.upgrades, 0);
    assert!(o.scale_log.is_empty());
    assert_eq!(o.autoscale_evals, 0);
    assert_eq!(o.provisioning_energy_j, 0.0);
    for n in &o.per_node {
        assert_eq!(n.uptime_s.to_bits(), cfg.duration.as_secs_f64().to_bits());
    }
}
