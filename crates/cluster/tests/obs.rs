//! Observability-plane contracts at the engine level: the plane is
//! opt-in, its report is byte-identical at every shard count (the
//! window samples are read at tick barriers in node order), and the
//! alert stream is a deterministic function of the seeded config —
//! chaos cells included.

use cluster::{
    run_pipeline, ClusterConfig, DistributionPolicy, ObsConfig, ObsOutcome, RecoveryConfig,
    SimpleBalance, Topology,
};
use hwsim::FaultConfig;
use proptest::prelude::*;
use simkern::SimDuration;
use telemetry::obs::{provenance_folded, SloRules};
use workloads::{calibrate_machine, MachineCalibration};

fn cals_for(cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    let mut cache: Vec<(&'static str, MachineCalibration)> = Vec::new();
    cfg.nodes
        .iter()
        .map(|spec| {
            if let Some((_, c)) = cache.iter().find(|(n, _)| *n == spec.name) {
                return c.clone();
            }
            let c = calibrate_machine(spec, 7);
            cache.push((spec.name, c.clone()));
            c
        })
        .collect()
}

/// A small observed cell with everything the plane watches switched on:
/// a cap tight enough to matter, crashes and slowdowns past an onset,
/// provenance, and tenant grouping.
fn observed_chaos_config(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(4));
    cfg.seed = seed;
    cfg.duration = SimDuration::from_millis(900);
    cfg.workers_per_core = 2;
    let cores: usize = cfg.nodes.iter().map(hwsim::MachineSpec::total_cores).sum();
    cfg.power_cap_w = Some(5.0 * cores as f64);
    cfg.faults = FaultConfig {
        seed: seed ^ 0x0B5,
        node_slowdown_hz: 3.0,
        node_slowdown_factor: 0.5,
        node_slowdown_len: SimDuration::from_millis(150),
        node_crash_hz: 2.0,
        node_crash_len: SimDuration::from_millis(100),
        node_warmup_len: SimDuration::from_millis(60),
        node_fault_start: SimDuration::from_millis(300),
        ..FaultConfig::none()
    };
    cfg.recovery = Some(RecoveryConfig {
        checkpoint_every: SimDuration::from_millis(200),
        ..RecoveryConfig::standard()
    });
    cfg.obs = Some(ObsConfig {
        window: SimDuration::from_millis(100),
        rules: SloRules { fire_after: 1, ..SloRules::standard() },
        provenance: true,
        tenants: 2,
        ..ObsConfig::standard()
    });
    cfg
}

/// Runs `cfg` at the given shard count and returns the plane's outcome.
fn run_observed(cfg: &ClusterConfig, shards: usize) -> ObsOutcome {
    let mut cfg = cfg.clone();
    cfg.shards = shards;
    let cals = cals_for(&cfg);
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    let o = run_pipeline(&mut policies, &cfg, &cals);
    *o.obs.expect("obs plane was enabled")
}

/// The plane is strictly opt-in: without `ClusterConfig::obs` the
/// outcome carries no report and the engine spends nothing on one.
#[test]
fn obs_is_none_unless_enabled() {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(4));
    cfg.duration = SimDuration::from_millis(300);
    let cals = cals_for(&cfg);
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    let o = run_pipeline(&mut policies, &cfg, &cals);
    assert!(o.obs.is_none());
}

/// A healthy observed cell populates the report: one rollup cell per
/// full window, latency and energy sketches over every completion, and
/// no alerts.
#[test]
fn clean_cell_reports_and_stays_silent() {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(4));
    cfg.seed = 11;
    cfg.duration = SimDuration::from_millis(1000);
    cfg.obs = Some(ObsConfig {
        window: SimDuration::from_millis(100),
        provenance: true,
        tenants: 2,
        ..ObsConfig::standard()
    });
    let obs = run_observed(&cfg, 1);
    assert!(obs.report.alerts.is_empty(), "clean cell must not alert: {:?}", obs.report.alerts);
    let windows = obs.report.series["power_w/fleet"].total_count();
    assert!(
        (9..=10).contains(&windows),
        "a 1 s run of 100 ms windows must close ~10 windows, got {windows}"
    );
    assert!(obs.report.sketches["latency_s/fleet"].count() > 0);
    assert!(obs.report.sketches["energy_j_per_req/fleet"].count() > 0);
    assert!(
        obs.report.sketches.keys().any(|k| k.starts_with("latency_s/tenant/")),
        "tenant grouping was configured"
    );
    assert!(!obs.provenance.is_empty(), "provenance was configured");
    // Bounded memory: every sketch stays within its bucket clamp.
    for (k, s) in &obs.report.sketches {
        assert!(s.bucket_count() < 1000, "sketch {k} grew unbounded");
    }
}

/// The full observability artifact — report bytes, rendered report,
/// and the folded provenance export — is byte-identical whether the
/// cell runs serially or sharded, including shard counts past the node
/// count, on a chaos cell where crashes roll attribution backwards.
#[test]
fn observed_chaos_cell_is_shard_invariant() {
    let cfg = observed_chaos_config(42);
    let base = run_observed(&cfg, 1);
    assert!(
        !base.report.alerts.is_empty(),
        "the chaos cell is tuned to alert; silence means the rungs test nothing"
    );
    for shards in [2, 8] {
        let run = run_observed(&cfg, shards);
        assert_eq!(
            base.report.to_json(),
            run.report.to_json(),
            "obs report bytes diverged at {shards} shards"
        );
        assert_eq!(base.report.render(), run.report.render());
        assert_eq!(
            provenance_folded(&base.provenance),
            provenance_folded(&run.provenance),
            "provenance diverged at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Alert determinism: for any seed, the typed alert stream (kinds,
    /// windows, sim-time stamps, values) is identical run-to-run and
    /// across shard counts.
    #[test]
    fn alert_stream_is_deterministic(seed in 0u64..1000, shards in 2usize..6) {
        let cfg = observed_chaos_config(seed);
        let a = run_observed(&cfg, 1);
        let b = run_observed(&cfg, 1);
        prop_assert_eq!(&a.report.alerts, &b.report.alerts, "rerun diverged");
        let c = run_observed(&cfg, shards);
        prop_assert_eq!(&a.report.alerts, &c.report.alerts, "alerts diverged at {} shards", shards);
        prop_assert_eq!(a.report.to_json(), c.report.to_json());
    }
}
