//! Property-based tests for the distribution policies and the sharded
//! cluster engine's conservation laws.

use cluster::{
    run_pipeline, ArrivalView, ClusterConfig, ClusterOutcome, DistributionPolicy,
    MachineHeterogeneityAware, NodeView, SimpleBalance, Topology, WorkloadHeterogeneityAware,
};
use proptest::prelude::*;
use simkern::SimDuration;
use workloads::{calibrate_machine, MachineCalibration, WorkloadKind};

fn arb_nodes() -> impl Strategy<Value = Vec<NodeView>> {
    prop::collection::vec(
        (0.0f64..20.0, 1usize..16, 0u8..3)
            .prop_map(|(outstanding, cores, rank)| NodeView { outstanding, cores, rank }),
        2..5,
    )
}

fn arb_arrival() -> impl Strategy<Value = ArrivalView> {
    (prop::sample::select(vec![
        WorkloadKind::RsaCrypto,
        WorkloadKind::GaeVosao,
        WorkloadKind::Solr,
        WorkloadKind::Stress,
    ]), 0u32..200)
        .prop_map(|(app, label)| ArrivalView { app, label })
}

proptest! {
    /// Every policy returns a valid node index for any state.
    #[test]
    fn policies_choose_valid_nodes(
        nodes in arb_nodes(),
        arrivals in prop::collection::vec(arb_arrival(), 1..50),
    ) {
        let mut policies: Vec<Box<dyn DistributionPolicy>> = vec![
            Box::new(SimpleBalance::new()),
            Box::new(MachineHeterogeneityAware::new()),
            Box::new(WorkloadHeterogeneityAware::new(vec![
                (WorkloadKind::RsaCrypto, 0.22),
                (WorkloadKind::GaeVosao, 0.43),
            ])),
        ];
        for p in &mut policies {
            for &a in &arrivals {
                let n = p.choose(a, &nodes);
                prop_assert!(n < nodes.len(), "{} chose {n} of {}", p.name(), nodes.len());
            }
        }
    }

    /// Policies are pure: replaying the same arrival stream against the
    /// same views from a fresh instance reproduces every choice — the
    /// property that makes cluster runs independent of `--jobs`.
    #[test]
    fn policies_are_deterministic(
        nodes in arb_nodes(),
        arrivals in prop::collection::vec(arb_arrival(), 1..50),
    ) {
        let make: Vec<fn() -> Box<dyn DistributionPolicy>> = vec![
            || Box::new(SimpleBalance::new()),
            || Box::new(MachineHeterogeneityAware::new()),
            || Box::new(WorkloadHeterogeneityAware::new(vec![
                (WorkloadKind::RsaCrypto, 0.22),
                (WorkloadKind::GaeVosao, 0.43),
            ])),
        ];
        for mk in make {
            let (mut a, mut b) = (mk(), mk());
            for &req in &arrivals {
                prop_assert_eq!(a.choose(req, &nodes), b.choose(req, &nodes));
            }
        }
    }

    /// Simple balance distributes any stream evenly across nodes.
    #[test]
    fn simple_balance_is_even(
        nodes in arb_nodes(),
        count in 10usize..200,
    ) {
        let mut p = SimpleBalance::new();
        let mut hits = vec![0usize; nodes.len()];
        for i in 0..count {
            let a = ArrivalView { app: WorkloadKind::Solr, label: i as u32 };
            hits[p.choose(a, &nodes)] += 1;
        }
        let max = *hits.iter().max().unwrap();
        let min = *hits.iter().min().unwrap();
        prop_assert!(max - min <= 1, "uneven split {hits:?}");
    }

    /// The machine-aware policy never spills while node 0 (the newest
    /// machine) is below its threshold, and goes least-loaded once the
    /// whole fleet is saturated.
    #[test]
    fn machine_aware_honours_threshold(
        load0 in 0.0f64..2.0,
        load1 in 0.0f64..2.0,
        label in 0u32..10,
    ) {
        let mut p = MachineHeterogeneityAware::new();
        let nodes = vec![
            NodeView { outstanding: load0 * 4.0, cores: 4, rank: 0 },
            NodeView { outstanding: load1 * 4.0, cores: 4, rank: 2 },
        ];
        let choice = p.choose(
            ArrivalView { app: WorkloadKind::RsaCrypto, label },
            &nodes,
        );
        if load0 < p.threshold {
            prop_assert_eq!(choice, 0);
        } else if load1 < p.threshold {
            prop_assert_eq!(choice, 1);
        } else {
            // Saturated fleet: least-loaded wins, ties to the lowest index.
            prop_assert_eq!(choice, if load1 < load0 { 1 } else { 0 });
        }
    }

    /// The workload-aware policy keeps low-ratio apps on node 0 whenever
    /// node 0 has any tolerance left, and spills high-ratio apps once the
    /// threshold is crossed.
    #[test]
    fn workload_aware_is_affinity_consistent(load0 in 0.0f64..2.0) {
        let mut p = WorkloadHeterogeneityAware::new(vec![
            (WorkloadKind::RsaCrypto, 0.2),
            (WorkloadKind::GaeVosao, 0.8),
        ]);
        let nodes = vec![
            NodeView { outstanding: load0 * 4.0, cores: 4, rank: 0 },
            NodeView { outstanding: 0.0, cores: 4, rank: 2 },
        ];
        let rsa = p.choose(ArrivalView { app: WorkloadKind::RsaCrypto, label: 0 }, &nodes);
        let gae = p.choose(ArrivalView { app: WorkloadKind::GaeVosao, label: 0 }, &nodes);
        if load0 < p.threshold {
            prop_assert_eq!(rsa, 0);
            prop_assert_eq!(gae, 0);
        } else {
            // Above threshold: the spill-friendly app leaves first.
            prop_assert_eq!(gae, 1);
            if load0 < 1.25 {
                prop_assert_eq!(rsa, 0, "RSA should cling to node 0 at load {}", load0);
            } else {
                prop_assert_eq!(rsa, 1);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine conservation laws. Each case is a full (small, short) cluster
// run, so the suites run few cases with tight topologies.

fn small_config(n: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(n));
    cfg.seed = seed;
    cfg.duration = SimDuration::from_millis(800);
    cfg.workers_per_core = 2;
    cfg
}

fn cals_for(cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    // Calibrations depend only on the spec; reuse per distinct machine.
    let mut cache: Vec<(&'static str, MachineCalibration)> = Vec::new();
    cfg.nodes
        .iter()
        .map(|spec| {
            if let Some((_, c)) = cache.iter().find(|(n, _)| *n == spec.name) {
                return c.clone();
            }
            let c = calibrate_machine(spec, 7);
            cache.push((spec.name, c.clone()));
            c
        })
        .collect()
}

fn run_small(n: usize, seed: u64) -> ClusterOutcome {
    let cfg = small_config(n, seed);
    let cals = cals_for(&cfg);
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    run_pipeline(&mut policies, &cfg, &cals)
}

fn assert_conservation(o: &ClusterOutcome) {
    // Cluster-wide: every offered request is completed, dropped, or
    // still in flight — exactly.
    assert_eq!(
        o.dispatched,
        o.completed as u64 + o.dropped + o.in_flight,
        "dispatched must equal completed + dropped + in_flight"
    );
    // Per shard: every injection is either served or still queued; no
    // request is counted on two shards at once.
    let mut stage_injections = 0u64;
    let mut stage_completions = 0u64;
    let mut still_queued = 0u64;
    for n in &o.per_node {
        assert_eq!(
            n.dispatched,
            n.completions as u64 + n.in_flight,
            "node conservation violated on {} (tier {})",
            n.machine,
            n.tier
        );
        stage_injections += n.dispatched;
        stage_completions += n.completions as u64;
        still_queued += n.in_flight;
    }
    // Stage totals tie out against the dispatcher's request ledger: a
    // request contributes one injection per stage it reached, and the
    // requests still inside the pipeline are queued on exactly one shard.
    assert_eq!(stage_injections, stage_completions + still_queued);
    assert!(
        o.in_flight <= still_queued + o.in_flight,
        "sanity: dispatcher in-flight ledger"
    );
    assert!(o.completed > 0, "a healthy small run must complete requests");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// dispatched = completed + dropped (+ in flight), cluster-wide and
    /// per shard, for any seed and small pipeline size.
    #[test]
    fn engine_conserves_requests(seed in 0u64..1000, n in 3usize..6) {
        assert_conservation(&run_small(n, seed));
    }

    /// Equal seeds give identical outcomes — full structural equality of
    /// every counter and energy figure.
    #[test]
    fn engine_is_deterministic_for_equal_seeds(seed in 0u64..1000) {
        let (a, b) = (run_small(4, seed), run_small(4, seed));
        prop_assert_eq!(a.dispatched, b.dispatched);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.in_flight, b.in_flight);
        prop_assert_eq!(a.decisions, b.decisions);
        for (x, y) in a.per_node.iter().zip(&b.per_node) {
            prop_assert_eq!(x.dispatched, y.dispatched);
            prop_assert_eq!(x.completions, y.completions);
            prop_assert!(x.active_energy_j == y.active_energy_j, "energy must match bit-for-bit");
            prop_assert!(x.attributed_energy_j == y.attributed_energy_j);
        }
        for ((ka, va), (kb, vb)) in a.energy_by_app_j.iter().zip(&b.energy_by_app_j) {
            prop_assert_eq!(ka, kb);
            prop_assert!(va == vb);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Offered-request counts (and the rest of the outcome's counters)
    /// are invariant under the intra-cell shard count even when
    /// non-stationary traffic drives the elastic autoscaler: every
    /// routing, admission, and resize decision stays on the driving
    /// thread, so `--shards` can only change who advances kernels.
    #[test]
    fn traffic_offered_counts_invariant_across_shards(seed in 0u64..1000) {
        use cluster::{run_cluster, AutoscaleConfig};
        use workloads::{Diurnal, TrafficShape};

        let mut base = ClusterConfig::sharded(&Topology::scaled_fleet(4));
        base.seed = seed;
        base.duration = SimDuration::from_millis(1200);
        base.workers_per_core = 2;
        base.traffic = Some(TrafficShape {
            diurnal: Some(Diurnal {
                period: SimDuration::from_millis(1200),
                amplitude: 0.7,
                phase: 0.0,
            }),
            ..TrafficShape::steady()
        });
        base.autoscale = Some(AutoscaleConfig::standard(2, 3));
        let cals = cals_for(&base);
        let outcomes: Vec<ClusterOutcome> = [1usize, 3]
            .iter()
            .map(|&shards| {
                let mut cfg = base.clone();
                cfg.shards = shards;
                run_cluster(&mut SimpleBalance::new(), &cfg, &cals)
            })
            .collect();
        let (a, b) = (&outcomes[0], &outcomes[1]);
        prop_assert_eq!(a.dispatched, b.dispatched, "offered counts must not depend on --shards");
        prop_assert!(a.dispatched > 0, "the diurnal window must offer requests");
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.in_flight, b.in_flight);
        prop_assert_eq!(a.scale_outs, b.scale_outs);
        prop_assert_eq!(a.scale_ins, b.scale_ins);
        for (x, y) in a.per_node.iter().zip(&b.per_node) {
            prop_assert_eq!(x.dispatched, y.dispatched);
            prop_assert!(x.active_energy_j == y.active_energy_j, "energy must match bit-for-bit");
            prop_assert!(x.uptime_s == y.uptime_s, "resize instants must match bit-for-bit");
        }
    }
}
