//! Property-based tests for the distribution policies.

use cluster::{
    ArrivalView, DistributionPolicy, MachineHeterogeneityAware, NodeView, SimpleBalance,
    WorkloadHeterogeneityAware,
};
use proptest::prelude::*;
use workloads::WorkloadKind;

fn arb_nodes() -> impl Strategy<Value = Vec<NodeView>> {
    prop::collection::vec(
        (0.0f64..20.0, 1usize..16)
            .prop_map(|(outstanding, cores)| NodeView { outstanding, cores }),
        2..5,
    )
}

fn arb_arrival() -> impl Strategy<Value = ArrivalView> {
    (prop::sample::select(vec![
        WorkloadKind::RsaCrypto,
        WorkloadKind::GaeVosao,
        WorkloadKind::Solr,
        WorkloadKind::Stress,
    ]), 0u32..200)
        .prop_map(|(app, label)| ArrivalView { app, label })
}

proptest! {
    /// Every policy returns a valid node index for any state.
    #[test]
    fn policies_choose_valid_nodes(
        nodes in arb_nodes(),
        arrivals in prop::collection::vec(arb_arrival(), 1..50),
    ) {
        let mut policies: Vec<Box<dyn DistributionPolicy>> = vec![
            Box::new(SimpleBalance::new()),
            Box::new(MachineHeterogeneityAware::new()),
            Box::new(WorkloadHeterogeneityAware::new(vec![
                (WorkloadKind::RsaCrypto, 0.22),
                (WorkloadKind::GaeVosao, 0.43),
            ])),
        ];
        for p in &mut policies {
            for &a in &arrivals {
                let n = p.choose(a, &nodes);
                prop_assert!(n < nodes.len(), "{} chose {n} of {}", p.name(), nodes.len());
            }
        }
    }

    /// Simple balance distributes any stream evenly across nodes.
    #[test]
    fn simple_balance_is_even(
        nodes in arb_nodes(),
        count in 10usize..200,
    ) {
        let mut p = SimpleBalance::new();
        let mut hits = vec![0usize; nodes.len()];
        for i in 0..count {
            let a = ArrivalView { app: WorkloadKind::Solr, label: i as u32 };
            hits[p.choose(a, &nodes)] += 1;
        }
        let max = *hits.iter().max().unwrap();
        let min = *hits.iter().min().unwrap();
        prop_assert!(max - min <= 1, "uneven split {hits:?}");
    }

    /// The machine-aware policy never spills while node 0 is below its
    /// threshold.
    #[test]
    fn machine_aware_honours_threshold(
        load0 in 0.0f64..2.0,
        load1 in 0.0f64..2.0,
        label in 0u32..10,
    ) {
        let mut p = MachineHeterogeneityAware::new();
        let nodes = vec![
            NodeView { outstanding: load0 * 4.0, cores: 4 },
            NodeView { outstanding: load1 * 4.0, cores: 4 },
        ];
        let choice = p.choose(
            ArrivalView { app: WorkloadKind::RsaCrypto, label },
            &nodes,
        );
        if load0 < p.threshold {
            prop_assert_eq!(choice, 0);
        } else {
            prop_assert_eq!(choice, 1);
        }
    }

    /// The workload-aware policy keeps low-ratio apps on node 0 whenever
    /// node 0 has any tolerance left, and spills high-ratio apps once the
    /// threshold is crossed.
    #[test]
    fn workload_aware_is_affinity_consistent(load0 in 0.0f64..2.0) {
        let mut p = WorkloadHeterogeneityAware::new(vec![
            (WorkloadKind::RsaCrypto, 0.2),
            (WorkloadKind::GaeVosao, 0.8),
        ]);
        let nodes = vec![
            NodeView { outstanding: load0 * 4.0, cores: 4 },
            NodeView { outstanding: 0.0, cores: 4 },
        ];
        let rsa = p.choose(ArrivalView { app: WorkloadKind::RsaCrypto, label: 0 }, &nodes);
        let gae = p.choose(ArrivalView { app: WorkloadKind::GaeVosao, label: 0 }, &nodes);
        if load0 < p.threshold {
            prop_assert_eq!(rsa, 0);
            prop_assert_eq!(gae, 0);
        } else {
            // Above threshold: the spill-friendly app leaves first.
            prop_assert_eq!(gae, 1);
            if load0 < 1.25 {
                prop_assert_eq!(rsa, 0, "RSA should cling to node 0 at load {}", load0);
            } else {
                prop_assert_eq!(rsa, 1);
            }
        }
    }
}
