//! Integration tests for the heterogeneous-cluster simulation.

use cluster::{
    run_cluster, ClusterConfig, DistributionPolicy, MachineHeterogeneityAware, SimpleBalance,
    WorkloadHeterogeneityAware,
};
use simkern::SimDuration;
use workloads::{calibrate_machine, MachineCalibration, WorkloadKind};

fn quick_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_setup();
    cfg.duration = SimDuration::from_secs(4);
    cfg
}

fn calibrations(cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    cfg.nodes.iter().map(|s| calibrate_machine(s, 42)).collect()
}

#[test]
fn simple_balance_spreads_requests_evenly() {
    let cfg = quick_config();
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    assert!(o.completed > 500, "completed {}", o.completed);
    let (a, b) = (o.per_node[0].completions, o.per_node[1].completions);
    let ratio = a as f64 / b.max(1) as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "simple balance should split evenly: {a} vs {b}"
    );
}

#[test]
fn machine_aware_prefers_the_new_machine() {
    let cfg = quick_config();
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut MachineHeterogeneityAware::new(), &cfg, &cals);
    assert!(
        o.per_node[0].completions > o.per_node[1].completions,
        "node 0 should serve more: {} vs {}",
        o.per_node[0].completions,
        o.per_node[1].completions
    );
    assert!(o.per_node[0].utilization > 0.5);
}

#[test]
fn workload_aware_beats_the_alternatives_on_energy() {
    let cfg = quick_config();
    let cals = calibrations(&cfg);
    let ratios = vec![
        (WorkloadKind::GaeVosao, 0.40),
        (WorkloadKind::RsaCrypto, 0.21),
    ];
    let mut policies: Vec<Box<dyn DistributionPolicy>> = vec![
        Box::new(SimpleBalance::new()),
        Box::new(MachineHeterogeneityAware::new()),
        Box::new(WorkloadHeterogeneityAware::new(ratios)),
    ];
    let totals: Vec<f64> = policies
        .iter_mut()
        .map(|p| run_cluster(p.as_mut(), &cfg, &cals).total_energy_rate_w())
        .collect();
    assert!(
        totals[2] < totals[0] * 0.95,
        "workload-aware {:.1} W should beat simple balance {:.1} W",
        totals[2],
        totals[0]
    );
    assert!(
        totals[2] < totals[1],
        "workload-aware {:.1} W should beat machine-aware {:.1} W",
        totals[2],
        totals[1]
    );
}

#[test]
fn dispatcher_accounts_energy_per_app_via_response_tags() {
    let cfg = quick_config();
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    assert_eq!(o.energy_by_app_j.len(), 2);
    for (kind, joules) in &o.energy_by_app_j {
        assert!(*joules > 1.0, "{kind} accounted only {joules} J");
    }
    // Comprehensive accounting stays below the machines' total active
    // energy (background/infrastructure is not request energy).
    let total_active: f64 = o.per_node.iter().map(|n| n.active_energy_j).sum();
    let accounted: f64 = o.energy_by_app_j.iter().map(|(_, j)| *j).sum();
    assert!(
        accounted < total_active,
        "accounted {accounted:.1} J vs machine total {total_active:.1} J"
    );
    assert!(accounted > total_active * 0.3, "accounting implausibly low");
}

#[test]
fn response_times_are_recorded_per_app() {
    let cfg = quick_config();
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut MachineHeterogeneityAware::new(), &cfg, &cals);
    for (kind, summary) in &o.response_by_app {
        assert!(summary.count() > 50, "{kind} has too few completions");
        assert!(summary.mean() > 0.0 && summary.mean() < 1.0, "{kind} mean {}", summary.mean());
    }
}

#[test]
fn overloaded_balance_has_worse_latency_than_aware_policies() {
    let cfg = quick_config();
    let cals = calibrations(&cfg);
    let balanced = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    let aware = run_cluster(&mut MachineHeterogeneityAware::new(), &cfg, &cals);
    let mean_of = |o: &cluster::ClusterOutcome| {
        o.response_by_app
            .iter()
            .map(|(_, s)| s.mean())
            .sum::<f64>()
            / o.response_by_app.len() as f64
    };
    assert!(
        mean_of(&balanced) > mean_of(&aware),
        "balance {:.4}s should be slower than aware {:.4}s (Table 1)",
        mean_of(&balanced),
        mean_of(&aware)
    );
}

#[test]
fn dispatcher_rides_out_node_blackouts() {
    let mut cfg = quick_config();
    cfg.faults = hwsim::FaultConfig {
        seed: 7,
        node_blackout_hz: 1.0,
        node_blackout_len: SimDuration::from_millis(400),
        ..hwsim::FaultConfig::none()
    };
    let cals = calibrations(&cfg);
    let faulty = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    assert!(
        faulty.degradations_detected > 0,
        "blackouts every ~1 s over 4 s must trip the health check: {faulty:?}"
    );
    assert!(
        faulty.rerouted > 0,
        "penalized nodes should shed load to healthy ones: rerouted {}",
        faulty.rerouted
    );
    // Degraded, not collapsed: the healthy node picks up the slack.
    let clean = run_cluster(&mut SimpleBalance::new(), &quick_config(), &cals);
    assert!(
        faulty.completed as f64 > 0.7 * clean.completed as f64,
        "faulty {} vs clean {}",
        faulty.completed,
        clean.completed
    );
    // Accounting stays intact: dispatched = completed + dropped + still in flight.
    assert!(faulty.completed as u64 + faulty.dropped <= faulty.dispatched);
}

#[test]
fn node_slowdowns_shift_load_without_drops() {
    let mut cfg = quick_config();
    cfg.faults = hwsim::FaultConfig {
        seed: 11,
        node_slowdown_hz: 2.0,
        node_slowdown_factor: 0.5,
        node_slowdown_len: SimDuration::from_millis(300),
        ..hwsim::FaultConfig::none()
    };
    let cals = calibrations(&cfg);
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, &cals);
    assert!(o.completed > 400, "slowdowns alone should not strand requests: {o:?}");
    assert_eq!(
        o.fault_counts.iter().sum::<u64>(),
        0,
        "node-level windows are dispatcher-side, not machine fault-log entries"
    );
}
