//! Crash/restart, retry, and admission-control behavior of the
//! sharded serving engine: typed sheds when a whole tier is dark, the
//! recovery conservation laws (exact request accounting through
//! crashes, retries and hedges — the dedup guarantee), and
//! determinism with the full recovery machinery on.

use cluster::{
    run_pipeline, AdmissionConfig, ClusterConfig, ClusterOutcome, DistributionPolicy,
    RecoveryConfig, ShedReason, SimpleBalance, Topology,
};
use hwsim::FaultConfig;
use proptest::prelude::*;
use simkern::SimDuration;
use workloads::{calibrate_machine, MachineCalibration};

fn cals_for(cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    let mut cache: Vec<(&'static str, MachineCalibration)> = Vec::new();
    cfg.nodes
        .iter()
        .map(|spec| {
            if let Some((_, c)) = cache.iter().find(|(n, _)| *n == spec.name) {
                return c.clone();
            }
            let c = calibrate_machine(spec, 7);
            cache.push((spec.name, c.clone()));
            c
        })
        .collect()
}

fn run(cfg: &ClusterConfig) -> ClusterOutcome {
    let cals = cals_for(cfg);
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    run_pipeline(&mut policies, cfg, &cals)
}

fn small_config(n: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(n));
    cfg.seed = seed;
    cfg.duration = SimDuration::from_millis(800);
    cfg.workers_per_core = 2;
    cfg
}

/// The recovery-era conservation laws, exact at every fault mix:
///
/// * cluster-wide: `dispatched = completed + dropped + in_flight`,
///   with every drop typed (`dropped = Σ shed + lost_in_crash`);
/// * per node: `dispatched = completions + in_flight + lost_requests`.
fn assert_recovery_conservation(o: &ClusterOutcome) {
    assert_eq!(
        o.dispatched,
        o.completed as u64 + o.dropped + o.in_flight,
        "dispatched must equal completed + dropped + in_flight"
    );
    assert_eq!(
        o.dropped,
        o.total_shed() + o.lost_in_crash,
        "every dropped request must carry a typed reason"
    );
    for n in &o.per_node {
        assert_eq!(
            n.dispatched,
            n.completions as u64 + n.in_flight + n.lost_requests,
            "node conservation violated on {} (tier {})",
            n.machine,
            n.tier
        );
    }
    assert_eq!(o.crash_log.len() as u64, o.crashes, "one crash record per crash");
    let log_lost: u64 = o.crash_log.iter().map(|c| c.lost_requests).sum();
    let node_lost: u64 = o.per_node.iter().map(|n| n.lost_requests).sum();
    assert_eq!(log_lost, node_lost, "crash log and node ledgers must agree");
}

/// Regression: when every node of a tier sits inside a blackout
/// window, the dispatcher must shed arrivals with a typed
/// `NoHealthyNode` reason instead of injecting into dark nodes. The
/// blackout starts almost immediately and outlasts the run on both
/// tier nodes, so nearly everything offered must be shed — under the
/// old behavior the requests piled up in flight on the dark nodes
/// until the health checker caught up.
#[test]
fn full_tier_blackout_sheds_with_typed_reason() {
    let mut cfg = ClusterConfig::paper_setup();
    cfg.duration = SimDuration::from_millis(600);
    cfg.workers_per_core = 2;
    cfg.faults = FaultConfig {
        seed: 11,
        node_blackout_hz: 5000.0,
        node_blackout_len: SimDuration::from_secs(5),
        ..FaultConfig::none()
    };
    let o = run(&cfg);
    assert_recovery_conservation(&o);
    let shed_dark = o.shed[ShedReason::NoHealthyNode.index()];
    assert!(shed_dark > 0, "an all-dark tier must shed typed NoHealthyNode");
    assert!(
        shed_dark >= o.dispatched * 8 / 10,
        "nearly all arrivals should be shed once both nodes go dark \
         (shed {shed_dark} of {})",
        o.dispatched
    );
    assert!(
        o.completed as u64 + o.in_flight <= o.dispatched / 5,
        "dark nodes must not silently absorb the offered load \
         (completed {} + in flight {} of {})",
        o.completed,
        o.in_flight,
        o.dispatched
    );
}

/// Admission control sheds with typed reasons at the front door: an
/// absurdly low queue bound sheds essentially everything.
#[test]
fn queue_admission_sheds_typed() {
    let mut cfg = ClusterConfig::paper_setup();
    cfg.duration = SimDuration::from_millis(400);
    cfg.workers_per_core = 2;
    cfg.admission = Some(AdmissionConfig { max_queue_per_core: 0.001, ..AdmissionConfig::standard() });
    let o = run(&cfg);
    assert_recovery_conservation(&o);
    assert!(
        o.shed[ShedReason::QueueDepth.index()] > 0,
        "a tiny queue bound must shed on queue depth"
    );
    assert!(o.completed > 0, "admission must still let a trickle through");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Crash/restart cycles keep the exact request ledger: every
    /// request offered is completed, typed-shed, lost to a crash, or
    /// in flight; per node, every injection is served, queued, or
    /// killed by a crash. Energy is conserved modulo the journaled
    /// loss windows.
    #[test]
    fn crash_restart_conserves_requests(seed in 0u64..1000) {
        let mut cfg = small_config(3, seed);
        cfg.faults = FaultConfig {
            seed: seed ^ 0xC0FF_EE,
            node_crash_hz: 3.0,
            node_crash_len: SimDuration::from_millis(120),
            node_warmup_len: SimDuration::from_millis(80),
            ..FaultConfig::none()
        };
        cfg.recovery = Some(RecoveryConfig::standard());
        let o = run(&cfg);
        assert_recovery_conservation(&o);
        prop_assert!(o.crashes > 0, "the crash clock must fire at 3 Hz over 0.8 s");
        prop_assert!(o.checkpoints > 0, "crashes imply checkpoint journaling");
        // Restored attribution plus the journaled loss windows must
        // cover what the machines actually drew (model tolerance).
        let active: f64 = o.per_node.iter().map(|n| n.active_energy_j).sum();
        let attributed: f64 = o.per_node.iter().map(|n| n.attributed_energy_j).sum();
        let lost: f64 = o.per_node.iter().map(|n| n.lost_energy_j).sum();
        let gap = (active - (attributed + lost)).abs() / active.max(1e-9);
        prop_assert!(
            gap < 0.45,
            "energy conservation modulo loss windows: active {active:.1} J vs \
             attributed {attributed:.1} + lost {lost:.1} J (gap {:.0}%)",
            gap * 100.0
        );
    }

    /// Retry dedup: with aggressive timeouts, hedging, slowdowns and
    /// crashes all active, a request still completes at most once —
    /// the exact cluster ledger would break on any double-completion
    /// or double-drop, for any seed.
    #[test]
    fn retry_dedup_never_double_counts(seed in 0u64..1000) {
        let mut cfg = small_config(3, seed);
        cfg.faults = FaultConfig {
            seed: seed ^ 0xD00D,
            node_slowdown_hz: 4.0,
            node_slowdown_factor: 0.25,
            node_slowdown_len: SimDuration::from_millis(150),
            node_crash_hz: 2.0,
            node_crash_len: SimDuration::from_millis(100),
            node_warmup_len: SimDuration::from_millis(60),
            ..FaultConfig::none()
        };
        cfg.recovery = Some(RecoveryConfig {
            hop_timeout_mult: 2.0,
            min_timeout: SimDuration::from_millis(8),
            max_retries: 2,
            backoff_base: SimDuration::from_millis(4),
            hedge_after: Some(SimDuration::from_millis(6)),
            checkpoint_every: SimDuration::from_millis(40),
        });
        let o = run(&cfg);
        assert_recovery_conservation(&o);
        prop_assert!(o.retried > 0, "aggressive deadlines must force retries");
        prop_assert!(
            o.completed as u64 <= o.dispatched,
            "dedup: more completions than offered requests"
        );
    }

    /// The full recovery machinery stays deterministic: equal seeds
    /// give bit-identical counters and energies, retries, hedges and
    /// crash logs included.
    #[test]
    fn recovery_engine_is_deterministic(seed in 0u64..1000) {
        let mk = || {
            let mut cfg = small_config(3, seed);
            cfg.faults = FaultConfig {
                seed: seed ^ 0xFEED,
                node_slowdown_hz: 3.0,
                node_slowdown_factor: 0.3,
                node_slowdown_len: SimDuration::from_millis(120),
                node_crash_hz: 2.0,
                node_crash_len: SimDuration::from_millis(100),
                node_warmup_len: SimDuration::from_millis(60),
                tag_loss: 0.02,
                tag_corrupt: 0.02,
                ..FaultConfig::none()
            };
            cfg.recovery = Some(RecoveryConfig {
                hedge_after: Some(SimDuration::from_millis(30)),
                min_timeout: SimDuration::from_millis(40),
                ..RecoveryConfig::standard()
            });
            cfg.admission = Some(AdmissionConfig::standard());
            cfg
        };
        let (a, b) = (run(&mk()), run(&mk()));
        prop_assert_eq!(a.dispatched, b.dispatched);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.shed, b.shed);
        prop_assert_eq!(a.lost_in_crash, b.lost_in_crash);
        prop_assert_eq!(a.retried, b.retried);
        prop_assert_eq!(a.hedged, b.hedged);
        prop_assert_eq!(a.stale_replies, b.stale_replies);
        prop_assert_eq!(a.crashes, b.crashes);
        prop_assert_eq!(a.checkpoints, b.checkpoints);
        prop_assert_eq!(a.in_flight, b.in_flight);
        for (x, y) in a.crash_log.iter().zip(&b.crash_log) {
            prop_assert_eq!(x.node, y.node);
            prop_assert_eq!(x.at, y.at);
            prop_assert_eq!(x.lost_requests, y.lost_requests);
            prop_assert!(x.lost_energy_j == y.lost_energy_j, "loss windows must match bit-for-bit");
        }
        for (x, y) in a.per_node.iter().zip(&b.per_node) {
            prop_assert_eq!(x.dispatched, y.dispatched);
            prop_assert_eq!(x.lost_requests, y.lost_requests);
            prop_assert!(x.active_energy_j == y.active_energy_j);
            prop_assert!(x.attributed_energy_j == y.attributed_energy_j);
        }
    }
}

/// Crash-free configurations plan no crash windows and pay none of the
/// recovery machinery: no checkpoints, no crash records, no retries.
#[test]
fn clean_run_has_no_recovery_artifacts() {
    let cfg = small_config(3, 42);
    let o = run(&cfg);
    assert_eq!(o.crashes, 0);
    assert_eq!(o.checkpoints, 0);
    assert!(o.crash_log.is_empty());
    assert_eq!(o.retried, 0);
    assert_eq!(o.hedged, 0);
    assert_eq!(o.stale_replies, 0);
    assert_eq!(o.lost_in_crash, 0);
    assert_eq!(o.total_shed(), o.dropped);
    assert_eq!(o.dropped, 0, "a clean small run must not drop");
}
