//! Cross-node tag propagation through the serving pipeline (§3.4).
//!
//! A request's power-container tag rides the socket messages from the
//! dispatcher through every tier; each hop forwards the identity *as
//! observed on the wire*. These tests pin the three regimes: with no
//! faults the tag survives the full pipeline and every stage's energy
//! lands on the request; under total tag loss the requests themselves
//! still flow (routing is serial-based) but the energy falls out of the
//! per-request accounting; under total corruption the tags arrive
//! scrambled and the true identities collect (almost) nothing.

use cluster::{run_pipeline, ClusterConfig, ClusterOutcome, DistributionPolicy, SimpleBalance, Topology};
use hwsim::FaultConfig;
use simkern::SimDuration;
use workloads::{calibrate_machine, MachineCalibration};

fn pipeline_config(faults: FaultConfig) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(3));
    cfg.duration = SimDuration::from_secs(2);
    cfg.workers_per_core = 2;
    cfg.retain_request_energy = true;
    cfg.faults = faults;
    cfg
}

fn run(cfg: &ClusterConfig) -> ClusterOutcome {
    let cals: Vec<MachineCalibration> =
        cfg.nodes.iter().map(|s| calibrate_machine(s, 7)).collect();
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    run_pipeline(&mut policies, cfg, &cals)
}

fn total_app_energy(o: &ClusterOutcome) -> f64 {
    o.energy_by_app_j.iter().map(|(_, e)| e).sum()
}

#[test]
fn tags_cross_node_boundaries_when_transit_is_clean() {
    let o = run(&pipeline_config(FaultConfig::none()));
    assert_eq!(o.tags_lost, 0);
    assert_eq!(o.tags_corrupted, 0);
    assert!(o.completed > 200, "pipeline should serve load, got {}", o.completed);
    assert!(total_app_energy(&o) > 1.0, "clean tags must attribute energy");
    // Every completed request visited all three tiers under its own tag,
    // so its energy is spread over multiple nodes.
    let multi_node = o.energy_by_ctx.iter().filter(|c| c.nodes >= 2).count();
    assert!(
        multi_node * 2 > o.energy_by_ctx.len(),
        "most requests should carry energy on >= 2 nodes ({multi_node} of {})",
        o.energy_by_ctx.len()
    );
    assert!(
        o.energy_by_ctx.iter().any(|c| c.nodes == 3),
        "some requests should be attributed on every tier"
    );
}

#[test]
fn tag_loss_breaks_attribution_but_not_request_flow() {
    let clean = run(&pipeline_config(FaultConfig::none()));
    let lossy = run(&pipeline_config(FaultConfig {
        seed: 99,
        tag_loss: 1.0,
        ..FaultConfig::none()
    }));
    assert!(lossy.tags_lost > 0, "every tagged delivery should drop its tag");
    assert_eq!(lossy.tags_corrupted, 0);
    // Requests still complete: the pipeline routes on the message serial,
    // not the tag — losing attribution must not lose work.
    assert!(
        lossy.completed as f64 > 0.7 * clean.completed as f64,
        "request flow should survive total tag loss ({} vs {} clean)",
        lossy.completed,
        clean.completed
    );
    // But the energy accounting collapses: no stage runs under the
    // request's identity any more.
    assert!(
        total_app_energy(&lossy) < 0.2 * total_app_energy(&clean),
        "lost tags must drop energy out of the per-app accounting ({:.2} J vs {:.2} J clean)",
        total_app_energy(&lossy),
        total_app_energy(&clean)
    );
}

#[test]
fn tag_corruption_misattributes_without_losing_requests() {
    let clean = run(&pipeline_config(FaultConfig::none()));
    let corrupt = run(&pipeline_config(FaultConfig {
        seed: 99,
        tag_corrupt: 1.0,
        ..FaultConfig::none()
    }));
    assert!(corrupt.tags_corrupted > 0);
    assert_eq!(corrupt.tags_lost, 0);
    assert!(
        corrupt.completed as f64 > 0.7 * clean.completed as f64,
        "request flow should survive total corruption ({} vs {} clean)",
        corrupt.completed,
        clean.completed
    );
    // Corrupted identities are scrambled 64-bit values that (all but
    // never) collide with a real dispatch context, so the true
    // identities accumulate almost nothing.
    assert!(
        total_app_energy(&corrupt) < 0.2 * total_app_energy(&clean),
        "corrupted tags must divert energy away from the true identities"
    );
}
