//! Property tests for the observability-plane aggregators.
//!
//! The byte-stability contract is exactly as strong as the merges the
//! system performs: quantile sketches merge by integer bucket addition,
//! so *any* partition and *any* merge grouping must encode
//! byte-identically to a serial build; rollups are either built on a
//! single driving thread or merged across disjoint time cells (the
//! `pc-obs report` multi-file fold), where cell insertion is exact.
//! An arbitrary sample-level split of one rollup cell would reorder
//! float additions — which is precisely why the engine never does it.

use proptest::prelude::*;
use telemetry::obs::{
    BurnRateMonitor, ObsReport, QuantileSketch, Rollup, SloRules, WindowSample,
};

/// Splits `vals` into non-empty chunks at the (deduped, sorted) cut
/// points, mimicking an arbitrary shard partition of one node list.
fn chunks_at<T: Clone>(vals: &[T], cuts: &[usize]) -> Vec<Vec<T>> {
    let mut idx: Vec<usize> = cuts.iter().map(|c| c % vals.len().max(1)).collect();
    idx.push(0);
    idx.push(vals.len());
    idx.sort_unstable();
    idx.dedup();
    idx.windows(2).map(|w| vals[w[0]..w[1]].to_vec()).collect()
}

/// A report holding one sketch over `vals` — the byte-stability oracle
/// sketch merges are compared against.
fn sketch_report_of(vals: &[f64]) -> ObsReport {
    let mut r = ObsReport::new(250_000_000, 4_000_000_000);
    for &v in vals {
        r.sketch("latency_s/fleet").observe(v);
    }
    r
}

/// Folds per-chunk reports left-to-right (the production shard merge:
/// node order).
fn fold_left(chunks: &[Vec<f64>]) -> ObsReport {
    let mut acc = ObsReport::new(250_000_000, 4_000_000_000);
    for c in chunks {
        acc.merge(&sketch_report_of(c));
    }
    acc
}

/// Folds per-chunk reports pairwise (a balanced tree merge — a merge
/// topology the production code never uses, which is the point).
fn fold_tree(chunks: &[Vec<f64>]) -> ObsReport {
    let mut layer: Vec<ObsReport> = chunks.iter().map(|c| sketch_report_of(c)).collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                let mut a = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    a.merge(b);
                }
                a
            })
            .collect();
    }
    layer.pop().unwrap_or_else(|| ObsReport::new(250_000_000, 4_000_000_000))
}

/// A plausible window-sample stream: energy and completion counts with
/// occasional idle windows, under an optional cap.
fn window_stream() -> impl Strategy<Value = Vec<WindowSample>> {
    prop::collection::vec(
        (0.0f64..200.0, 0.0f64..200.0, 0u64..300, any::<bool>(), 50.0f64..150.0),
        1..60,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (active_j, attributed_j, completed, capped, cap))| WindowSample {
                end_ns: (i as u64 + 1) * 250_000_000,
                active_j,
                attributed_j,
                completed,
                cap_w: capped.then_some(cap),
            })
            .collect()
    })
}

fn rules_strategy() -> impl Strategy<Value = SloRules> {
    (0.01f64..0.2, 1.1f64..3.0, 0u32..6, 0.05f64..0.5, 1u32..4, 1u32..4).prop_map(
        |(cap_headroom_frac, regression_mult, baseline_windows, residual_frac, fire_after, clear_after)| {
            SloRules {
                cap_headroom_frac,
                regression_mult,
                baseline_windows,
                residual_frac,
                fire_after,
                clear_after,
            }
        },
    )
}

proptest! {
    /// Any partition of a sample stream, merged in node order or as a
    /// balanced tree, encodes byte-identically to the serial sketch —
    /// the integer-bucket property the intra-cell shard merge relies
    /// on.
    #[test]
    fn sketch_merge_is_associative_and_matches_serial(
        vals in prop::collection::vec(-2.0f64..1000.0, 1..150),
        cuts in prop::collection::vec(0usize..150, 0..6),
    ) {
        let serial = sketch_report_of(&vals).to_json();
        let chunks = chunks_at(&vals, &cuts);
        prop_assert_eq!(&fold_left(&chunks).to_json(), &serial);
        prop_assert_eq!(&fold_tree(&chunks).to_json(), &serial);
    }

    /// Rollups merged across *time-disjoint* shards (each cell owned by
    /// exactly one side, the `pc-obs` multi-report fold) are
    /// byte-identical to a serial build under any grouping; an
    /// arbitrary sample-level split still agrees exactly on counts and
    /// min/max and within float tolerance on sums.
    #[test]
    fn rollup_merge_is_exact_on_disjoint_cells(
        samples in prop::collection::vec((0u64..4_000_000_000, -2.0f64..1000.0), 1..150),
        lanes in 2usize..5,
        cuts in prop::collection::vec(0usize..150, 0..6),
    ) {
        let mut serial = Rollup::new(250_000_000);
        for &(t, v) in &samples {
            serial.observe(t, v);
        }
        // Time-disjoint partition: each lane owns whole buckets.
        let mut shards = vec![Rollup::new(250_000_000); lanes];
        for &(t, v) in &samples {
            shards[(t / 250_000_000) as usize % lanes].observe(t, v);
        }
        let mut node_order = Rollup::new(250_000_000);
        for s in &shards {
            node_order.merge(s);
        }
        let mut reversed = Rollup::new(250_000_000);
        for s in shards.iter().rev() {
            reversed.merge(s);
        }
        prop_assert_eq!(&node_order, &serial);
        prop_assert_eq!(&reversed, &serial);

        // Arbitrary split: semantics agree, bytes need not.
        let mut folded = Rollup::new(250_000_000);
        for chunk in chunks_at(&samples, &cuts) {
            let mut shard = Rollup::new(250_000_000);
            for (t, v) in chunk {
                shard.observe(t, v);
            }
            folded.merge(&shard);
        }
        prop_assert_eq!(folded.len(), serial.len());
        prop_assert_eq!(folded.total_count(), serial.total_count());
        for (i, cell) in serial.iter() {
            let f = folded.cell(i).expect("cell present");
            prop_assert_eq!(f.count, cell.count);
            prop_assert_eq!(f.min, cell.min);
            prop_assert_eq!(f.max, cell.max);
            prop_assert!(
                (f.sum - cell.sum).abs() <= 1e-9 * cell.sum.abs().max(1.0),
                "cell {i} sum drifted: {} vs {}", f.sum, cell.sum
            );
        }
    }

    /// Quantile estimates stay within the sketch's advertised relative
    /// error of a true sample value, regardless of input.
    #[test]
    fn sketch_quantiles_bounded_by_relative_error(
        mut vals in prop::collection::vec(1e-6f64..1e6, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut s = QuantileSketch::new();
        for &v in &vals {
            s.observe(v);
        }
        vals.sort_by(f64::total_cmp);
        let rank = (q * (vals.len() - 1) as f64).floor() as usize;
        let exact = vals[rank];
        let est = s.quantile(q);
        // 1% bucket accuracy plus floor-rank discretization slack: the
        // estimate must be within the sketch's error of *some* sample
        // near the rank, so check against the neighbouring values too.
        let lo = vals[rank.saturating_sub(1)].min(exact);
        let hi = vals[(rank + 1).min(vals.len() - 1)].max(exact);
        prop_assert!(
            est >= lo * 0.97 && est <= hi * 1.03,
            "q={q}: estimate {est} outside [{lo}, {hi}] +/- 3%"
        );
    }

    /// The report round-trips through its JSON encoding bit-exactly,
    /// alerts included.
    #[test]
    fn report_round_trips(
        vals in prop::collection::vec(-2.0f64..1000.0, 0..100),
        samples in window_stream(),
        rules in rules_strategy(),
    ) {
        let mut r = sketch_report_of(&vals);
        for (i, s) in samples.iter().enumerate() {
            r.rollup("power_w/fleet").observe(i as u64 * 250_000_000, s.active_j);
        }
        let mut m = BurnRateMonitor::new(rules, 250_000_000);
        for s in &samples {
            m.observe_window(s);
        }
        r.alerts.extend_from_slice(m.alerts());
        let json = r.to_json();
        let back = ObsReport::from_json(&json).expect("round trip");
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(back.to_json(), json);
    }

    /// The alert stream is a pure function of (rules, sample stream):
    /// two monitors fed the same windows agree alert-for-alert, and a
    /// monitor resumed from a mid-stream clone finishes identically.
    #[test]
    fn monitor_is_deterministic_and_resumable(
        samples in window_stream(),
        rules in rules_strategy(),
        split in 0usize..60,
    ) {
        let run = || {
            let mut m = BurnRateMonitor::new(rules, 250_000_000);
            for s in &samples {
                m.observe_window(s);
            }
            m.alerts().to_vec()
        };
        let straight = run();
        prop_assert_eq!(&run(), &straight);

        let split = split % (samples.len() + 1);
        let mut m = BurnRateMonitor::new(rules, 250_000_000);
        for s in &samples[..split] {
            m.observe_window(s);
        }
        let mut resumed = m.clone();
        for s in &samples[split..] {
            resumed.observe_window(s);
        }
        prop_assert_eq!(resumed.alerts().to_vec(), straight);
    }
}
