//! Trace analysis behind the `pc-trace` binary.
//!
//! Works on the JSONL export (the schema-stable format): summarizes a
//! trace into event counts, per-container energy timelines, and degraded
//! intervals, and extracts the trace *schema* — the sorted set of
//! (category, name, phase, argument keys) shapes plus metric kinds —
//! which CI diffs against a committed golden file to catch silent drift.

use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Two `cat:"degrade"` events closer than this merge into one degraded
/// interval (100 ms of simulated time).
pub const DEGRADE_MERGE_GAP_NS: u64 = 100_000_000;

/// Energy accounting for one container, folded from `attr/sample` events.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerEnergy {
    /// Container (context) id; `-1` is the background container.
    pub ctx: i64,
    /// Number of attribution samples that charged this container.
    pub samples: u64,
    /// Sim time of the first sample, nanoseconds.
    pub first_t_ns: u64,
    /// Sim time of the last sample, nanoseconds.
    pub last_t_ns: u64,
    /// Cumulative attributed energy at the last sample, joules.
    pub energy_j: f64,
}

/// A contiguous degraded interval on the sim clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedInterval {
    /// Interval start (first degrade event), nanoseconds.
    pub start_ns: u64,
    /// Interval end (last merged degrade event), nanoseconds.
    pub end_ns: u64,
    /// Number of degrade events merged into this interval.
    pub events: u64,
}

/// Everything `pc-trace summarize` reports about one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total event lines parsed.
    pub total_events: u64,
    /// `(category, name)` → occurrence count, in sorted key order.
    pub event_counts: Vec<(String, String, u64)>,
    /// Per-container energy, in container-id order.
    pub containers: Vec<ContainerEnergy>,
    /// Merged degraded intervals in time order.
    pub degraded: Vec<DegradedInterval>,
    /// Metrics snapshot folded from the metric lines: `(kind, name,
    /// rendered value)` sorted by kind then name. Counters render their
    /// count, gauges their value, histograms `total=N sum=X`.
    pub metrics: Vec<(String, String, String)>,
    /// Metric lines parsed (counters + gauges + histograms).
    pub metric_lines: u64,
    /// Lines that were not valid JSON or had no recognised shape.
    pub unparsed_lines: u64,
    /// Last event timestamp seen, nanoseconds.
    pub span_ns: u64,
}

/// Parses a JSONL trace into a [`TraceSummary`].
pub fn summarize(jsonl: &str) -> TraceSummary {
    let mut out = TraceSummary::default();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut containers: BTreeMap<i64, ContainerEnergy> = BTreeMap::new();
    let mut degrade_times: Vec<u64> = Vec::new();
    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            out.unparsed_lines += 1;
            continue;
        };
        if let Some(kind) = v.get("metric").and_then(Value::as_str) {
            out.metric_lines += 1;
            let name = v.get("name").and_then(Value::as_str).unwrap_or("?");
            let rendered = match kind {
                "counter" => v.get("value").and_then(Value::as_u64).map(|n| n.to_string()),
                "gauge" => v.get("value").and_then(Value::as_f64).map(|x| format!("{x}")),
                "histogram" => {
                    match (
                        v.get("total").and_then(Value::as_u64),
                        v.get("sum").and_then(Value::as_f64),
                    ) {
                        (Some(t), Some(s)) => Some(format!("total={t} sum={s}")),
                        _ => None,
                    }
                }
                _ => None,
            };
            out.metrics.push((
                kind.to_string(),
                name.to_string(),
                rendered.unwrap_or_else(|| "?".to_string()),
            ));
            continue;
        }
        let (Some(t_ns), Some(cat), Some(name)) = (
            v.get("t_ns").and_then(Value::as_u64),
            v.get("cat").and_then(Value::as_str),
            v.get("name").and_then(Value::as_str),
        ) else {
            out.unparsed_lines += 1;
            continue;
        };
        out.total_events += 1;
        out.span_ns = out.span_ns.max(t_ns);
        *counts.entry((cat.to_string(), name.to_string())).or_insert(0) += 1;
        if cat == "degrade" {
            degrade_times.push(t_ns);
        }
        if cat == "attr" && name == "sample" {
            if let Some(args) = v.get("args") {
                let ctx = args.get("ctx").and_then(Value::as_i64).unwrap_or(-1);
                let energy = args.get("energy_j").and_then(Value::as_f64).unwrap_or(0.0);
                let entry = containers.entry(ctx).or_insert(ContainerEnergy {
                    ctx,
                    samples: 0,
                    first_t_ns: t_ns,
                    last_t_ns: t_ns,
                    energy_j: 0.0,
                });
                entry.samples += 1;
                entry.first_t_ns = entry.first_t_ns.min(t_ns);
                entry.last_t_ns = entry.last_t_ns.max(t_ns);
                // Samples arrive in time order per trace, so the last
                // cumulative value is the container's final energy.
                if t_ns >= entry.last_t_ns {
                    entry.energy_j = energy;
                } else {
                    entry.energy_j = entry.energy_j.max(energy);
                }
            }
        }
    }
    out.event_counts = counts.into_iter().map(|((c, n), k)| (c, n, k)).collect();
    out.containers = containers.into_values().collect();
    out.degraded = merge_degraded(&degrade_times);
    out.metrics.sort();
    out
}

/// Merges sorted-or-unsorted degrade timestamps into intervals, joining
/// neighbours closer than [`DEGRADE_MERGE_GAP_NS`].
fn merge_degraded(times: &[u64]) -> Vec<DegradedInterval> {
    let mut times = times.to_vec();
    times.sort_unstable();
    let mut out: Vec<DegradedInterval> = Vec::new();
    for t in times {
        match out.last_mut() {
            Some(iv) if t.saturating_sub(iv.end_ns) <= DEGRADE_MERGE_GAP_NS => {
                iv.end_ns = t;
                iv.events += 1;
            }
            _ => out.push(DegradedInterval { start_ns: t, end_ns: t, events: 1 }),
        }
    }
    out
}

/// Renders a [`TraceSummary`] as the deterministic text `pc-trace
/// summarize` prints.
pub fn render_summary(s: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events, {} metric lines, span {:.3} ms",
        s.total_events,
        s.metric_lines,
        s.span_ns as f64 / 1e6
    );
    if s.unparsed_lines > 0 {
        let _ = writeln!(out, "  ({} unparsed lines)", s.unparsed_lines);
    }
    let _ = writeln!(out, "event counts:");
    for (cat, name, n) in &s.event_counts {
        let _ = writeln!(out, "  {cat:<10} {name:<20} {n:>8}");
    }
    let _ = writeln!(out, "per-container energy timeline:");
    if s.containers.is_empty() {
        let _ = writeln!(out, "  (no attr/sample events)");
    }
    for c in &s.containers {
        let label = if c.ctx < 0 { "background".to_string() } else { format!("ctx {}", c.ctx) };
        let _ = writeln!(
            out,
            "  {label:<12} {:>7} samples  [{:.3} ms .. {:.3} ms]  {:.6} J",
            c.samples,
            c.first_t_ns as f64 / 1e6,
            c.last_t_ns as f64 / 1e6,
            c.energy_j
        );
    }
    let _ = writeln!(out, "degraded intervals:");
    if s.degraded.is_empty() {
        let _ = writeln!(out, "  (none — clean run)");
    }
    for iv in &s.degraded {
        let _ = writeln!(
            out,
            "  [{:.3} ms .. {:.3} ms]  {} event(s)",
            iv.start_ns as f64 / 1e6,
            iv.end_ns as f64 / 1e6,
            iv.events
        );
    }
    let _ = writeln!(out, "metrics snapshot:");
    if s.metrics.is_empty() {
        let _ = writeln!(out, "  (no metric lines)");
    }
    for (kind, name, value) in &s.metrics {
        let _ = writeln!(out, "  {kind:<10} {name:<36} {value}");
    }
    out
}

/// Extracts the trace *schema*: one sorted line per distinct event shape
/// (`event <cat> <name> ph=<P> keys=<k1,k2>`) and per metric
/// (`metric <kind> <name>`). Counts and values are deliberately absent,
/// so the schema is stable across scales, seeds, and fault settings —
/// any diff against the golden file means the instrumentation itself
/// changed shape.
pub fn schema(jsonl: &str) -> String {
    let mut lines: BTreeSet<String> = BTreeSet::new();
    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            lines.insert("unparsed".to_string());
            continue;
        };
        if let Some(kind) = v.get("metric").and_then(Value::as_str) {
            let name = v.get("name").and_then(Value::as_str).unwrap_or("?");
            lines.insert(format!("metric {kind} {name}"));
            continue;
        }
        let cat = v.get("cat").and_then(Value::as_str).unwrap_or("?");
        let name = v.get("name").and_then(Value::as_str).unwrap_or("?");
        let ph = v.get("ph").and_then(Value::as_str).unwrap_or("?");
        let mut keys: Vec<&str> = v
            .get("args")
            .and_then(Value::as_object)
            .map(|o| o.iter().map(|(k, _)| k.as_str()).collect())
            .unwrap_or_default();
        keys.sort_unstable();
        lines.insert(format!("event {cat} {name} ph={ph} keys={}", keys.join(",")));
    }
    let mut out = String::new();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Converts a JSONL trace read from disk into Chrome trace-event JSON.
///
/// For a trace produced by this crate, the output matches what the live
/// [`crate::Telemetry::to_chrome_trace`] would have rendered (metric
/// lines have no Chrome representation and are dropped; float fields
/// re-render through JSON `Display`, which can normalize exponent
/// notation); lines that fail to parse are skipped.
pub fn jsonl_to_chrome(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len() + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        if v.get("metric").is_some() {
            continue;
        }
        let (Some(t_ns), Some(cat), Some(name), Some(ph)) = (
            v.get("t_ns").and_then(Value::as_u64),
            v.get("cat").and_then(Value::as_str),
            v.get("name").and_then(Value::as_str),
            v.get("ph").and_then(Value::as_str),
        ) else {
            continue;
        };
        let track = v.get("track").and_then(Value::as_u64).unwrap_or(0);
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":\"");
        crate::export::escape_into(&mut out, name);
        out.push_str("\",\"cat\":\"");
        crate::export::escape_into(&mut out, cat);
        out.push_str("\",\"ph\":\"");
        // JSONL uses "I" for instants; Chrome wants lowercase "i".
        out.push_str(if ph == "I" { "i" } else { ph });
        out.push_str("\",\"ts\":");
        crate::export::push_ts_micros(&mut out, t_ns);
        let _ = write!(out, ",\"pid\":0,\"tid\":{track}");
        if ph == "I" {
            out.push_str(",\"s\":\"t\"");
        }
        if let Some(args) = v.get("args").filter(|a| a.as_object().is_some_and(|o| !o.is_empty())) {
            let _ = write!(out, ",\"args\":{args}");
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldValue, Telemetry};
    use simkern::SimTime;

    fn sample_trace() -> String {
        let tele = Telemetry::recording();
        let t = SimTime::from_millis;
        for (ms, ctx, e) in [(1, 0i64, 0.5), (2, 1, 0.25), (3, 0, 1.1), (9, -1, 0.05)] {
            tele.instant(
                t(ms),
                "attr",
                "sample",
                &[
                    ("core", FieldValue::U64(0)),
                    ("ctx", FieldValue::I64(ctx)),
                    ("watts", FieldValue::F64(10.0)),
                    ("energy_j", FieldValue::F64(e)),
                ],
            );
        }
        tele.instant(t(50), "degrade", "meter_gap", &[]);
        tele.instant(t(120), "degrade", "refit_rejected", &[("reason", "residual".into())]);
        tele.instant(t(400), "degrade", "meter_gap", &[]);
        tele.add_count("kernel.pmu_irqs", 12);
        tele.to_jsonl()
    }

    #[test]
    fn summarize_folds_containers_and_degrades() {
        let s = summarize(&sample_trace());
        assert_eq!(s.total_events, 7);
        assert_eq!(s.metric_lines, 1);
        assert_eq!(s.unparsed_lines, 0);
        assert_eq!(s.containers.len(), 3);
        let ctx0 = s.containers.iter().find(|c| c.ctx == 0).expect("ctx 0");
        assert_eq!(ctx0.samples, 2);
        assert_eq!(ctx0.energy_j, 1.1);
        assert_eq!(ctx0.first_t_ns, 1_000_000);
        assert_eq!(ctx0.last_t_ns, 3_000_000);
        // 50ms and 120ms merge (70ms gap < 100ms); 400ms stands alone.
        assert_eq!(s.degraded.len(), 2);
        assert_eq!(s.degraded[0].events, 2);
        assert_eq!(s.degraded[1].start_ns, 400_000_000);
    }

    #[test]
    fn render_is_deterministic_and_mentions_everything() {
        let s = summarize(&sample_trace());
        let a = render_summary(&s);
        assert_eq!(a, render_summary(&s));
        assert!(a.contains("background"));
        assert!(a.contains("degraded intervals:"));
        assert!(a.contains("attr"));
        assert!(a.contains("metrics snapshot:"));
        assert!(a.contains("counter    kernel.pmu_irqs"));
    }

    #[test]
    fn metrics_snapshot_covers_all_three_kinds() {
        let tele = Telemetry::recording();
        tele.add_count("z.counter", 7);
        tele.set_gauge("a.gauge", 2.5);
        tele.register_histogram("m.hist", &[1.0, 10.0]);
        tele.observe("m.hist", 3.0);
        tele.observe("m.hist", 0.5);
        let s = summarize(&tele.to_jsonl());
        assert_eq!(s.metric_lines, 3);
        assert_eq!(
            s.metrics,
            vec![
                ("counter".to_string(), "z.counter".to_string(), "7".to_string()),
                ("gauge".to_string(), "a.gauge".to_string(), "2.5".to_string()),
                ("histogram".to_string(), "m.hist".to_string(), "total=2 sum=3.5".to_string()),
            ]
        );
        let rendered = render_summary(&s);
        assert!(rendered.contains("gauge      a.gauge"));
        assert!(rendered.contains("total=2 sum=3.5"));
    }

    #[test]
    fn schema_is_count_free_and_sorted() {
        let sch = schema(&sample_trace());
        assert!(sch.contains("event attr sample ph=I keys=core,ctx,energy_j,watts\n"));
        assert!(sch.contains("event degrade meter_gap ph=I keys=\n"));
        assert!(sch.contains("metric counter kernel.pmu_irqs\n"));
        // Doubling every event must not change the schema.
        let doubled = format!("{}{}", sample_trace(), sample_trace());
        assert_eq!(sch, schema(&doubled));
        let mut sorted: Vec<&str> = sch.lines().collect();
        sorted.sort_unstable();
        assert_eq!(sch.lines().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn jsonl_to_chrome_matches_live_render() {
        let tele = Telemetry::recording();
        tele.begin_span(
            SimTime::from_millis(1),
            "cluster",
            "blackout",
            11,
            &[("node", FieldValue::U64(1))],
        );
        tele.instant(SimTime::from_micros(1500), "align", "scan", &[("score", 0.5f64.into())]);
        tele.end_span(SimTime::from_millis(2), 11);
        tele.counter_sample(SimTime::from_millis(3), "core_power_w", 1, 2.5);
        tele.add_count("kernel.pmu_irqs", 1);
        assert_eq!(jsonl_to_chrome(&tele.to_jsonl()), tele.to_chrome_trace());
    }

    #[test]
    fn garbage_lines_are_counted_not_fatal() {
        let s = summarize("not json\n{\"t_ns\":1}\n");
        assert_eq!(s.unparsed_lines, 2);
        assert_eq!(s.total_events, 0);
    }

    #[test]
    fn empty_trace_summarizes_cleanly() {
        let s = summarize("");
        assert_eq!(s, TraceSummary::default());
        assert!(render_summary(&s).contains("clean run"));
    }
}
