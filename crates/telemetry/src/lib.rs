//! Deterministic telemetry for the Power Containers reproduction.
//!
//! The facility is itself a measurement system, so the meter must be
//! observable: this crate provides the structured tracing layer every
//! simulation crate in the workspace reports into. Three pieces:
//!
//! * [`Telemetry`] — a cheap, cloneable recorder handle. A *disabled*
//!   handle (the default everywhere) reduces every call to one branch on
//!   an `Option`, so instrumented hot paths pay essentially nothing when
//!   tracing is off. An *enabled* handle appends [`Event`]s to a shared
//!   in-memory sink and updates the metrics registry.
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms, snapshotted in sorted order at export time.
//! * Exporters — JSONL (one event per line, schema-stable) and Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`, plus the
//!   [`summary`] module backing the `pc-trace` binary.
//!
//! # Determinism
//!
//! Every record is stamped with the **simulated** clock ([`SimTime`]);
//! no wall-clock value, thread id, pointer, or iteration-order-dependent
//! datum ever enters a record. Floats are rendered with Rust's shortest
//! round-trip formatting. A simulation therefore exports byte-identical
//! traces on every run and at every `--jobs` worker count, matching the
//! harness-wide determinism guarantee.
//!
//! # Example
//!
//! ```
//! use simkern::SimTime;
//! use telemetry::{FieldValue, Telemetry};
//!
//! let tele = Telemetry::recording();
//! tele.register_histogram("attr.watts", &[5.0, 10.0, 20.0, 40.0]);
//! tele.instant(
//!     SimTime::from_millis(1),
//!     "align",
//!     "scan",
//!     &[("score", FieldValue::F64(0.93))],
//! );
//! tele.observe("attr.watts", 12.5);
//! assert_eq!(tele.event_count(), 1);
//! assert!(tele.to_jsonl().contains("\"cat\":\"align\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
pub mod obs;
pub mod summary;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};

use simkern::SimTime;
use std::sync::{Arc, Mutex};

/// A typed value attached to an event field.
///
/// Only deterministic scalar payloads are representable: there is no
/// wall-clock, pointer, or collection variant by design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (`-1` is the conventional "background/none" id).
    I64(i64),
    /// Floating-point value; non-finite values export as JSON `null`.
    F64(f64),
    /// Static string (variant names, reasons).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// The trace-event phase, mirroring the Chrome trace-event format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A point event (`ph: "i"`).
    Instant,
    /// A span opening (`ph: "B"`).
    Begin,
    /// A span closing (`ph: "E"`).
    End,
    /// A counter sample (`ph: "C"`).
    Counter,
}

impl Phase {
    /// The single-letter JSONL code for this phase.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Instant => "I",
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Counter => "C",
        }
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated timestamp, nanoseconds since the simulation origin.
    pub t_ns: u64,
    /// Subsystem category (`"kernel"`, `"attr"`, `"align"`, ...).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// Record phase.
    pub ph: Phase,
    /// Track id: the Perfetto lane this record renders on (0 facility,
    /// 1 kernel, 2 conditioning, `10 + node` for cluster nodes).
    pub track: u32,
    /// Ordered typed payload fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

#[derive(Debug, Default)]
struct Sink {
    events: Vec<Event>,
    metrics: MetricsRegistry,
    /// Per-track stacks of open spans: `(track, name, cat, begin_t_ns)`.
    open_spans: Vec<(u32, &'static str, &'static str, u64)>,
    /// Deepest simultaneous nesting seen on any track (test observability).
    max_depth: usize,
    /// `end_span` calls with no matching open span (always a bug; counted
    /// rather than panicking so the facility never dies on telemetry).
    unmatched_ends: u64,
    /// Unmatched ends broken down by offending track, so span-hygiene
    /// failures can name the lane that produced them.
    unmatched_by_track: std::collections::BTreeMap<u32, u64>,
}

/// A recorder handle.
///
/// Cloning is cheap and every clone reports into the same sink, so one
/// handle can be threaded through kernel, facility, and dispatcher
/// configuration while the experiment keeps a clone to export from. The
/// default handle is disabled.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Mutex<Sink>>>,
}

impl Telemetry {
    /// A disabled recorder: every call is a single branch, nothing is
    /// retained. This is `Default` so configs opt in explicitly.
    pub fn disabled() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A recording handle with an empty sink.
    pub fn recording() -> Telemetry {
        Telemetry { sink: Some(Arc::new(Mutex::new(Sink::default()))) }
    }

    /// `true` when this handle records. Instrumentation sites computing
    /// non-trivial field values should branch on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    #[inline]
    fn with_sink<R>(&self, f: impl FnOnce(&mut Sink) -> R) -> Option<R> {
        let sink = self.sink.as_ref()?;
        let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
        Some(f(&mut guard))
    }

    /// Records a point event.
    pub fn instant(
        &self,
        t: SimTime,
        cat: &'static str,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) {
        self.with_sink(|s| {
            s.events.push(Event {
                t_ns: t.as_nanos(),
                cat,
                name,
                ph: Phase::Instant,
                track: 0,
                fields: fields.to_vec(),
            });
        });
    }

    /// Records a point event on an explicit track.
    pub fn instant_on(
        &self,
        t: SimTime,
        cat: &'static str,
        name: &'static str,
        track: u32,
        fields: &[(&'static str, FieldValue)],
    ) {
        self.with_sink(|s| {
            s.events.push(Event {
                t_ns: t.as_nanos(),
                cat,
                name,
                ph: Phase::Instant,
                track,
                fields: fields.to_vec(),
            });
        });
    }

    /// Opens a span on `track` at simulated time `t`. Spans on the same
    /// track nest strictly: the matching [`Telemetry::end_span`] closes
    /// the innermost open span.
    pub fn begin_span(
        &self,
        t: SimTime,
        cat: &'static str,
        name: &'static str,
        track: u32,
        fields: &[(&'static str, FieldValue)],
    ) {
        self.with_sink(|s| {
            s.events.push(Event {
                t_ns: t.as_nanos(),
                cat,
                name,
                ph: Phase::Begin,
                track,
                fields: fields.to_vec(),
            });
            s.open_spans.push((track, name, cat, t.as_nanos()));
            let depth = s.open_spans.iter().filter(|(tr, ..)| *tr == track).count();
            s.max_depth = s.max_depth.max(depth);
        });
    }

    /// Closes the innermost open span on `track`. An end with no open
    /// span is counted (see [`Telemetry::unmatched_ends`]) and otherwise
    /// ignored; an end timestamp before the begin is clamped to the begin
    /// so exported spans never run backwards on the sim clock.
    pub fn end_span(&self, t: SimTime, track: u32) {
        self.with_sink(|s| {
            let open = s
                .open_spans
                .iter()
                .rposition(|(tr, ..)| *tr == track);
            let Some(i) = open else {
                s.unmatched_ends += 1;
                *s.unmatched_by_track.entry(track).or_insert(0) += 1;
                return;
            };
            let (_, name, cat, begin_ns) = s.open_spans.remove(i);
            s.events.push(Event {
                t_ns: t.as_nanos().max(begin_ns),
                cat,
                name,
                ph: Phase::End,
                track,
                fields: Vec::new(),
            });
        });
    }

    /// Records a counter sample: a Chrome `"C"` event on `track` plus a
    /// gauge update under the same name.
    pub fn counter_sample(&self, t: SimTime, name: &'static str, track: u32, value: f64) {
        self.with_sink(|s| {
            s.events.push(Event {
                t_ns: t.as_nanos(),
                cat: "metric",
                name,
                ph: Phase::Counter,
                track,
                fields: vec![("value", FieldValue::F64(value))],
            });
            s.metrics.set_gauge(name, value);
        });
    }

    /// Adds `delta` to the named registry counter.
    pub fn add_count(&self, name: &'static str, delta: u64) {
        self.with_sink(|s| s.metrics.add_count(name, delta));
    }

    /// Sets the named registry gauge.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        self.with_sink(|s| s.metrics.set_gauge(name, value));
    }

    /// Registers a fixed-bucket histogram with the given upper bounds
    /// (an overflow bucket is added implicitly). Re-registering an
    /// existing name is a no-op, so every subsystem can idempotently
    /// declare the histograms it feeds.
    pub fn register_histogram(&self, name: &'static str, bounds: &[f64]) {
        self.with_sink(|s| s.metrics.register_histogram(name, bounds));
    }

    /// Records `value` into the named histogram (no-op when the name was
    /// never registered).
    pub fn observe(&self, name: &'static str, value: f64) {
        self.with_sink(|s| s.metrics.observe(name, value));
    }

    /// Number of events recorded so far (0 for a disabled handle).
    pub fn event_count(&self) -> usize {
        self.with_sink(|s| s.events.len()).unwrap_or(0)
    }

    /// Number of spans currently open across all tracks.
    pub fn open_spans(&self) -> usize {
        self.with_sink(|s| s.open_spans.len()).unwrap_or(0)
    }

    /// Deepest simultaneous span nesting observed on any single track.
    pub fn max_span_depth(&self) -> usize {
        self.with_sink(|s| s.max_depth).unwrap_or(0)
    }

    /// `end_span` calls that found no matching open span.
    pub fn unmatched_ends(&self) -> u64 {
        self.with_sink(|s| s.unmatched_ends).unwrap_or(0)
    }

    /// Unmatched span ends broken down by track, sorted by track id —
    /// names the offending lane when span hygiene fails.
    pub fn unmatched_ends_by_track(&self) -> Vec<(u32, u64)> {
        self.with_sink(|s| s.unmatched_by_track.iter().map(|(&t, &n)| (t, n)).collect())
            .unwrap_or_default()
    }

    /// Clears all recorded events and metrics (benchmark reuse).
    pub fn reset(&self) {
        self.with_sink(|s| *s = Sink::default());
    }

    /// Takes all events recorded so far out of the sink, leaving
    /// metrics and span bookkeeping in place. Paired with
    /// [`Telemetry::append_events`], this is the shard-merge primitive:
    /// a sharded engine drains each shard-local sink at every tick
    /// barrier and appends in a fixed order, so the merged stream is
    /// byte-identical at any shard count.
    pub fn drain_events(&self) -> Vec<Event> {
        self.with_sink(|s| std::mem::take(&mut s.events)).unwrap_or_default()
    }

    /// Appends pre-recorded events to this sink in the given order.
    pub fn append_events(&self, mut events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        self.with_sink(move |s| s.events.append(&mut events));
    }

    /// Folds another recorder's remaining state into this one: leftover
    /// events (appended in order), the metrics registry (counters add,
    /// gauges overwrite, histograms merge bucket-wise), still-open
    /// spans, and the span-depth/unmatched-end bookkeeping. `other` is
    /// left empty. A disabled handle on either side is a no-op, as is
    /// absorbing a sink into itself.
    pub fn absorb(&self, other: &Telemetry) {
        let (Some(a), Some(b)) = (self.sink.as_ref(), other.sink.as_ref()) else {
            return;
        };
        if Arc::ptr_eq(a, b) {
            return;
        }
        // Lock order is caller-fixed (main sink, then donor); the two
        // Arcs are distinct, so this cannot deadlock against itself.
        let mut dst = a.lock().unwrap_or_else(|e| e.into_inner());
        let mut src = b.lock().unwrap_or_else(|e| e.into_inner());
        dst.events.append(&mut src.events);
        dst.metrics.absorb(&src.metrics);
        dst.open_spans.append(&mut src.open_spans);
        dst.max_depth = dst.max_depth.max(src.max_depth);
        dst.unmatched_ends += src.unmatched_ends;
        for (&track, &n) in &src.unmatched_by_track {
            *dst.unmatched_by_track.entry(track).or_insert(0) += n;
        }
        src.metrics = MetricsRegistry::default();
        src.max_depth = 0;
        src.unmatched_ends = 0;
        src.unmatched_by_track.clear();
    }

    /// A sorted snapshot of the metrics registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with_sink(|s| s.metrics.snapshot()).unwrap_or_default()
    }

    /// Renders the whole trace as JSONL: one event object per line in
    /// record order, followed by one line per metric in sorted order.
    pub fn to_jsonl(&self) -> String {
        self.with_sink(|s| export::to_jsonl(&s.events, &s.metrics.snapshot()))
            .unwrap_or_default()
    }

    /// Renders the trace in Chrome trace-event JSON, loadable in
    /// Perfetto or `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        self.with_sink(|s| export::to_chrome_trace(&s.events))
            .unwrap_or_default()
    }

    /// Writes the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes the Chrome trace rendering to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::SimDuration;

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::disabled();
        tele.instant(SimTime::ZERO, "a", "b", &[]);
        tele.add_count("x", 3);
        tele.observe("h", 1.0);
        assert!(!tele.enabled());
        assert_eq!(tele.event_count(), 0);
        assert!(tele.to_jsonl().is_empty());
    }

    #[test]
    fn clones_share_one_sink() {
        let tele = Telemetry::recording();
        let clone = tele.clone();
        clone.instant(SimTime::from_millis(1), "k", "e", &[("v", 7u64.into())]);
        assert_eq!(tele.event_count(), 1);
    }

    #[test]
    fn spans_nest_per_track_on_the_sim_clock() {
        let tele = Telemetry::recording();
        let t = |ms| SimTime::from_millis(ms);
        tele.begin_span(t(1), "c", "outer", 5, &[]);
        tele.begin_span(t(2), "c", "inner", 5, &[]);
        tele.begin_span(t(2), "c", "other-track", 9, &[]);
        assert_eq!(tele.open_spans(), 3);
        assert_eq!(tele.max_span_depth(), 2);
        tele.end_span(t(3), 5); // closes `inner`
        tele.end_span(t(4), 5); // closes `outer`
        tele.end_span(t(4), 9);
        assert_eq!(tele.open_spans(), 0);
        let jsonl = tele.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // B(outer) B(inner) B(other) E(inner) E(outer) E(other)
        assert!(lines[0].contains("\"name\":\"outer\"") && lines[0].contains("\"ph\":\"B\""));
        assert!(lines[3].contains("\"name\":\"inner\"") && lines[3].contains("\"ph\":\"E\""));
        assert!(lines[4].contains("\"name\":\"outer\"") && lines[4].contains("\"ph\":\"E\""));
    }

    #[test]
    fn unmatched_end_is_counted_not_fatal() {
        let tele = Telemetry::recording();
        tele.end_span(SimTime::from_millis(1), 0);
        assert_eq!(tele.unmatched_ends(), 1);
        assert_eq!(tele.event_count(), 0);
    }

    #[test]
    fn backwards_end_is_clamped_to_begin() {
        let tele = Telemetry::recording();
        let begin = SimTime::from_millis(10);
        tele.begin_span(begin, "c", "s", 0, &[]);
        tele.end_span(SimTime::from_millis(10) - SimDuration::from_millis(5), 0);
        let jsonl = tele.to_jsonl();
        let end_line = jsonl.lines().nth(1).expect("end event");
        assert!(end_line.contains("\"t_ns\":10000000"), "{end_line}");
    }

    #[test]
    fn jsonl_is_schema_stable_and_deterministic() {
        let build = || {
            let tele = Telemetry::recording();
            tele.instant(
                SimTime::from_micros(1500),
                "align",
                "scan",
                &[("delay_ms", FieldValue::F64(12.0)), ("score", FieldValue::F64(0.9))],
            );
            tele.add_count("facility.refits", 2);
            tele.register_histogram("attr.watts", &[1.0, 2.0]);
            tele.observe("attr.watts", 1.5);
            tele.to_jsonl()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains(
            "{\"t_ns\":1500000,\"cat\":\"align\",\"name\":\"scan\",\"ph\":\"I\",\"track\":0,\
             \"args\":{\"delay_ms\":12.0,\"score\":0.9}}"
        ));
        assert!(a.contains("{\"metric\":\"counter\",\"name\":\"facility.refits\",\"value\":2}"));
    }

    #[test]
    fn chrome_trace_is_loadable_json() {
        let tele = Telemetry::recording();
        tele.begin_span(SimTime::from_millis(1), "cluster", "blackout", 11, &[]);
        tele.end_span(SimTime::from_millis(3), 11);
        tele.counter_sample(SimTime::from_millis(2), "core_power_w", 1, 12.5);
        let chrome = tele.to_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert!(events.len() >= 3);
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ph\":\"C\""));
    }

    #[test]
    fn drain_and_append_preserve_order_across_sinks() {
        let node = Telemetry::recording();
        let main = Telemetry::recording();
        node.instant(SimTime::from_millis(1), "k", "a", &[]);
        node.instant(SimTime::from_millis(2), "k", "b", &[]);
        main.instant(SimTime::from_millis(3), "d", "c", &[]);
        main.append_events(node.drain_events());
        assert_eq!(node.event_count(), 0);
        assert_eq!(main.event_count(), 3);
        let jsonl = main.to_jsonl();
        let names: Vec<bool> = ["\"name\":\"c\"", "\"name\":\"a\"", "\"name\":\"b\""]
            .iter()
            .zip(jsonl.lines())
            .map(|(n, l)| l.contains(n))
            .collect();
        assert_eq!(names, vec![true, true, true], "{jsonl}");
    }

    #[test]
    fn absorb_merges_metrics_and_bookkeeping() {
        let main = Telemetry::recording();
        let shard = Telemetry::recording();
        main.add_count("c", 1);
        shard.add_count("c", 2);
        shard.set_gauge("g", 5.0);
        main.register_histogram("h", &[1.0, 2.0]);
        shard.register_histogram("h", &[1.0, 2.0]);
        main.observe("h", 0.5);
        shard.observe("h", 1.5);
        shard.end_span(SimTime::ZERO, 7); // unmatched
        shard.instant(SimTime::from_millis(1), "k", "late", &[]);
        main.absorb(&shard);
        let snap = main.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(5.0));
        let h = snap.histogram("h").expect("merged");
        assert_eq!(h.total, 2);
        assert_eq!(h.counts, vec![1, 1, 0]);
        assert_eq!(main.unmatched_ends(), 1);
        assert_eq!(main.event_count(), 1);
        assert_eq!(shard.event_count(), 0);
        assert_eq!(shard.snapshot().counter("c"), None);
        // Absorbing a handle into itself is a no-op.
        main.absorb(&main.clone());
        assert_eq!(main.snapshot().counter("c"), Some(3));
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let tele = Telemetry::recording();
        tele.instant(SimTime::ZERO, "c", "n", &[("bad", FieldValue::F64(f64::NAN))]);
        assert!(tele.to_jsonl().contains("\"bad\":null"));
    }
}
