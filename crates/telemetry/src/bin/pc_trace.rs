//! Trace inspection CLI for JSONL traces exported by `run_all --trace`.
//!
//! ```text
//! pc-trace summarize <trace.jsonl>...         # event counts, per-container
//!                                             # energy, degraded intervals
//! pc-trace perfetto <trace.jsonl> [-o FILE]   # convert to Chrome trace JSON
//!                                             # (loadable in Perfetto)
//! pc-trace schema <trace.jsonl>... [--check GOLDEN]
//!                                             # print the trace schema, or
//!                                             # diff it against a golden file
//! pc-trace flame <provenance.folded>          # render a per-request energy
//!                                             # provenance flamegraph
//! ```
//!
//! `schema --check` exits 1 on drift — CI runs it against the committed
//! golden file so instrumentation shape changes must be deliberate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use telemetry::summary;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pc-trace summarize <trace.jsonl>...\n  \
         pc-trace perfetto <trace.jsonl> [-o <out.json>]\n  \
         pc-trace schema <trace.jsonl>... [--check <golden.txt>]\n  \
         pc-trace flame <provenance.folded>"
    );
    ExitCode::from(2)
}

fn read(path: &Path) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

fn cmd_summarize(paths: &[PathBuf]) -> ExitCode {
    if paths.is_empty() {
        return usage();
    }
    for path in paths {
        let jsonl = match read(path) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let s = summary::summarize(&jsonl);
        println!("== {} ==", path.display());
        print!("{}", summary::render_summary(&s));
        if s.unparsed_lines > 0 {
            eprintln!("error: {} unparsed line(s) in {}", s.unparsed_lines, path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_perfetto(paths: &[PathBuf], out: Option<&Path>) -> ExitCode {
    let [path] = paths else {
        return usage();
    };
    let jsonl = match read(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let chrome = summary::jsonl_to_chrome(&jsonl);
    match out {
        Some(out) => {
            if let Err(e) = std::fs::write(out, chrome) {
                eprintln!("error: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", out.display());
        }
        None => print!("{chrome}"),
    }
    ExitCode::SUCCESS
}

fn cmd_schema(paths: &[PathBuf], golden: Option<&Path>) -> ExitCode {
    if paths.is_empty() {
        return usage();
    }
    // Union the schema across all inputs so one golden file can cover a
    // whole trace directory.
    let mut merged = String::new();
    for path in paths {
        match read(path) {
            Ok(jsonl) => merged.push_str(&jsonl),
            Err(code) => return code,
        }
    }
    let actual = summary::schema(&merged);
    let Some(golden_path) = golden else {
        print!("{actual}");
        return ExitCode::SUCCESS;
    };
    let expected = match read(golden_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if actual == expected {
        println!("schema ok ({} shapes)", actual.lines().count());
        return ExitCode::SUCCESS;
    }
    eprintln!("error: trace schema drifted from {}", golden_path.display());
    let expected_set: std::collections::BTreeSet<&str> = expected.lines().collect();
    let actual_set: std::collections::BTreeSet<&str> = actual.lines().collect();
    for gone in expected_set.difference(&actual_set) {
        eprintln!("  - {gone}");
    }
    for new in actual_set.difference(&expected_set) {
        eprintln!("  + {new}");
    }
    eprintln!(
        "if the change is deliberate, regenerate the golden file with:\n  \
         pc-trace schema <traces> > {}",
        golden_path.display()
    );
    ExitCode::FAILURE
}

fn cmd_flame(paths: &[PathBuf]) -> ExitCode {
    let [path] = paths else {
        return usage();
    };
    let folded = match read(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    print!("{}", telemetry::obs::render_flame(&folded));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut golden: Option<PathBuf> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "-o" | "--out" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage();
                };
                out = Some(PathBuf::from(v));
                i += 2;
            }
            "--check" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage();
                };
                golden = Some(PathBuf::from(v));
                i += 2;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag `{flag}`");
                return usage();
            }
            path => {
                paths.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    match cmd.as_str() {
        "summarize" => cmd_summarize(&paths),
        "perfetto" => cmd_perfetto(&paths, out.as_deref()),
        "schema" => cmd_schema(&paths, golden.as_deref()),
        "flame" => cmd_flame(&paths),
        _ => usage(),
    }
}
