//! Observability-report CLI for `.obs.json` artifacts exported by
//! `run_all --obs` (one [`telemetry::obs::ObsReport`] JSON line each).
//!
//! ```text
//! pc-obs report <obs.json>...            # merged human-readable report
//! pc-obs query <key> <obs.json>...       # one sketch (quantiles) or one
//!                                        # series (per-window cells)
//! pc-obs query <key> ... --q 0.5,0.999   # custom quantile list
//! pc-obs alerts <obs.json>...            # typed alert stream, time order
//! pc-obs alerts ... --fail-on-alert      # exit 1 if any alert fired
//! ```
//!
//! Multiple input files merge key-wise (shard/cell artifacts fold into
//! one fleet view), and every output is byte-deterministic for a given
//! input set — `ci/obs_report.golden` pins the `report` rendering.

use std::path::PathBuf;
use std::process::ExitCode;
use telemetry::obs::ObsReport;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pc-obs report <obs.json>...\n  \
         pc-obs query <key> <obs.json>... [--q 0.5,0.9,0.99]\n  \
         pc-obs alerts <obs.json>... [--fail-on-alert]"
    );
    ExitCode::from(2)
}

fn load_merged(paths: &[PathBuf]) -> Result<ObsReport, ExitCode> {
    if paths.is_empty() {
        return Err(usage());
    }
    let mut merged: Option<ObsReport> = None;
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        let report = ObsReport::from_json(&text).map_err(|e| {
            eprintln!("error: {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        match merged.as_mut() {
            Some(m) => m.merge(&report),
            None => merged = Some(report),
        }
    }
    Ok(merged.expect("at least one path"))
}

fn cmd_report(paths: &[PathBuf]) -> ExitCode {
    match load_merged(paths) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn cmd_query(key: &str, paths: &[PathBuf], quantiles: &[f64]) -> ExitCode {
    let report = match load_merged(paths) {
        Ok(r) => r,
        Err(code) => return code,
    };
    if let Some(s) = report.sketches.get(key) {
        println!("sketch {key}: n={} mean={:.6} min={:.6} max={:.6}", s.count(), s.mean(), s.min(), s.max());
        for &q in quantiles {
            println!("  p{:<6} {:.6}", q * 100.0, s.quantile(q));
        }
        return ExitCode::SUCCESS;
    }
    if let Some(r) = report.series.get(key) {
        println!("series {key}: cells={} window={} ms", r.len(), r.bucket_ns() / 1_000_000);
        for (i, c) in r.iter() {
            let t_ms = (i * r.bucket_ns()) as f64 / 1e6;
            let mean = if c.count == 0 { 0.0 } else { c.sum / c.count as f64 };
            println!(
                "  [{t_ms:>10.1} ms] n={:<6} mean={mean:.6} min={:.6} max={:.6}",
                c.count, c.min, c.max
            );
        }
        return ExitCode::SUCCESS;
    }
    eprintln!("error: no sketch or series named `{key}`; available keys:");
    for k in report.sketches.keys() {
        eprintln!("  sketch {k}");
    }
    for k in report.series.keys() {
        eprintln!("  series {k}");
    }
    ExitCode::FAILURE
}

fn cmd_alerts(paths: &[PathBuf], fail_on_alert: bool) -> ExitCode {
    let report = match load_merged(paths) {
        Ok(r) => r,
        Err(code) => return code,
    };
    println!("{} alert(s)", report.alerts.len());
    for a in &report.alerts {
        println!(
            "  [{}] t={:.3}s window={} value={:.4} threshold={:.4}",
            a.kind.name(),
            a.t_ns as f64 / 1e9,
            a.window,
            a.value,
            a.threshold
        );
    }
    if fail_on_alert && !report.alerts.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_quantiles(spec: &str) -> Option<Vec<f64>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let q: f64 = part.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        out.push(q);
    }
    Some(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let mut positional: Vec<String> = Vec::new();
    let mut quantiles = vec![0.50, 0.90, 0.99];
    let mut fail_on_alert = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--q" => {
                let Some(spec) = rest.get(i + 1) else {
                    return usage();
                };
                let Some(qs) = parse_quantiles(spec) else {
                    eprintln!("error: bad quantile list `{spec}` (want e.g. 0.5,0.9,0.99)");
                    return usage();
                };
                quantiles = qs;
                i += 2;
            }
            "--fail-on-alert" => {
                fail_on_alert = true;
                i += 1;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag `{flag}`");
                return usage();
            }
            p => {
                positional.push(p.to_string());
                i += 1;
            }
        }
    }
    let as_paths = |items: &[String]| items.iter().map(PathBuf::from).collect::<Vec<_>>();
    match cmd.as_str() {
        "report" => cmd_report(&as_paths(&positional)),
        "query" => {
            let [key, files @ ..] = positional.as_slice() else {
                return usage();
            };
            if files.is_empty() {
                return usage();
            }
            cmd_query(key, &as_paths(files), &quantiles)
        }
        "alerts" => cmd_alerts(&as_paths(&positional), fail_on_alert),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::parse_quantiles;

    #[test]
    fn quantile_specs_parse_and_validate() {
        assert_eq!(parse_quantiles("0.5,0.99"), Some(vec![0.5, 0.99]));
        assert_eq!(parse_quantiles(" 0.1 , 1.0 "), Some(vec![0.1, 1.0]));
        assert_eq!(parse_quantiles("1.5"), None);
        assert_eq!(parse_quantiles("p99"), None);
    }
}
