//! Always-on observability plane: bounded-memory streaming aggregators,
//! an energy-SLO burn-rate monitor, and per-request energy provenance.
//!
//! Unlike the retain-everything JSONL trace pipeline (which cannot be
//! left on at megafleet scale), everything here is *bounded*: a
//! [`QuantileSketch`] holds a few hundred log-spaced buckets regardless
//! of how many samples it absorbs, a [`Rollup`] holds one cell per
//! time bucket regardless of request volume, and the
//! [`BurnRateMonitor`] holds a handful of counters per rule. All state
//! is keyed by the simulated clock and merges deterministically:
//! merging shard-local aggregators in node order yields byte-identical
//! output at any shard or job count.
//!
//! The aggregate artifact is an [`ObsReport`] — a byte-stable JSON
//! document of named sketches, named time series and typed alerts —
//! queried by the `pc-obs` CLI (`report` / `query` / `alerts`).

use crate::export::{escape_into, push_f64};
use std::collections::BTreeMap;

/// Hard clamp on sketch bucket indices: at the default 1 % relative
/// accuracy this spans roughly `1e-17 ..= 1e17`, far beyond any joule,
/// second or watt value the simulation produces, while bounding the
/// sketch to at most `2 * MAX_BUCKET_INDEX + 1` buckets.
const MAX_BUCKET_INDEX: i32 = 2000;

/// Dense bucket slots: every index in `-MAX..=MAX` has one.
const BUCKET_SLOTS: usize = 2 * MAX_BUCKET_INDEX as usize + 1;

/// A deterministic, mergeable quantile sketch over positive values
/// (DDSketch-style relative-error log buckets).
///
/// Values land in geometric buckets `gamma^(i-1) < v <= gamma^i` with
/// `gamma = (1 + alpha) / (1 - alpha)`, so any quantile estimate is
/// within relative error `alpha` of a true sample value. Buckets live
/// in one dense clamped array (allocated on the first positive sample;
/// the array *is* the memory bound), so the per-sample hot path is a
/// single indexed increment. Bucket counts add under
/// [`QuantileSketch::merge`], and merging is associative and
/// commutative — the property the intra-cell shard merge relies on for
/// byte-identical reports. Non-finite samples are dropped; zero and
/// negative samples are counted in a dedicated zero bucket.
#[derive(Clone)]
pub struct QuantileSketch {
    /// Relative-accuracy parameter (bucket width).
    alpha: f64,
    /// ln(gamma), cached for index arithmetic.
    gamma_ln: f64,
    /// Dense bucket counts; slot `s` holds index `s - MAX_BUCKET_INDEX`.
    /// Empty until the first positive sample.
    buckets: Vec<u64>,
    /// Number of non-zero bucket slots.
    live: usize,
    /// Samples `<= 0.0` (quantile value 0).
    zero: u64,
    /// Total samples absorbed (including the zero bucket).
    total: u64,
    /// Smallest absorbed sample (0 until the first sample).
    min: f64,
    /// Largest absorbed sample.
    max: f64,
}

// The sketch deliberately carries no exact floating-point running sum:
// float addition is not associative, so an exact sum would depend on
// merge grouping and break the "merged shards are byte-identical to a
// serial build" guarantee. Sums and means are instead derived from the
// bucket state (within the sketch's relative error), which merges by
// integer addition and is therefore associative, commutative, and
// byte-stable under any merge topology.

impl QuantileSketch {
    /// A sketch with the default 1 % relative accuracy.
    pub fn new() -> QuantileSketch {
        QuantileSketch::with_relative_error(0.01)
    }

    /// A sketch whose quantile estimates are within relative error
    /// `alpha` (clamped to `0.001..=0.2`) of a true sample value.
    pub fn with_relative_error(alpha: f64) -> QuantileSketch {
        let alpha = alpha.clamp(0.001, 0.2);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma_ln: gamma.ln(),
            buckets: Vec::new(),
            live: 0,
            zero: 0,
            total: 0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Non-empty buckets as `(index, count)` pairs in index order — the
    /// canonical sparse view every read path (encode, quantile, sum,
    /// equality) is defined over.
    fn iter_buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| (s as i32 - MAX_BUCKET_INDEX, c))
    }

    fn bucket_index(&self, v: f64) -> i32 {
        let i = (v.ln() / self.gamma_ln).ceil();
        (i as i32).clamp(-MAX_BUCKET_INDEX, MAX_BUCKET_INDEX)
    }

    /// Representative value of bucket `i` (the bucket's geometric
    /// midpoint).
    fn bucket_value(&self, i: i32) -> f64 {
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        gamma.powi(i) * 2.0 / (1.0 + gamma)
    }

    /// Absorbs one sample. NaN/infinite samples are dropped.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += 1;
        if v <= 0.0 {
            self.zero += 1;
        } else {
            if self.buckets.is_empty() {
                self.buckets = vec![0; BUCKET_SLOTS];
            }
            let slot = (self.bucket_index(v) + MAX_BUCKET_INDEX) as usize;
            if self.buckets[slot] == 0 {
                self.live += 1;
            }
            self.buckets[slot] += 1;
        }
    }

    /// Folds another sketch into this one (bucket-wise count addition).
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different `alpha` — a
    /// merge across accuracies has no meaningful result.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.alpha, other.alpha,
            "cannot merge sketches of different relative accuracy"
        );
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.zero += other.zero;
        if other.live > 0 {
            if self.buckets.is_empty() {
                self.buckets = vec![0; BUCKET_SLOTS];
            }
            for (slot, &c) in other.buckets.iter().enumerate() {
                if c > 0 {
                    if self.buckets[slot] == 0 {
                        self.live += 1;
                    }
                    self.buckets[slot] += c;
                }
            }
        }
    }

    /// The estimated `q`-quantile (`q` clamped to `0.0..=1.0`), or 0 for
    /// an empty sketch. Estimates for positive samples are within
    /// relative error `alpha` of a true sample value.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.total - 1) as f64).floor() as u64;
        if rank < self.zero {
            return 0.0;
        }
        let mut seen = self.zero;
        for (i, c) in self.iter_buckets() {
            seen += c;
            if seen > rank {
                return self.bucket_value(i);
            }
        }
        self.max
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of absorbed samples, reconstructed from the bucket state
    /// (within relative error `alpha` for positive samples; zero-bucket
    /// samples contribute 0). Derived rather than stored so the sketch
    /// stays associative under merge (see the note on the struct).
    pub fn sum(&self) -> f64 {
        self.iter_buckets().map(|(i, c)| c as f64 * self.bucket_value(i)).sum()
    }

    /// Mean of absorbed samples (0 when empty), within relative error
    /// `alpha`.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum() / self.total as f64
        }
    }

    /// Smallest absorbed sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest absorbed sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of live (non-empty) buckets.
    pub fn bucket_count(&self) -> usize {
        self.live
    }

    fn encode_into(&self, out: &mut String) {
        out.push_str("{\"alpha\":");
        push_f64(out, self.alpha);
        out.push_str(",\"zero\":");
        out.push_str(&self.zero.to_string());
        out.push_str(",\"total\":");
        out.push_str(&self.total.to_string());
        out.push_str(",\"min\":");
        push_f64(out, self.min);
        out.push_str(",\"max\":");
        push_f64(out, self.max);
        out.push_str(",\"buckets\":[");
        for (n, (i, c)) in self.iter_buckets().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&i.to_string());
            out.push(',');
            out.push_str(&c.to_string());
            out.push(']');
        }
        out.push_str("]}");
    }

    fn decode(v: &serde_json::Value) -> Result<QuantileSketch, String> {
        let alpha = f64_field(v, "alpha")?;
        let mut s = QuantileSketch::with_relative_error(alpha);
        s.zero = u64_field(v, "zero")?;
        s.total = u64_field(v, "total")?;
        s.min = f64_field(v, "min")?;
        s.max = f64_field(v, "max")?;
        let buckets = v
            .get("buckets")
            .and_then(|b| b.as_array())
            .ok_or("sketch missing buckets")?;
        for pair in buckets {
            let p = pair.as_array().filter(|p| p.len() == 2).ok_or("bad bucket pair")?;
            let i = p[0].as_i64().ok_or("bad bucket index")? as i32;
            let c = p[1].as_u64().ok_or("bad bucket count")?;
            if !(-MAX_BUCKET_INDEX..=MAX_BUCKET_INDEX).contains(&i) {
                return Err(format!("bucket index {i} out of range"));
            }
            if c > 0 {
                if s.buckets.is_empty() {
                    s.buckets = vec![0; BUCKET_SLOTS];
                }
                let slot = (i + MAX_BUCKET_INDEX) as usize;
                if s.buckets[slot] == 0 {
                    s.live += 1;
                }
                s.buckets[slot] += c;
            }
        }
        Ok(s)
    }
}

// Equality and debug formatting go through the sparse view: a sketch
// that never saw a positive sample (no bucket array) equals one whose
// array is allocated but all-zero, and failure output stays readable
// instead of dumping 4001 dense slots.
impl PartialEq for QuantileSketch {
    fn eq(&self, other: &QuantileSketch) -> bool {
        self.alpha == other.alpha
            && self.zero == other.zero
            && self.total == other.total
            && self.min == other.min
            && self.max == other.max
            && self.iter_buckets().eq(other.iter_buckets())
    }
}

impl std::fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("alpha", &self.alpha)
            .field("zero", &self.zero)
            .field("total", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("buckets", &self.iter_buckets().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

/// One time bucket of a [`Rollup`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollupCell {
    /// Samples absorbed in this bucket.
    pub count: u64,
    /// Sum of samples in this bucket.
    pub sum: f64,
    /// Smallest sample in this bucket.
    pub min: f64,
    /// Largest sample in this bucket.
    pub max: f64,
}

/// A bounded time-bucketed series: one [`RollupCell`] per elapsed
/// window of simulated time, independent of sample volume. Cells are
/// sparse and merge cell-wise (counts/sums add, min/max fold), so
/// shard-local rollups merged in node order are byte-identical to a
/// serially built rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollup {
    /// Width of one time bucket, nanoseconds of simulated time.
    bucket_ns: u64,
    /// Sparse cells keyed by bucket index (`t_ns / bucket_ns`).
    cells: BTreeMap<u64, RollupCell>,
}

impl Rollup {
    /// An empty rollup with the given bucket width (minimum 1 ns).
    pub fn new(bucket_ns: u64) -> Rollup {
        Rollup { bucket_ns: bucket_ns.max(1), cells: BTreeMap::new() }
    }

    /// Bucket width, nanoseconds.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Absorbs one sample stamped at simulated time `t_ns`. NaN samples
    /// are dropped.
    pub fn observe(&mut self, t_ns: u64, v: f64) {
        if v.is_nan() {
            return;
        }
        let cell = self
            .cells
            .entry(t_ns / self.bucket_ns)
            .or_insert(RollupCell { count: 0, sum: 0.0, min: v, max: v });
        cell.count += 1;
        cell.sum += v;
        cell.min = cell.min.min(v);
        cell.max = cell.max.max(v);
    }

    /// Folds another rollup into this one cell-wise.
    ///
    /// # Panics
    ///
    /// Panics on mismatched bucket widths.
    pub fn merge(&mut self, other: &Rollup) {
        assert_eq!(self.bucket_ns, other.bucket_ns, "cannot merge rollups of different widths");
        for (&i, c) in &other.cells {
            match self.cells.get_mut(&i) {
                Some(mine) => {
                    mine.count += c.count;
                    mine.sum += c.sum;
                    mine.min = mine.min.min(c.min);
                    mine.max = mine.max.max(c.max);
                }
                None => {
                    self.cells.insert(i, *c);
                }
            }
        }
    }

    /// The cell at bucket index `i`, if any sample landed there.
    pub fn cell(&self, i: u64) -> Option<&RollupCell> {
        self.cells.get(&i)
    }

    /// Iterates `(bucket_index, cell)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &RollupCell)> {
        self.cells.iter().map(|(&i, c)| (i, c))
    }

    /// Number of populated cells — the rollup's memory bound.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no sample has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total samples across all cells.
    pub fn total_count(&self) -> u64 {
        self.cells.values().map(|c| c.count).sum()
    }

    /// Sum over all cells.
    pub fn total_sum(&self) -> f64 {
        self.cells.values().map(|c| c.sum).sum()
    }

    fn encode_into(&self, out: &mut String) {
        out.push_str("{\"bucket_ns\":");
        out.push_str(&self.bucket_ns.to_string());
        out.push_str(",\"cells\":[");
        for (n, (&i, c)) in self.cells.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&i.to_string());
            out.push(',');
            out.push_str(&c.count.to_string());
            out.push(',');
            push_f64(out, c.sum);
            out.push(',');
            push_f64(out, c.min);
            out.push(',');
            push_f64(out, c.max);
            out.push(']');
        }
        out.push_str("]}");
    }

    fn decode(v: &serde_json::Value) -> Result<Rollup, String> {
        let mut r = Rollup::new(u64_field(v, "bucket_ns")?);
        let cells = v
            .get("cells")
            .and_then(|c| c.as_array())
            .ok_or("rollup missing cells")?;
        for cell in cells {
            let c = cell.as_array().filter(|c| c.len() == 5).ok_or("bad rollup cell")?;
            let i = c[0].as_u64().ok_or("bad cell index")?;
            r.cells.insert(
                i,
                RollupCell {
                    count: c[1].as_u64().ok_or("bad cell count")?,
                    sum: c[2].as_f64().ok_or("bad cell sum")?,
                    min: c[3].as_f64().ok_or("bad cell min")?,
                    max: c[4].as_f64().ok_or("bad cell max")?,
                },
            );
        }
        Ok(r)
    }
}

/// The typed energy-SLO alert classes the burn-rate monitor can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Fleet power rode within the configured headroom fraction of its
    /// cap for consecutive windows — the cap budget is burning down.
    CapBurn,
    /// Attributed joules per completed request regressed past the
    /// configured multiple of the baseline window.
    EnergyRegression,
    /// The gap between measured active energy and attributed energy
    /// exceeded the configured fraction — attribution is losing joules.
    ResidualAnomaly,
}

impl AlertKind {
    /// Every alert kind, in a fixed order (indexable by
    /// [`AlertKind::index`]).
    pub const ALL: [AlertKind; 3] =
        [AlertKind::CapBurn, AlertKind::EnergyRegression, AlertKind::ResidualAnomaly];

    /// Stable kebab-case name (used in exports and telemetry events).
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::CapBurn => "cap-burn",
            AlertKind::EnergyRegression => "energy-regression",
            AlertKind::ResidualAnomaly => "residual-anomaly",
        }
    }

    /// Position in [`AlertKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            AlertKind::CapBurn => 0,
            AlertKind::EnergyRegression => 1,
            AlertKind::ResidualAnomaly => 2,
        }
    }

    /// Telemetry counter name for fired alerts of this kind.
    pub fn counter(self) -> &'static str {
        match self {
            AlertKind::CapBurn => "obs.alerts.cap_burn",
            AlertKind::EnergyRegression => "obs.alerts.energy_regression",
            AlertKind::ResidualAnomaly => "obs.alerts.residual_anomaly",
        }
    }

    /// Parses a stable name back into a kind.
    pub fn from_name(name: &str) -> Option<AlertKind> {
        AlertKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// One fired energy-SLO alert, stamped with the simulated time of the
/// window boundary that tripped it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// Simulated time of the closing window boundary, nanoseconds.
    pub t_ns: u64,
    /// Which rule fired.
    pub kind: AlertKind,
    /// The observed value that breached (headroom fraction, J/request
    /// ratio vs baseline, or residual fraction, per kind).
    pub value: f64,
    /// The rule threshold the value breached.
    pub threshold: f64,
    /// Index of the window that completed the breach streak.
    pub window: u64,
}

/// Thresholds and hysteresis for the energy-SLO burn-rate rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRules {
    /// [`AlertKind::CapBurn`] breaches when the fleet's cap headroom
    /// fraction `1 - power/cap` falls below this.
    pub cap_headroom_frac: f64,
    /// [`AlertKind::EnergyRegression`] breaches when windowed attributed
    /// joules per completed request exceed this multiple of the baseline.
    pub regression_mult: f64,
    /// Number of leading windows that form the J/request baseline (and
    /// are exempt from the regression and residual rules while the
    /// attribution pipeline warms up).
    pub baseline_windows: u32,
    /// [`AlertKind::ResidualAnomaly`] breaches when
    /// `|active - attributed| / active` over a window exceeds this.
    pub residual_frac: f64,
    /// Consecutive breaching windows before an alert fires.
    pub fire_after: u32,
    /// Consecutive clean windows before a fired rule re-arms
    /// (hysteresis: a flapping signal cannot re-fire every window).
    pub clear_after: u32,
}

impl SloRules {
    /// Production-shaped defaults: 5 % headroom, 1.5× regression over a
    /// 4-window baseline, 30 % residual, fire after 2, clear after 2.
    pub fn standard() -> SloRules {
        SloRules {
            cap_headroom_frac: 0.05,
            regression_mult: 1.5,
            baseline_windows: 4,
            residual_frac: 0.30,
            fire_after: 2,
            clear_after: 2,
        }
    }
}

impl Default for SloRules {
    fn default() -> SloRules {
        SloRules::standard()
    }
}

/// Fleet-level signals for one completed monitor window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Simulated time of the window's closing boundary, nanoseconds.
    pub end_ns: u64,
    /// Measured active energy drawn fleet-wide in the window, Joules.
    pub active_j: f64,
    /// Energy the facility attributed fleet-wide in the window, Joules.
    pub attributed_j: f64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Fleet power cap, if one is set.
    pub cap_w: Option<f64>,
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    breach_streak: u32,
    clean_streak: u32,
    active: bool,
}

impl RuleState {
    /// Feeds one window's breach verdict; returns `true` when the rule
    /// newly fires.
    fn step(&mut self, breached: bool, fire_after: u32, clear_after: u32) -> bool {
        if breached {
            self.breach_streak += 1;
            self.clean_streak = 0;
            if !self.active && self.breach_streak >= fire_after {
                self.active = true;
                return true;
            }
        } else {
            self.clean_streak += 1;
            self.breach_streak = 0;
            if self.active && self.clean_streak >= clear_after {
                self.active = false;
            }
        }
        false
    }
}

/// Evaluates the energy-SLO burn-rate rules over a stream of window
/// samples, with per-rule hysteresis. Purely deterministic: the alert
/// stream is a function of the rules and the sample stream alone.
#[derive(Debug, Clone)]
pub struct BurnRateMonitor {
    rules: SloRules,
    /// Window width in simulated nanoseconds (converts window energy to
    /// power for the cap rule).
    window_ns: u64,
    windows_seen: u64,
    baseline_attr_j: f64,
    baseline_completed: u64,
    states: [RuleState; 3],
    alerts: Vec<Alert>,
}

impl BurnRateMonitor {
    /// A monitor with the given rules over `window_ns`-wide windows.
    pub fn new(rules: SloRules, window_ns: u64) -> BurnRateMonitor {
        BurnRateMonitor {
            rules,
            window_ns: window_ns.max(1),
            windows_seen: 0,
            baseline_attr_j: 0.0,
            baseline_completed: 0,
            states: [RuleState::default(); 3],
            alerts: Vec::new(),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &SloRules {
        &self.rules
    }

    /// The baseline joules per completed request learned from the
    /// leading windows (0 until any baseline request completes).
    pub fn baseline_j_per_req(&self) -> f64 {
        if self.baseline_completed == 0 {
            0.0
        } else {
            self.baseline_attr_j / self.baseline_completed as f64
        }
    }

    /// Windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Feeds one completed window; returns how many alerts newly fired.
    pub fn observe_window(&mut self, s: &WindowSample) -> usize {
        let window = self.windows_seen;
        self.windows_seen += 1;
        let in_baseline = window < u64::from(self.rules.baseline_windows);
        if in_baseline {
            self.baseline_attr_j += s.attributed_j;
            self.baseline_completed += s.completed;
        }
        let before = self.alerts.len();
        let window_secs = self.window_ns as f64 / 1e9;

        // Rule 1 — cap-headroom exhaustion. Physical (no attribution
        // warm-up), so it runs from window 0.
        if let Some(cap) = s.cap_w.filter(|c| *c > 0.0) {
            let power_w = s.active_j / window_secs;
            let headroom = 1.0 - power_w / cap;
            let breached = headroom < self.rules.cap_headroom_frac;
            if self.states[AlertKind::CapBurn.index()].step(
                breached,
                self.rules.fire_after,
                self.rules.clear_after,
            ) {
                self.alerts.push(Alert {
                    t_ns: s.end_ns,
                    kind: AlertKind::CapBurn,
                    value: headroom,
                    threshold: self.rules.cap_headroom_frac,
                    window,
                });
            }
        }

        // Rule 2 — joules/request regression vs the learned baseline.
        // Windows with no completions carry no per-request signal and
        // leave the streaks untouched.
        if !in_baseline && s.completed > 0 {
            let base = self.baseline_j_per_req();
            if base > 0.0 {
                let j_per_req = s.attributed_j / s.completed as f64;
                let ratio = j_per_req / base;
                let breached = ratio > self.rules.regression_mult;
                if self.states[AlertKind::EnergyRegression.index()].step(
                    breached,
                    self.rules.fire_after,
                    self.rules.clear_after,
                ) {
                    self.alerts.push(Alert {
                        t_ns: s.end_ns,
                        kind: AlertKind::EnergyRegression,
                        value: ratio,
                        threshold: self.rules.regression_mult,
                        window,
                    });
                }
            }
        }

        // Rule 3 — attribution residual anomaly. Skipped during the
        // baseline windows while meter delay and model warm-up settle.
        if !in_baseline && s.active_j > 1e-9 {
            let residual = (s.active_j - s.attributed_j).abs() / s.active_j;
            let breached = residual > self.rules.residual_frac;
            if self.states[AlertKind::ResidualAnomaly.index()].step(
                breached,
                self.rules.fire_after,
                self.rules.clear_after,
            ) {
                self.alerts.push(Alert {
                    t_ns: s.end_ns,
                    kind: AlertKind::ResidualAnomaly,
                    value: residual,
                    threshold: self.rules.residual_frac,
                    window,
                });
            }
        }

        self.alerts.len() - before
    }
}

/// The aggregate observability artifact of one run: named quantile
/// sketches, named time series, and the fired alerts, all byte-stable.
///
/// Key conventions (slash-separated scopes):
/// `latency_s/fleet`, `latency_s/app/<name>`, `latency_s/tenant/<id>`,
/// `energy_per_req_j/fleet`, `energy_per_req_j/app/<name>`,
/// `power_w/fleet`, `headroom/fleet`, `j_per_req/fleet`,
/// `residual/fleet`, `completed/fleet`, `shed/fleet`,
/// `degrade/fleet`, `energy_j/node/<nnnn>`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Monitor/rollup window width, nanoseconds of simulated time.
    pub window_ns: u64,
    /// Simulated duration covered, nanoseconds.
    pub sim_ns: u64,
    /// Named quantile sketches, key-sorted.
    pub sketches: BTreeMap<String, QuantileSketch>,
    /// Named time series, key-sorted.
    pub series: BTreeMap<String, Rollup>,
    /// Fired alerts in firing order.
    pub alerts: Vec<Alert>,
}

impl ObsReport {
    /// An empty report with the given window width.
    pub fn new(window_ns: u64, sim_ns: u64) -> ObsReport {
        ObsReport { window_ns, sim_ns, ..ObsReport::default() }
    }

    /// The sketch at `key`, created empty on first touch.
    pub fn sketch(&mut self, key: &str) -> &mut QuantileSketch {
        self.sketches.entry(key.to_string()).or_default()
    }

    /// The series at `key`, created with the report window on first
    /// touch.
    pub fn rollup(&mut self, key: &str) -> &mut Rollup {
        let w = self.window_ns.max(1);
        self.series.entry(key.to_string()).or_insert_with(|| Rollup::new(w))
    }

    /// Folds another report into this one key-wise (sketches and series
    /// merge; alerts append). Used by the shard merge, where reports
    /// are folded in node order.
    pub fn merge(&mut self, other: &ObsReport) {
        for (k, s) in &other.sketches {
            self.sketches.entry(k.clone()).or_default().merge(s);
        }
        for (k, r) in &other.series {
            self.series
                .entry(k.clone())
                .or_insert_with(|| Rollup::new(r.bucket_ns()))
                .merge(r);
        }
        self.alerts.extend_from_slice(&other.alerts);
    }

    /// Alerts of `kind` fired.
    pub fn alert_count(&self, kind: AlertKind) -> usize {
        self.alerts.iter().filter(|a| a.kind == kind).count()
    }

    /// Byte-stable single-line JSON encoding (the `.obs.json` artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"obs\":1,\"window_ns\":");
        out.push_str(&self.window_ns.to_string());
        out.push_str(",\"sim_ns\":");
        out.push_str(&self.sim_ns.to_string());
        out.push_str(",\"sketches\":[");
        for (n, (k, s)) in self.sketches.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str("{\"key\":\"");
            escape_into(&mut out, k);
            out.push_str("\",\"sketch\":");
            s.encode_into(&mut out);
            out.push('}');
        }
        out.push_str("],\"series\":[");
        for (n, (k, r)) in self.series.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str("{\"key\":\"");
            escape_into(&mut out, k);
            out.push_str("\",\"rollup\":");
            r.encode_into(&mut out);
            out.push('}');
        }
        out.push_str("],\"alerts\":[");
        for (n, a) in self.alerts.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str("{\"t_ns\":");
            out.push_str(&a.t_ns.to_string());
            out.push_str(",\"kind\":\"");
            out.push_str(a.kind.name());
            out.push_str("\",\"value\":");
            push_f64(&mut out, a.value);
            out.push_str(",\"threshold\":");
            push_f64(&mut out, a.threshold);
            out.push_str(",\"window\":");
            out.push_str(&a.window.to_string());
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a report back from its JSON encoding.
    pub fn from_json(text: &str) -> Result<ObsReport, String> {
        let v: serde_json::Value =
            serde_json::from_str(text.trim()).map_err(|e| format!("malformed obs json: {e}"))?;
        if v.get("obs").and_then(|o| o.as_u64()) != Some(1) {
            return Err("not an obs report (missing \"obs\":1 marker)".to_string());
        }
        let mut report = ObsReport::new(u64_field(&v, "window_ns")?, u64_field(&v, "sim_ns")?);
        for entry in v.get("sketches").and_then(|s| s.as_array()).ok_or("missing sketches")? {
            let key = str_field(entry, "key")?;
            let sketch = entry.get("sketch").ok_or("sketch entry missing body")?;
            report.sketches.insert(key, QuantileSketch::decode(sketch)?);
        }
        for entry in v.get("series").and_then(|s| s.as_array()).ok_or("missing series")? {
            let key = str_field(entry, "key")?;
            let rollup = entry.get("rollup").ok_or("series entry missing body")?;
            report.series.insert(key, Rollup::decode(rollup)?);
        }
        for entry in v.get("alerts").and_then(|a| a.as_array()).ok_or("missing alerts")? {
            let kind = AlertKind::from_name(&str_field(entry, "kind")?)
                .ok_or("unknown alert kind")?;
            report.alerts.push(Alert {
                t_ns: u64_field(entry, "t_ns")?,
                kind,
                value: f64_field(entry, "value")?,
                threshold: f64_field(entry, "threshold")?,
                window: u64_field(entry, "window")?,
            });
        }
        Ok(report)
    }

    /// Deterministic human-readable rendering (the `pc-obs report`
    /// output; pinned by `ci/obs_report.golden`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "obs report: sim {:.3} s, window {} ms\n",
            self.sim_ns as f64 / 1e9,
            self.window_ns / 1_000_000
        ));
        out.push_str(&format!("alerts: {}\n", self.alerts.len()));
        for a in &self.alerts {
            out.push_str(&format!(
                "  [{}] t={:.3}s window={} value={:.4} threshold={:.4}\n",
                a.kind.name(),
                a.t_ns as f64 / 1e9,
                a.window,
                a.value,
                a.threshold
            ));
        }
        out.push_str(&format!("sketches: {}\n", self.sketches.len()));
        for (k, s) in &self.sketches {
            out.push_str(&format!(
                "  {k}: n={} mean={:.6} p50={:.6} p90={:.6} p99={:.6} max={:.6}\n",
                s.count(),
                s.mean(),
                s.quantile(0.50),
                s.quantile(0.90),
                s.quantile(0.99),
                s.max()
            ));
        }
        out.push_str(&format!("series: {}\n", self.series.len()));
        for (k, r) in &self.series {
            let n = r.total_count();
            let mean = if n == 0 { 0.0 } else { r.total_sum() / n as f64 };
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (_, c) in r.iter() {
                lo = lo.min(c.min);
                hi = hi.max(c.max);
            }
            if n == 0 {
                lo = 0.0;
                hi = 0.0;
            }
            out.push_str(&format!(
                "  {k}: cells={} n={n} mean={mean:.6} min={lo:.6} max={hi:.6}\n",
                r.len()
            ));
        }
        out
    }
}

/// Where one request's joules accrued: one leaf of the provenance
/// flamegraph (node → incarnation → container → segment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvenanceEntry {
    /// Node index the container ran on.
    pub node: u32,
    /// Node incarnation (0 before any crash) the container was created
    /// in.
    pub incarnation: u32,
    /// Request context id.
    pub ctx: u64,
    /// Workload label, or -1 when unlabeled.
    pub label: i64,
    /// CPU/memory energy attributed at full duty, Joules.
    pub cpu_j: f64,
    /// CPU/memory energy attributed while duty-cycle throttled, Joules.
    pub throttled_j: f64,
    /// Attributed peripheral I/O energy, Joules.
    pub io_j: f64,
}

/// Renders provenance entries in folded-stack (flamegraph) format:
/// one `frame;frame;...;frame value` line per non-empty segment, with
/// values in integer microjoules. Lines are emitted in (node,
/// incarnation, ctx, segment) order, so the export is byte-stable.
pub fn provenance_folded(entries: &[ProvenanceEntry]) -> String {
    let mut sorted: Vec<&ProvenanceEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| (e.node, e.incarnation, e.ctx));
    let mut out = String::new();
    for e in sorted {
        for (segment, joules) in
            [("cpu", e.cpu_j), ("throttled", e.throttled_j), ("io", e.io_j)]
        {
            let uj = (joules * 1e6).round() as u64;
            if uj == 0 {
                continue;
            }
            out.push_str(&format!(
                "node{:04};inc{};ctx{};{segment} {uj}\n",
                e.node, e.incarnation, e.ctx
            ));
        }
    }
    out
}

/// Renders a folded-stack provenance export as an indented text tree
/// with microjoule totals and percentages (the `pc-trace flame` view).
/// Children print in descending-total order (ties by name) so hot paths
/// lead.
pub fn render_flame(folded: &str) -> String {
    #[derive(Default)]
    struct TreeNode {
        total: u64,
        children: BTreeMap<String, TreeNode>,
    }
    let mut root = TreeNode::default();
    let mut malformed = 0usize;
    for line in folded.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((stack, value)) = line.rsplit_once(' ') else {
            malformed += 1;
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            malformed += 1;
            continue;
        };
        root.total += value;
        let mut cursor = &mut root;
        for frame in stack.split(';') {
            cursor = cursor.children.entry(frame.to_string()).or_default();
            cursor.total += value;
        }
    }
    fn render(node: &TreeNode, grand_total: u64, depth: usize, out: &mut String) {
        let mut kids: Vec<(&String, &TreeNode)> = node.children.iter().collect();
        kids.sort_by(|a, b| b.1.total.cmp(&a.1.total).then_with(|| a.0.cmp(b.0)));
        for (name, child) in kids {
            let pct = if grand_total == 0 {
                0.0
            } else {
                child.total as f64 / grand_total as f64 * 100.0
            };
            out.push_str(&format!(
                "{}{name} {} uJ ({pct:.1}%)\n",
                "  ".repeat(depth),
                child.total
            ));
            render(child, grand_total, depth + 1, out);
        }
    }
    let mut out = format!("total {} uJ\n", root.total);
    if malformed > 0 {
        out.push_str(&format!("malformed lines: {malformed}\n"));
    }
    render(&root, root.total, 0, &mut out);
    out
}

fn u64_field(v: &serde_json::Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(|f| f.as_u64()).ok_or_else(|| format!("missing u64 field {key}"))
}

fn f64_field(v: &serde_json::Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(|f| f.as_f64()).ok_or_else(|| format!("missing f64 field {key}"))
}

fn str_field(v: &serde_json::Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|f| f.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_quantiles_within_relative_error() {
        let mut s = QuantileSketch::new();
        for i in 1..=10_000 {
            s.observe(i as f64 / 100.0); // 0.01 .. 100.0
        }
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let exact = f64::max(q * 10_000.0, 1.0).floor() / 100.0;
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() / exact < 0.025,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        assert_eq!(s.count(), 10_000);
        assert!((s.mean() - 50.005).abs() / 50.005 < 0.02, "mean within relative error");
        assert!(s.bucket_count() < 1000, "sketch must stay bounded");
    }

    #[test]
    fn sketch_merge_matches_serial_and_is_associative() {
        let vals: Vec<f64> = (1..=999).map(|i| (i as f64).sqrt()).collect();
        let mut serial = QuantileSketch::new();
        for &v in &vals {
            serial.observe(v);
        }
        let sketch_of = |chunk: &[f64]| {
            let mut s = QuantileSketch::new();
            for &v in chunk {
                s.observe(v);
            }
            s
        };
        let (a, b, c) = (sketch_of(&vals[..100]), sketch_of(&vals[100..500]), sketch_of(&vals[500..]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, serial, "merged shards must equal the serial sketch");
    }

    #[test]
    fn sketch_handles_zero_negative_and_nan() {
        let mut s = QuantileSketch::new();
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        assert_eq!(s.count(), 0);
        s.observe(0.0);
        s.observe(-5.0);
        s.observe(10.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), 0.0);
        assert!((s.quantile(1.0) - 10.0).abs() / 10.0 < 0.02);
        assert_eq!(s.min(), -5.0);
    }

    #[test]
    fn rollup_buckets_by_time_and_merges_cellwise() {
        let mut a = Rollup::new(100);
        a.observe(10, 1.0);
        a.observe(50, 3.0);
        a.observe(150, 5.0);
        let mut b = Rollup::new(100);
        b.observe(70, 7.0);
        b.observe(250, 2.0);
        a.merge(&b);
        let c0 = a.cell(0).unwrap();
        assert_eq!(c0.count, 3);
        assert_eq!(c0.sum, 11.0);
        assert_eq!(c0.min, 1.0);
        assert_eq!(c0.max, 7.0);
        assert_eq!(a.cell(1).unwrap().count, 1);
        assert_eq!(a.cell(2).unwrap().sum, 2.0);
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_count(), 5);
    }

    #[test]
    fn monitor_cap_burn_fires_with_hysteresis_and_clears() {
        let mut m = BurnRateMonitor::new(
            SloRules { fire_after: 2, clear_after: 2, ..SloRules::standard() },
            1_000_000_000,
        );
        let w = |end_ns, active_j, cap| WindowSample {
            end_ns,
            active_j,
            attributed_j: active_j,
            completed: 10,
            cap_w: Some(cap),
        };
        // 100 W cap; 97 J per 1-second-equivalent window = 3% headroom.
        assert_eq!(m.observe_window(&w(1, 97.0, 100.0)), 0, "one breach is not enough");
        assert_eq!(m.observe_window(&w(2, 97.0, 100.0)), 1, "second consecutive breach fires");
        assert_eq!(m.observe_window(&w(3, 97.0, 100.0)), 0, "active rule must not re-fire");
        // One clean window then a breach: streak broken both ways.
        assert_eq!(m.observe_window(&w(4, 50.0, 100.0)), 0);
        assert_eq!(m.observe_window(&w(5, 97.0, 100.0)), 0, "still active, no re-fire");
        // Two clean windows clear; two breaches re-fire.
        m.observe_window(&w(6, 50.0, 100.0));
        m.observe_window(&w(7, 50.0, 100.0));
        m.observe_window(&w(8, 97.0, 100.0));
        assert_eq!(m.observe_window(&w(9, 97.0, 100.0)), 1, "cleared rule re-fires");
        assert_eq!(m.alerts().len(), 2);
        assert!(m.alerts().iter().all(|a| a.kind == AlertKind::CapBurn));
        assert_eq!(m.alerts()[0].window, 1);
    }

    #[test]
    fn monitor_regression_compares_to_baseline() {
        let rules = SloRules { baseline_windows: 2, fire_after: 1, ..SloRules::standard() };
        let mut m = BurnRateMonitor::new(rules, 1_000_000_000);
        let w = |end_ns, attr, completed| WindowSample {
            end_ns,
            active_j: attr,
            attributed_j: attr,
            completed,
            cap_w: None,
        };
        // Baseline: 1 J/request.
        m.observe_window(&w(1, 10.0, 10));
        m.observe_window(&w(2, 10.0, 10));
        assert!((m.baseline_j_per_req() - 1.0).abs() < 1e-12);
        assert_eq!(m.observe_window(&w(3, 12.0, 10)), 0, "1.2x is under the 1.5x threshold");
        assert_eq!(m.observe_window(&w(4, 20.0, 10)), 1, "2x regression fires");
        assert_eq!(m.alerts()[0].kind, AlertKind::EnergyRegression);
        assert!((m.alerts()[0].value - 2.0).abs() < 1e-12);
        // Empty windows carry no signal either way.
        assert_eq!(m.observe_window(&w(5, 0.0, 0)), 0);
    }

    #[test]
    fn monitor_residual_skips_baseline_then_fires() {
        let rules = SloRules { baseline_windows: 1, fire_after: 2, ..SloRules::standard() };
        let mut m = BurnRateMonitor::new(rules, 1_000_000_000);
        let w = |end_ns, active, attr| WindowSample {
            end_ns,
            active_j: active,
            attributed_j: attr,
            completed: 5,
            cap_w: None,
        };
        // Window 0 is baseline: a residual breach there must not count.
        // (Attributed joules per request stay flat at 1 J/req across all
        // windows so the regression rule stays quiet and only the residual
        // rule is under test.)
        assert_eq!(m.observe_window(&w(1, 10.0, 5.0)), 0);
        assert_eq!(m.observe_window(&w(2, 10.0, 5.0)), 0, "first counted breach");
        assert_eq!(m.observe_window(&w(3, 10.0, 5.0)), 1, "second breach fires");
        assert_eq!(m.alerts()[0].kind, AlertKind::ResidualAnomaly);
        assert!((m.alerts()[0].value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monitor_is_deterministic() {
        let samples: Vec<WindowSample> = (0..50)
            .map(|i| WindowSample {
                end_ns: (i + 1) * 250_000_000,
                active_j: 20.0 + (i % 7) as f64 * 3.0,
                attributed_j: 19.0 + (i % 5) as f64 * 3.0,
                completed: 40 + i % 11,
                cap_w: Some(25.0),
            })
            .collect();
        let run = || {
            let mut m = BurnRateMonitor::new(SloRules::standard(), 250_000_000);
            for s in &samples {
                m.observe_window(s);
            }
            m.alerts().to_vec()
        };
        assert_eq!(run(), run(), "same sample stream must yield identical alerts");
    }

    #[test]
    fn report_round_trips_and_merges() {
        let mut r = ObsReport::new(250_000_000, 4_000_000_000);
        for i in 0..500 {
            r.sketch("latency_s/fleet").observe(0.001 * (1 + i % 40) as f64);
            r.rollup("power_w/fleet").observe(i * 8_000_000, 30.0 + (i % 9) as f64);
        }
        r.alerts.push(Alert {
            t_ns: 1_000_000_000,
            kind: AlertKind::CapBurn,
            value: 0.02,
            threshold: 0.05,
            window: 3,
        });
        let json = r.to_json();
        let back = ObsReport::from_json(&json).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json, "re-encoding must be byte-identical");

        // Key-wise merge of two half-reports equals the whole.
        let mut a = ObsReport::new(250_000_000, 4_000_000_000);
        let mut b = ObsReport::new(250_000_000, 4_000_000_000);
        for i in 0..500 {
            let half = if i % 2 == 0 { &mut a } else { &mut b };
            half.sketch("latency_s/fleet").observe(0.001 * (1 + i % 40) as f64);
            half.rollup("power_w/fleet").observe(i * 8_000_000, 30.0 + (i % 9) as f64);
        }
        a.alerts.push(r.alerts[0]);
        a.merge(&b);
        assert_eq!(a.to_json(), json);
    }

    #[test]
    fn report_render_is_stable() {
        let mut r = ObsReport::new(100_000_000, 1_000_000_000);
        r.sketch("latency_s/fleet").observe(0.01);
        r.rollup("power_w/fleet").observe(50_000_000, 42.0);
        let a = r.render();
        let b = r.render();
        assert_eq!(a, b);
        assert!(a.contains("latency_s/fleet"));
        assert!(a.contains("alerts: 0"));
    }

    #[test]
    fn provenance_folded_is_sorted_and_skips_empty_segments() {
        let entries = vec![
            ProvenanceEntry {
                node: 2,
                incarnation: 0,
                ctx: 7,
                label: 1,
                cpu_j: 0.001,
                throttled_j: 0.0,
                io_j: 0.0005,
            },
            ProvenanceEntry {
                node: 0,
                incarnation: 1,
                ctx: 3,
                label: -1,
                cpu_j: 0.002,
                throttled_j: 0.0001,
                io_j: 0.0,
            },
        ];
        let folded = provenance_folded(&entries);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "node0000;inc1;ctx3;cpu 2000",
                "node0000;inc1;ctx3;throttled 100",
                "node0002;inc0;ctx7;cpu 1000",
                "node0002;inc0;ctx7;io 500",
            ]
        );
        let flame = render_flame(&folded);
        assert!(flame.starts_with("total 3600 uJ\n"));
        assert!(flame.contains("node0000 2100 uJ (58.3%)"));
        assert!(flame.contains("  inc1 2100 uJ"));
    }
}
