//! Trace exporters: JSONL and Chrome trace-event JSON.
//!
//! Both formats are rendered by hand-written formatting (not a generic
//! serializer) so the byte layout is fully under our control — field
//! order is fixed, floats use Rust's shortest round-trip `{:?}` form,
//! and no map iteration order can leak in. That is what makes "traces
//! are byte-identical across runs and `--jobs` counts" a guarantee
//! rather than an accident.

use crate::metrics::MetricsSnapshot;
use crate::{Event, FieldValue, Phase};
use std::fmt::Write as _;

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
///
/// Event categories and names are static identifiers so this is almost
/// always a pass-through, but the exporter must never emit invalid JSON
/// no matter what an instrumentation site names things.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes an `f64` deterministically: shortest round-trip form for
/// finite values, JSON `null` for NaN/±inf (which JSON cannot carry).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(x) => push_f64(out, *x),
        FieldValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

fn push_args(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        push_field_value(out, v);
    }
    out.push('}');
}

/// Renders events in record order, one JSON object per line, followed by
/// one line per metric in sorted name order:
///
/// ```text
/// {"t_ns":N,"cat":"...","name":"...","ph":"I","track":0,"args":{...}}
/// {"metric":"counter","name":"...","value":N}
/// {"metric":"gauge","name":"...","value":X}
/// {"metric":"histogram","name":"...","bounds":[...],"counts":[...],"total":N,"sum":X}
/// ```
pub fn to_jsonl(events: &[Event], metrics: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    for e in events {
        let _ = write!(out, "{{\"t_ns\":{},\"cat\":\"", e.t_ns);
        escape_into(&mut out, e.cat);
        out.push_str("\",\"name\":\"");
        escape_into(&mut out, e.name);
        let _ = write!(out, "\",\"ph\":\"{}\",\"track\":{},\"args\":", e.ph.code(), e.track);
        push_args(&mut out, &e.fields);
        out.push_str("}\n");
    }
    for (name, value) in &metrics.counters {
        out.push_str("{\"metric\":\"counter\",\"name\":\"");
        escape_into(&mut out, name);
        let _ = write!(out, "\",\"value\":{value}}}");
        out.push('\n');
    }
    for (name, value) in &metrics.gauges {
        out.push_str("{\"metric\":\"gauge\",\"name\":\"");
        escape_into(&mut out, name);
        out.push_str("\",\"value\":");
        push_f64(&mut out, *value);
        out.push_str("}\n");
    }
    for (name, h) in &metrics.histograms {
        out.push_str("{\"metric\":\"histogram\",\"name\":\"");
        escape_into(&mut out, name);
        out.push_str("\",\"bounds\":[");
        for (i, b) in h.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64(&mut out, *b);
        }
        out.push_str("],\"counts\":[");
        for (i, c) in h.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"total\":{},\"sum\":", h.total);
        push_f64(&mut out, h.sum);
        out.push_str("}\n");
    }
    out
}

/// Writes `t_ns` as the microsecond value Chrome's `ts` field expects,
/// with exactly three fractional digits (nanosecond precision preserved,
/// fixed width for byte determinism).
pub(crate) fn push_ts_micros(out: &mut String, t_ns: u64) {
    let _ = write!(out, "{}.{:03}", t_ns / 1_000, t_ns % 1_000);
}

/// Renders the events as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`), loadable in Perfetto and
/// `chrome://tracing`. Tracks map to `tid` under a single `pid` 0;
/// instants use the thread-scoped `"i"` phase.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_into(&mut out, e.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, e.cat);
        out.push_str("\",\"ph\":\"");
        let ph = match e.ph {
            Phase::Instant => "i",
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Counter => "C",
        };
        out.push_str(ph);
        out.push_str("\",\"ts\":");
        push_ts_micros(&mut out, e.t_ns);
        let _ = write!(out, ",\"pid\":0,\"tid\":{}", e.track);
        if e.ph == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.fields.is_empty() {
            out.push_str(",\"args\":");
            push_args(&mut out, &e.fields);
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn ev(t_ns: u64, ph: Phase, fields: Vec<(&'static str, FieldValue)>) -> Event {
        Event { t_ns, cat: "c", name: "n", ph, track: 3, fields }
    }

    #[test]
    fn jsonl_field_order_is_fixed() {
        let events = vec![ev(7, Phase::Instant, vec![("a", FieldValue::U64(1))])];
        let line = to_jsonl(&events, &MetricsSnapshot::default());
        assert_eq!(
            line,
            "{\"t_ns\":7,\"cat\":\"c\",\"name\":\"n\",\"ph\":\"I\",\"track\":3,\"args\":{\"a\":1}}\n"
        );
    }

    #[test]
    fn jsonl_metric_lines_follow_events() {
        let mut reg = MetricsRegistry::default();
        reg.add_count("n.total", 4);
        reg.register_histogram("h", &[1.0]);
        reg.observe("h", 0.25);
        let out = to_jsonl(&[], &reg.snapshot());
        assert_eq!(
            out,
            "{\"metric\":\"counter\",\"name\":\"n.total\",\"value\":4}\n\
             {\"metric\":\"histogram\",\"name\":\"h\",\"bounds\":[1.0],\"counts\":[1,0],\
             \"total\":1,\"sum\":0.25}\n"
        );
    }

    #[test]
    fn chrome_ts_has_fixed_width_nanos() {
        let events = vec![ev(1_500_042, Phase::Begin, vec![])];
        let out = to_chrome_trace(&events);
        assert!(out.contains("\"ts\":1500.042"), "{out}");
        let events = vec![ev(2_000_000, Phase::End, vec![])];
        assert!(to_chrome_trace(&events).contains("\"ts\":2000.000"));
    }

    #[test]
    fn chrome_instants_are_thread_scoped() {
        let out = to_chrome_trace(&[ev(1, Phase::Instant, vec![])]);
        assert!(out.contains("\"s\":\"t\""));
        let out = to_chrome_trace(&[ev(1, Phase::Begin, vec![])]);
        assert!(!out.contains("\"s\":\"t\""));
    }

    #[test]
    fn chrome_trace_parses_as_json() {
        let events = vec![
            ev(1, Phase::Begin, vec![("why", FieldValue::Str("a \"quoted\" reason"))]),
            ev(2, Phase::End, vec![]),
            ev(3, Phase::Counter, vec![("value", FieldValue::F64(0.5))]),
        ];
        let out = to_chrome_trace(&events);
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert!(v.get("traceEvents").is_some());
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut s = String::new();
        escape_into(&mut s, "a\nb\u{1}c");
        assert_eq!(s, "a\\nb\\u0001c");
    }
}
