//! Named counters, gauges, and fixed-bucket histograms.
//!
//! The registry is deliberately tiny: metric names are `&'static str`
//! (instrumentation sites name their metrics at compile time), storage is
//! `BTreeMap` so every snapshot and export walks names in one canonical
//! sorted order, and histograms use fixed upper-inclusive bucket bounds
//! declared at registration — no dynamic rebucketing, so two runs that
//! observe the same values export byte-identical lines.

use std::collections::BTreeMap;

/// A fixed-bucket histogram.
///
/// `bounds` are upper-**inclusive** bucket edges in ascending order;
/// `counts` has `bounds.len() + 1` entries, the last being the overflow
/// bucket for values strictly greater than the final bound. A value equal
/// to a bound lands in that bound's bucket.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Ascending upper-inclusive bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` long).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values (NaN observations are dropped).
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Index of the bucket `value` falls into (last index = overflow).
    pub fn bucket_index(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let i = self.bucket_index(value);
        self.counts[i] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Folds `other`'s observations into this histogram. Both must use
    /// the same bounds (merging differently-bucketed histograms under
    /// one name is always a bug).
    fn absorb(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch in merge");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Counters, gauges, and histograms keyed by static name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn add_count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Registers a histogram with the given upper-inclusive bounds. A
    /// name that is already registered keeps its original bounds and
    /// counts (registration is idempotent).
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        self.histograms.entry(name).or_insert_with(|| Histogram::new(bounds));
    }

    /// Records `value` into the named histogram; unknown names are
    /// silently dropped so call sites never need registration checks.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        }
    }

    /// Folds `other` into this registry: counters add, gauges overwrite
    /// (`other` wins where both set a name), histograms merge
    /// bucket-wise (registering `other`'s bounds where absent here).
    ///
    /// Used to fold per-shard registries into the run's main registry
    /// in a caller-fixed order, so the merged snapshot is identical at
    /// every shard count.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name, *v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name)
                .or_insert_with(|| Histogram::new(&h.bounds))
                .absorb(h);
        }
    }

    /// A sorted point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
        }
    }
}

/// A sorted point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs in name order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` gauge pairs in name order.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, histogram)` pairs in name order.
    pub histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsSnapshot {
    /// The named counter's value, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// The named gauge's value, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::default();
        reg.add_count("c", 1);
        reg.add_count("c", 2);
        reg.set_gauge("g", 1.0);
        reg.set_gauge("g", 2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_bounds_are_upper_inclusive() {
        let mut reg = MetricsRegistry::default();
        reg.register_histogram("h", &[1.0, 2.0, 4.0]);
        // Exactly on a bound -> that bound's bucket.
        reg.observe("h", 1.0);
        reg.observe("h", 2.0);
        reg.observe("h", 4.0);
        // Strictly between bounds -> the next bucket up.
        reg.observe("h", 1.5);
        // Strictly above the last bound -> overflow.
        reg.observe("h", 4.0001);
        // Below the first bound (incl. negative) -> first bucket.
        reg.observe("h", -3.0);
        let snap = reg.snapshot();
        let h = snap.histogram("h").expect("registered");
        assert_eq!(h.counts, vec![2, 2, 1, 1]);
        assert_eq!(h.total, 6);
        assert!((h.sum - (1.0 + 2.0 + 4.0 + 1.5 + 4.0001 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_edges() {
        let h = Histogram::new(&[0.0, 10.0]);
        assert_eq!(h.bucket_index(-1.0), 0);
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(0.0001), 1);
        assert_eq!(h.bucket_index(10.0), 1);
        assert_eq!(h.bucket_index(10.0001), 2);
        assert_eq!(h.bucket_index(f64::INFINITY), 2);
    }

    #[test]
    fn reregistration_is_idempotent() {
        let mut reg = MetricsRegistry::default();
        reg.register_histogram("h", &[1.0]);
        reg.observe("h", 0.5);
        reg.register_histogram("h", &[99.0]); // ignored
        let snap = reg.snapshot();
        let h = snap.histogram("h").expect("registered");
        assert_eq!(h.bounds, vec![1.0]);
        assert_eq!(h.total, 1);
    }

    #[test]
    fn nan_observations_are_dropped() {
        let mut reg = MetricsRegistry::default();
        reg.register_histogram("h", &[1.0]);
        reg.observe("h", f64::NAN);
        reg.observe("h", 0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("h").map(|h| h.total), Some(1));
    }

    #[test]
    fn unregistered_observe_is_a_noop() {
        let mut reg = MetricsRegistry::default();
        reg.observe("ghost", 1.0);
        assert!(reg.snapshot().histograms.is_empty());
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let mut reg = MetricsRegistry::default();
        reg.add_count("zeta", 1);
        reg.add_count("alpha", 1);
        reg.add_count("mid", 1);
        let names: Vec<&str> = reg.snapshot().counters.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
