//! Deterministic random number generation.
//!
//! The simulation must be reproducible from a single seed, and independent
//! subsystems (workload generators, noise injection, arrival processes) must
//! not perturb each other's random streams when one of them draws more or
//! fewer values. [`SimRng`] therefore supports *splitting*: deriving an
//! independent child generator from a parent in a deterministic way.
//!
//! The core generator is xoshiro256\*\*, seeded through SplitMix64, both
//! public-domain algorithms by Blackman and Vigna.

/// A deterministic, splittable pseudo-random number generator.
///
/// # Example
///
/// ```
/// use simkern::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Children with different labels produce independent streams.
/// let mut c1 = a.split(1);
/// let mut c2 = a.split(2);
/// assert_ne!(c1.next_u64(), c2.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
    /// Seed identity fixed at construction; `split` derives children from
    /// this so that drawing values never perturbs child streams.
    lineage: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            lineage: seed,
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child stream depends only on this generator's *seed lineage* and
    /// the `label`, not on how many values have been drawn from the parent,
    /// so adding draws in one subsystem never perturbs another.
    pub fn split(&self, label: u64) -> SimRng {
        // Mix the parent's fixed seed lineage with the label through
        // SplitMix64 for a well-separated child seed.
        let mut sm = self.lineage ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let seed = splitmix64(&mut sm);
        SimRng::new(seed)
    }

    /// Next raw 64-bit value (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A sample from the standard normal distribution (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.normal()
    }

    /// An exponential sample with the given mean (e.g. Poisson inter-arrival
    /// gaps).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// A log-normal sample parameterized by the *underlying* normal's mean
    /// and standard deviation.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        (mu + sigma * self.normal()).exp()
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_draw_independent() {
        let parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        // Drawing from one copy of the parent must not change split results.
        let _ = parent2.next_u64();
        let mut c1 = parent1.split(5);
        let mut c2 = parent2.split(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_labels_give_distinct_streams() {
        let parent = SimRng::new(3);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(13);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SimRng::new(17);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::new(23);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::new(29);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(31);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::new(37);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
