//! Deterministic fast hashing for hot-path maps.
//!
//! `std::collections::HashMap`'s default hasher is SipHash-1-3 behind a
//! per-process random key: robust against adversarial keys, but (a) slow
//! for the small integer keys the simulators use (wire serials, request
//! ids, context ids) and (b) randomized, so iteration order varies run to
//! run — callers must never let it leak into results. [`FxHashMap`] swaps
//! in the Firefox `FxHasher` (a multiply-rotate mix): ~5× cheaper per
//! lookup on `u64` keys and fully deterministic, with the same
//! keys-must-not-drive-iteration-order discipline (iteration order still
//! depends on insertion history and capacity, so order-sensitive readers
//! must sort — exactly as with the default hasher).
//!
//! Simulation inputs are simulator-generated sequential ids, never
//! attacker-controlled, so HashDoS resistance buys nothing here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox "Fx" multiplicative hasher: for each 8-byte (or smaller)
/// chunk, `hash = (hash.rotate_left(5) ^ chunk) * K`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The Fx multiplier (a 64-bit odd constant derived from π).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so `Default` everywhere).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_u64_keys() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        use std::hash::BuildHasher;
        let a = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        let b = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher::default().hash_one(0xDEAD_BEF0u64));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        use std::hash::BuildHasher;
        let h = |bytes: &[u8]| FxBuildHasher::default().hash_one(bytes);
        assert_eq!(h(b"power-container"), h(b"power-container"));
        assert_ne!(h(b"power-container"), h(b"power-containers"));
        // Length is mixed into the tail word, so a short key is not a
        // prefix-collision of a longer zero-padded one.
        assert_ne!(h(&[0, 0, 0]), h(&[0, 0, 0, 0]));
    }
}
