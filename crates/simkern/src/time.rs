//! Simulated clock values.
//!
//! All simulation time in the workspace is expressed in integer nanoseconds.
//! [`SimTime`] is an absolute instant on the simulated clock and
//! [`SimDuration`] is a span between instants. Both are newtypes over `u64`
//! so that raw integers, cycle counts, and wall-clock values cannot be mixed
//! up by accident.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use simkern::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(1500);
/// assert_eq!(t.as_nanos(), 1_500_000);
/// assert_eq!(t.as_millis_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use simkern::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(250);
/// assert_eq!(d.as_nanos(), 3_250_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for events that are not currently scheduled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the simulation origin.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds since the simulation origin.
    pub const fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from milliseconds since the simulation origin.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from whole seconds since the simulation origin.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(secs >= 0.0, "duration must be non-negative, got {secs}");
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Raw nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "factor must be non-negative, got {factor}");
        let nanos = self.0 as f64 * factor;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_nanos(2_000_000_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert_eq!(late.duration_since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs_f64(f64::MAX), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::MAX), SimDuration::MAX);
    }

    #[test]
    fn saturating_behaviour_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX + SimDuration::from_nanos(1), SimDuration::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_nanos(1), SimTime::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
