//! Discrete-event simulation kernel for the Power Containers reproduction.
//!
//! This crate is deliberately tiny and dependency-free: it provides the three
//! primitives every other simulation crate in the workspace builds on.
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated clock
//!   values with saturating, unit-safe arithmetic.
//! * [`EventQueue`] — a stable (FIFO-within-timestamp) priority queue of
//!   timestamped events, the heart of the discrete-event loop.
//! * [`SimRng`] — a seedable, splittable xoshiro256** random number
//!   generator so that every experiment in the repository is reproducible
//!   bit-for-bit from its seed.
//!
//! # Example
//!
//! ```
//! use simkern::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_millis(2), "later");
//! queue.push(SimTime::ZERO + SimDuration::from_millis(1), "sooner");
//!
//! let (when, what) = queue.pop().unwrap();
//! assert_eq!(what, "sooner");
//! assert_eq!(when.as_millis_f64(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fxhash;
mod queue;
mod rng;
mod time;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
