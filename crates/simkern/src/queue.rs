//! A stable timestamped event queue.
//!
//! Discrete-event simulations spend much of their time pushing and popping
//! events that share one timestamp: a core tick fires, its handler schedules
//! follow-up work *at the same instant*, that work schedules more, and so
//! on. A plain binary heap pays `O(log n)` per operation for what is really
//! FIFO traffic, so the queue keeps a dedicated FIFO *bucket* for the
//! instant currently being drained and only falls back to the heap for
//! events at other timestamps.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops events in
/// non-decreasing timestamp order.
///
/// Events that share a timestamp are popped in the order they were pushed
/// (FIFO), which keeps discrete-event simulations deterministic even when
/// many subsystems schedule work for the same instant.
///
/// Internally, events at the timestamp currently being drained live in a
/// FIFO ring (`O(1)` push and pop); all other events live in a binary heap
/// ordered by `(timestamp, push sequence)`. Same-instant cascades — a
/// handler scheduling follow-up work at the instant being processed — never
/// touch the heap.
///
/// # Example
///
/// ```
/// use simkern::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(1), "a");
/// q.push(SimTime::from_millis(1), "b");
/// q.push(SimTime::ZERO, "first");
///
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Timestamp of the FIFO bucket, when one is active. While active, the
    /// heap holds no events at this timestamp (they were either drained
    /// into the bucket or pushed straight to it), so bucket order is
    /// globally FIFO for that instant.
    front_at: Option<SimTime>,
    front: VecDeque<E>,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so that the earliest timestamp
        // (and, within a timestamp, the lowest sequence number) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            front_at: None,
            front: VecDeque::new(),
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        if self.front_at == Some(at) {
            // Same-instant cascade: join the FIFO bucket directly. Every
            // event already in the bucket was pushed earlier, so FIFO
            // order is preserved without a sequence number.
            self.front.push_back(event);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if let Some(at) = self.front_at {
            // The bucket is only bypassed when strictly earlier events
            // were pushed after it formed.
            let heap_earlier = self.heap.peek().is_some_and(|e| e.at < at);
            if !heap_earlier {
                let event = self.front.pop_front()?;
                if self.front.is_empty() {
                    self.front_at = None;
                }
                return Some((at, event));
            }
        }
        let entry = self.heap.pop()?;
        // Form a FIFO bucket for this instant so the rest of the cascade
        // is O(1): drain equal-time heap entries (the heap yields them in
        // sequence order) and route future same-instant pushes here.
        if self.front_at.is_none() && self.heap.peek().is_some_and(|e| e.at == entry.at) {
            while let Some(next) = self.heap.peek() {
                if next.at != entry.at {
                    break;
                }
                let next = self.heap.pop().expect("peeked entry");
                self.front.push_back(next.event);
            }
            self.front_at = Some(entry.at);
        }
        Some((entry.at, entry.event))
    }

    /// Removes and returns the earliest event if its timestamp is at or
    /// before `t_end`. A fused `peek_time` + `pop` for simulation run
    /// loops, avoiding a second ordering pass over the heap.
    pub fn pop_if_at_or_before(&mut self, t_end: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? > t_end {
            return None;
        }
        self.pop()
    }

    /// Removes and returns every event with a timestamp at or before `t`,
    /// in pop order. Batched variant of [`EventQueue::pop`] for callers
    /// that advance simulated time in strides.
    pub fn pop_until(&mut self, t: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop_if_at_or_before(t) {
            out.push(ev);
        }
        out
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_t = self.heap.peek().map(|e| e.at);
        match (self.front_at, heap_t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.front.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.front.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.front.clear();
        self.front_at = None;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> EventQueue<E> {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), 3);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_millis(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(5), ());
        q.push(SimTime::from_micros(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(2));
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u8> = (0..5).map(|i| (SimTime::from_nanos(i), i as u8)).collect();
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "c");
        q.push(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_nanos(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn same_instant_cascade_stays_fifo() {
        // A handler that pushes follow-up work at the instant being
        // drained must see it pop after everything already queued there.
        let t = SimTime::from_millis(4);
        let mut q = EventQueue::new();
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop(), Some((t, 0))); // bucket forms here
        q.push(t, 2); // cascade push joins the bucket
        q.push(SimTime::from_millis(9), 9);
        q.push(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 9]);
    }

    #[test]
    fn earlier_push_preempts_active_bucket() {
        let t = SimTime::from_millis(4);
        let mut q = EventQueue::new();
        q.push(t, "x");
        q.push(t, "y");
        assert_eq!(q.pop(), Some((t, "x")));
        // A straggler scheduled before the bucket's instant must still
        // pop first.
        q.push(SimTime::from_millis(1), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
        assert_eq!(q.pop(), Some((t, "y")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn bucket_reforms_after_draining() {
        let mut q = EventQueue::new();
        for round in 0..3u64 {
            let t = SimTime::from_millis(round);
            for i in 0..10 {
                q.push(t, (round, i));
            }
        }
        for round in 0..3u64 {
            for i in 0..10 {
                assert_eq!(q.pop(), Some((SimTime::from_millis(round), (round, i))));
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pop_if_at_or_before_respects_bound() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(2), "late");
        q.push(SimTime::from_millis(1), "ok");
        assert_eq!(q.pop_if_at_or_before(SimTime::from_millis(1)), Some((SimTime::from_millis(1), "ok")));
        assert_eq!(q.pop_if_at_or_before(SimTime::from_millis(1)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_if_at_or_before(SimTime::from_millis(2)), Some((SimTime::from_millis(2), "late")));
    }

    #[test]
    fn pop_until_drains_in_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), 3);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(1), 10);
        q.push(SimTime::from_millis(2), 2);
        q.push(SimTime::from_millis(5), 5);
        let drained = q.pop_until(SimTime::from_millis(3));
        let events: Vec<i32> = drained.iter().map(|&(_, e)| e).collect();
        assert_eq!(events, vec![1, 10, 2, 3]);
        assert!(drained.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_counts_bucket_and_heap() {
        let t = SimTime::from_millis(1);
        let mut q = EventQueue::new();
        q.push(t, 0);
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 0))); // two left, now bucketed
        q.push(SimTime::from_millis(2), 3);
        assert_eq!(q.len(), 3);
        q.clear();
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }
}
