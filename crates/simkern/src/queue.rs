//! A stable timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops events in
/// non-decreasing timestamp order.
///
/// Events that share a timestamp are popped in the order they were pushed
/// (FIFO), which keeps discrete-event simulations deterministic even when
/// many subsystems schedule work for the same instant.
///
/// # Example
///
/// ```
/// use simkern::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(1), "a");
/// q.push(SimTime::from_millis(1), "b");
/// q.push(SimTime::ZERO, "first");
///
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so that the earliest timestamp
        // (and, within a timestamp, the lowest sequence number) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> EventQueue<E> {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), 3);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_millis(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(5), ());
        q.push(SimTime::from_micros(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(2));
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u8> = (0..5).map(|i| (SimTime::from_nanos(i), i as u8)).collect();
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "c");
        q.push(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_nanos(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
