//! Property-based tests for the simulation kernel primitives.

use proptest::prelude::*;
use simkern::{EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// Pops always come out in non-decreasing timestamp order, regardless
    /// of push order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last, "out of order: {t} after {last}");
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Events with equal timestamps preserve push order (stability).
    #[test]
    fn event_queue_is_stable(groups in prop::collection::vec(0u64..50, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &g) in groups.iter().enumerate() {
            q.push(SimTime::from_nanos(g), i);
        }
        let mut last_per_time: std::collections::HashMap<u64, usize> = Default::default();
        while let Some((t, i)) = q.pop() {
            if let Some(&prev) = last_per_time.get(&t.as_nanos()) {
                prop_assert!(i > prev, "instability within timestamp {t}");
            }
            last_per_time.insert(t.as_nanos(), i);
        }
    }

    /// Time arithmetic round-trips: (t + d) - t == d.
    #[test]
    fn time_add_sub_round_trip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(t);
        let d = SimDuration::from_nanos(d);
        prop_assert_eq!((t + d).duration_since(t), d);
        prop_assert_eq!((t + d) - d, t);
    }

    /// Durations scale consistently: mul_f64 by a rational matches
    /// integer arithmetic within rounding.
    #[test]
    fn duration_scaling_consistent(ns in 1u64..1_000_000_000, k in 1u64..16) {
        let d = SimDuration::from_nanos(ns);
        let scaled = d.mul_f64(k as f64);
        prop_assert_eq!(scaled, d * k);
    }

    /// Uniform draws respect their bounds.
    #[test]
    fn rng_uniform_in_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 0.0f64..1e6) {
        let mut rng = SimRng::new(seed);
        let hi = lo + width;
        for _ in 0..32 {
            let x = rng.uniform(lo, hi);
            prop_assert!(x >= lo && (x < hi || width == 0.0), "{x} outside [{lo},{hi})");
        }
    }

    /// `next_below` never reaches its bound and the stream is
    /// reproducible from the seed.
    #[test]
    fn rng_bounded_and_reproducible(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }

    /// Splitting by distinct labels yields streams that differ somewhere
    /// early (collision would break workload independence).
    #[test]
    fn rng_split_labels_distinct(seed in any::<u64>(), l1 in 0u64..1000, l2 in 0u64..1000) {
        prop_assume!(l1 != l2);
        let parent = SimRng::new(seed);
        let mut a = parent.split(l1);
        let mut b = parent.split(l2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        prop_assert!(!same, "distinct labels produced identical streams");
    }

    /// Exponential samples are non-negative and finite.
    #[test]
    fn rng_exponential_valid(seed in any::<u64>(), mean in 1e-6f64..1e6) {
        let mut rng = SimRng::new(seed);
        for _ in 0..16 {
            let x = rng.exponential(mean);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }
}
