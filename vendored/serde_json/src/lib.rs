//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the [`serde::Value`] document tree used by the
//! offline `serde` stand-in. Covers what the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Value`] with
//! indexing/accessor methods.

pub use serde::Value;

/// Error produced by [`from_str`] (and, for API parity, the `to_*`
/// functions, which cannot actually fail here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails with the stand-in; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Never fails with the stand-in; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns a message describing the first syntax or shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value().map_err(Error)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest round-trippable form; force a
                // fractional part so the value re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            collection(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                render(&items[i], out, indent, d);
            })
        }
        Value::Object(fields) => {
            collection(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                escape_into(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&fields[i].1, out, indent, d);
            })
        }
    }
}

fn collection(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] in array, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(format!("expected , or }} in object, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("power \"containers\"".into())),
            ("n".into(), Value::Int(-3)),
            ("x".into(), Value::Float(1.5)),
            ("flags".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_keep_their_type() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.as_f64(), Some(2.0));
    }

    #[test]
    fn parses_jsonl_style_line() {
        let v: Value = from_str("{\"at_ns\":12345,\"label\":7}").unwrap();
        assert_eq!(v["at_ns"].as_u64(), Some(12345));
        assert_eq!(v["label"].as_u64(), Some(7));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{nope}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
