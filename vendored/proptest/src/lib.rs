//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `proptest` cannot be fetched. This crate implements the subset of
//! its API the workspace's property tests use — `proptest!`, strategy
//! combinators (`prop_map`, `prop_oneof!`, ranges, tuples,
//! `prop::collection::vec`, `prop::sample::select`, `any`), and the
//! `prop_assert*` / `prop_assume!` macros — on top of a small
//! deterministic RNG. There is no shrinking: a failing case reports its
//! inputs via the assertion message and panics.
//!
//! Each `#[test]` gets a seed derived from its fully qualified name, so
//! runs are reproducible. Set `PROPTEST_CASES` to change the number of
//! cases per test (default 32).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Namespaced strategy constructors, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::vec;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::select;
    }
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, and good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary integer.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Seeds deterministically from a test's fully qualified name.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `bound` (`bound == 0` returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Number of cases per property, from `PROPTEST_CASES` or 32.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

// ---------------------------------------------------------------------------
// Test-case control flow
// ---------------------------------------------------------------------------

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the harness draws a new case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "assumption rejected"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrinking, so a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A heap-allocated strategy, used by `prop_oneof!`.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Boxes a strategy (helper for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, broad dynamic range.
        let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections and sampling
// ---------------------------------------------------------------------------

/// A length specification for [`vec`]: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec`: a vector of `element` draws with a length in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select`: a uniform choice from a non-empty list.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from empty list");
    Select { items }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: cases.max(1) }
    }

    /// The case count to use: `PROPTEST_CASES` overrides the config.
    #[must_use]
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// runs the body over a number of generated inputs (see [`cases`]); an
/// optional leading `#![proptest_config(...)]` sets the per-block count.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @config ($config) $($rest)* }
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $crate::proptest! {
            @config ($crate::ProptestConfig::default())
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
    (@config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::ProptestConfig::resolved_cases(&($config));
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < cases {
                attempts += 1;
                assert!(
                    attempts < cases.saturating_mul(50).max(1000),
                    "proptest {}: too many rejected cases",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} case {}: {}", stringify!($name), ran, msg)
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Rejects the current case (a fresh one is drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..=2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(0u8..=4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b <= 4));
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0u32..10).prop_map(|v| v as u64),
                (100u32..110).prop_map(|v| v as u64),
            ]
        ) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
