//! Offline stand-in for the `criterion` crate.
//!
//! The container has no registry access, so the real criterion cannot be
//! fetched. This stand-in keeps `cargo bench` (and `cargo test --benches`)
//! compiling and running: each `bench_function` executes the closure a small
//! number of times and prints a rough mean wall-clock time. It makes no
//! attempt at criterion's statistics — it exists so the bench harness stays
//! exercised and bit-rot-free offline.

use std::time::Instant;

pub use std::hint::black_box;

/// Times a single benchmark body.
pub struct Bencher {
    iters: u64,
    /// Total wall-clock nanoseconds accumulated by [`Bencher::iter`].
    pub elapsed_ns: u128,
}

impl Bencher {
    /// Runs `body` `iters` times, accumulating elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Benchmark driver; mirrors the subset of criterion's API the repo uses.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real default is 100 samples; a smoke run does not need that.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark and prints a rough mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.sample_size, elapsed_ns: 0 };
        f(&mut b);
        let per_iter = b.elapsed_ns / u128::from(self.sample_size.max(1));
        println!("bench {id:<32} ~{per_iter} ns/iter ({} iters)", self.sample_size);
        self
    }

    /// Criterion calls this at exit to emit its summary; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, as in the real crate.
///
/// Both invocation forms are supported:
/// `criterion_group!(benches, a, b)` and
/// `criterion_group! { name = benches; config = ...; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_iterations() {
        let mut count = 0u64;
        Criterion::default().sample_size(7).bench_function("count", |b| b.iter(|| count += 1));
        assert_eq!(count, 7);
    }
}
