//! Derive macros for the offline `serde` stand-in.
//!
//! Supports exactly what the workspace needs: structs with named fields
//! and C-like (unit-variant) enums. Anything else is a compile error with
//! a pointer here. Code generation builds a source string and re-parses
//! it, avoiding a dependency on `syn`/`quote` (unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a deriving type.
enum Item {
    /// Named-field struct: type name + field names.
    Struct(String, Vec<String>),
    /// C-like enum: type name + variant names.
    Enum(String, Vec<String>),
}

/// Parses the deriving item, or returns a message for a compile error.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("generic types are not supported by the serde stand-in".into());
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("expected {{...}} body, found {other:?}")),
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct(name, parse_fields(body)?)),
        "enum" => Ok(Item::Enum(name, parse_variants(body)?)),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Extracts field names from a named-field struct body.
fn parse_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected field name, found {tt:?}"));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        // Skip the type: scan to the next comma outside angle brackets.
        let mut angle = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Extracts variant names from a unit-variant enum body.
fn parse_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected variant name, found {tt:?}"));
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err("enums with data are not supported by the serde stand-in".into())
            }
            Some(other) => return Err(format!("unexpected token in enum: {other:?}")),
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().expect("error tokens")
}

/// `#[derive(Serialize)]`: renders the type into the `serde::Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl")
}

/// `#[derive(Deserialize)]`: rebuilds the type from a `serde::Value` tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get({f:?}).unwrap_or(&::serde::Value::Null)\
                         ).map_err(|e| ::std::format!(\"{f}: {{}}\", e))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("::std::option::Option::Some({v:?}) => \
                                  ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::std::format!(\n\
                                 \"unknown {name} variant {{:?}}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl")
}
