//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds without crates.io access, so the real serde
//! cannot be fetched. This crate provides the subset the workspace uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs (named fields)
//! and C-like enums, routed through a small JSON-shaped [`Value`] tree
//! that the sibling `serde_json` stand-in renders and parses.
//!
//! The derive macros come from the `serde_derive` proc-macro crate and
//! are re-exported here, so `use serde::{Serialize, Deserialize}` works
//! exactly as with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document tree. Re-exported by `serde_json` as `Value`.
///
/// Objects preserve insertion order (serialization output is stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (negative or within `i64`).
    Int(i64),
    /// Non-negative integer too large for `i64`, or any `u64` context.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The number as `f64`, if this is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::fmt::Display for Value {
    /// Renders compact JSON, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    if s.contains(['.', 'e', 'E']) {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    f.write_str("null") // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Value::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion into the [`Value`] tree (the stand-in's serialization).
pub trait Serialize {
    /// Renders `self` as a document tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree (the stand-in's deserialization).
pub trait Deserialize: Sized {
    /// Parses `self` out of a document tree.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch.
    fn from_value(v: &Value) -> Result<Self, String>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $T:ident),+))*) => {$(
        impl<$($T: Serialize),+> Serialize for ($($T,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let i = v.as_i64().ok_or_else(|| format!(
                    "expected integer, found {v:?}"
                ))?;
                <$t>::try_from(i).map_err(|_| format!("integer {i} out of range"))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, u8, u16, u32);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_u64().ok_or_else(|| format!("expected u64, found {v:?}"))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, String> {
        let u = v.as_u64().ok_or_else(|| format!("expected usize, found {v:?}"))?;
        usize::try_from(u).map_err(|_| format!("integer {u} out of range"))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_f64().ok_or_else(|| format!("expected number, found {v:?}"))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, found {v:?}"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str().map(str::to_string).ok_or_else(|| format!("expected string, found {v:?}"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, found {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $T:ident),+))*) => {$(
        impl<$($T: Deserialize),+> Deserialize for ($($T,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                let a = v.as_array().ok_or_else(|| format!(
                    "expected {}-tuple array, found {v:?}", $len
                ))?;
                if a.len() != $len {
                    return Err(format!("expected {} elements, found {}", $len, a.len()));
                }
                Ok(($($T::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("x".into(), Value::Int(3)),
            ("y".into(), Value::Array(vec![Value::Float(1.5), Value::Str("s".into())])),
        ]);
        assert_eq!(v["x"].as_u64(), Some(3));
        assert_eq!(v["y"][0].as_f64(), Some(1.5));
        assert_eq!(v["y"][1].as_str(), Some("s"));
        assert!(v["missing"].is_null());
        assert!(v["y"][9].is_null());
    }

    #[test]
    fn tuple_and_vec_round_trip() {
        let orig: Vec<(String, f64)> = vec![("a".into(), 1.0), ("b".into(), -2.5)];
        let v = orig.to_value();
        let back: Vec<(String, f64)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(orig, back);
    }
}
