//! Cross-crate integration: trace-driven replay determinism and the
//! closed-loop load generator.

use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{Kernel, KernelConfig, Op};
use simkern::{SimDuration, SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{
    spawn_pool, spawn_trace_driver, CtxAlloc, RequestTrace, RunStats,
};

fn run_trace(trace: RequestTrace, seed: u64) -> Vec<(u64, u64)> {
    let mut kernel = Kernel::new(
        Machine::new(MachineSpec::sandybridge(), seed),
        KernelConfig::default(),
    );
    let stats = Rc::new(RefCell::new(RunStats::new()));
    let inboxes = spawn_pool(&mut kernel, 8, &stats, None, |_w| {
        Box::new(|label, _pc| {
            vec![Op::Compute {
                cycles: 2e6 * (label as f64 + 1.0),
                profile: ActivityProfile::cache_heavy(),
            }]
        })
    });
    spawn_trace_driver(
        &mut kernel,
        trace,
        inboxes,
        Rc::clone(&stats),
        None,
        CtxAlloc::new(1),
    );
    kernel.run_until(SimTime::from_secs(2));
    let stats = stats.borrow();
    stats
        .completions()
        .iter()
        .map(|c| (c.ctx.0, c.finished.as_nanos()))
        .collect()
}

#[test]
fn trace_replay_is_bit_for_bit_deterministic() {
    let mut rng = SimRng::new(5);
    let trace = RequestTrace::synthesize(
        300.0,
        SimDuration::from_secs(1),
        &mut rng,
        |rng| rng.next_below(3) as u32,
    );
    let a = run_trace(trace.clone(), 42);
    let b = run_trace(trace, 42);
    assert_eq!(a, b, "same trace + same seed must replay identically");
    assert!(!a.is_empty());
}

#[test]
fn same_trace_different_machine_state_still_serves_everything() {
    let mut rng = SimRng::new(6);
    let trace = RequestTrace::synthesize(
        200.0,
        SimDuration::from_secs(1),
        &mut rng,
        |_| 1,
    );
    let n = trace.len();
    // A different hardware seed only changes meter noise, not scheduling.
    let a = run_trace(trace.clone(), 1);
    let b = run_trace(trace, 2);
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    assert_eq!(a, b, "meter noise must not affect execution");
}

#[test]
fn closed_loop_holds_concurrency_and_saturates() {
    use workloads::{calibrate_machine, run_app, LoadLevel, RunConfig, WorkloadKind};
    let spec = MachineSpec::sandybridge();
    let cal = calibrate_machine(&spec, 42);
    let mut cfg = RunConfig::new(spec);
    cfg.closed_loop = Some(8);
    cfg.load = LoadLevel::Peak; // rate ignored in closed-loop mode
    cfg.duration = SimDuration::from_secs(3);
    let outcome = run_app(WorkloadKind::RsaCrypto, &cfg, &cal);
    let stats = outcome.stats.borrow();
    // With 8 slots on 4 cores and CPU-bound requests, the machine should
    // be almost fully busy.
    assert!(
        outcome.mean_utilization() > 0.9,
        "closed loop should saturate: util {:.2}",
        outcome.mean_utilization()
    );
    // In-flight never exceeds the concurrency limit.
    let issued = stats.issued();
    let completed = stats.completions().len() as u64;
    assert!(issued - completed <= 8, "in flight {}", issued - completed);
    assert!(completed > 1000, "completed {completed}");
}

#[test]
fn captured_trace_replays_a_live_run() {
    use workloads::{calibrate_machine, run_app, LoadLevel, RunConfig, WorkloadKind};
    let spec = MachineSpec::sandybridge();
    let cal = calibrate_machine(&spec, 42);
    let mut cfg = RunConfig::new(spec);
    cfg.load = LoadLevel::Half;
    cfg.duration = SimDuration::from_secs(2);
    let live = run_app(WorkloadKind::RsaCrypto, &cfg, &cal);
    let trace = RequestTrace::from_run(&live.stats.borrow());
    assert!(trace.len() > 100);
    // Round-trip through the JSON-lines format, then replay.
    let text = trace.to_jsonl();
    let restored = RequestTrace::from_jsonl(&text).expect("parse");
    let completions = run_trace(restored, 42);
    assert_eq!(completions.len(), trace.len());
}
