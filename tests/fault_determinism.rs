//! Fault-injection determinism: the same seed and fault configuration
//! must reproduce the exact same run — byte-identical fault schedules
//! and bit-identical attributed energies — no matter how often it is
//! repeated. This is what makes robustness sweeps debuggable: any
//! faulty run can be replayed exactly from its two integers.

use hwsim::FaultConfig;
use proptest::prelude::*;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, RunOutcome, WorkloadKind};

fn faulty_run(seed: u64, faults: &FaultConfig) -> RunOutcome {
    let spec = hwsim::MachineSpec::sandybridge();
    let cal = workloads::calibrate_machine(&spec, 42);
    let mut cfg = RunConfig::new(spec);
    cfg.seed = seed;
    cfg.approach = power_containers::Approach::Recalibrated;
    cfg.load = LoadLevel::Half;
    cfg.duration = SimDuration::from_millis(1500);
    cfg.faults = faults.clone();
    run_app(WorkloadKind::RsaCrypto, &cfg, &cal)
}

/// Container energies as exact bit patterns, in record order.
fn energy_bits(outcome: &RunOutcome) -> Vec<(u64, u64)> {
    let f = outcome.facility.borrow();
    f.containers()
        .records()
        .iter()
        .map(|r| (r.ctx.0, (r.energy_j + r.io_energy_j).to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn same_seed_same_faults_same_run(
        seed in 1u64..1000,
        dropout in 0.0f64..0.1,
        glitch_hz in 0.0f64..4.0,
        tag_loss in 0.0f64..0.05,
    ) {
        let faults = FaultConfig {
            seed: seed ^ 0xF417,
            meter_dropout: dropout,
            meter_extra_lag: dropout / 2.0,
            counter_glitch_hz: glitch_hz,
            counter_wrap_hz: glitch_hz / 4.0,
            tag_loss,
            tag_corrupt: tag_loss,
            ..FaultConfig::none()
        };
        let a = faulty_run(seed, &faults);
        let b = faulty_run(seed, &faults);
        // Byte-identical fault schedules...
        prop_assert_eq!(
            a.kernel.machine().fault_log().schedule_digest(),
            b.kernel.machine().fault_log().schedule_digest()
        );
        prop_assert_eq!(a.fault_counts(), b.fault_counts());
        // ...and bit-identical end-of-run attributed energies.
        prop_assert_eq!(energy_bits(&a), energy_bits(&b));
        prop_assert_eq!(
            a.attributed_energy_j().to_bits(),
            b.attributed_energy_j().to_bits()
        );
        prop_assert_eq!(a.degrade_stats(), b.degrade_stats());
    }

    #[test]
    fn inert_fault_config_never_perturbs_the_run(seed in 1u64..1000) {
        // A zero-rate config must be indistinguishable from no config at
        // all: the injector draws nothing from any random stream.
        let clean = faulty_run(seed, &FaultConfig::none());
        let gated = faulty_run(seed, &FaultConfig { seed: 99, ..FaultConfig::none() });
        prop_assert_eq!(clean.kernel.machine().fault_log().total(), 0);
        prop_assert_eq!(energy_bits(&clean), energy_bits(&gated));
    }
}
