//! Smoke tests for the experiment harness: quick-scale versions of the
//! cheaper figures must run and satisfy the paper's qualitative claims.

use experiments::Scale;

#[test]
fn fig1_shows_maintenance_step_on_both_machines() {
    let record = experiments::fig01::run(Scale::Quick);
    let sb = &record.machines[0];
    assert_eq!(sb.machine, "sandybridge");
    assert!(
        sb.increments_w[0] > sb.increments_w[1] + 3.0,
        "SandyBridge first-core step missing: {:?}",
        sb.increments_w
    );
    let wc = &record.machines[1];
    assert!(
        wc.increments_w[1] > wc.increments_w[3] + 3.0,
        "Woodcrest second-socket step missing: {:?}",
        wc.increments_w
    );
}

#[test]
fn fig4_attributes_every_stage() {
    let record = experiments::fig04::run(Scale::Quick);
    assert_eq!(record.stages.len(), 5);
    for s in &record.stages {
        assert!(s.energy_j > 0.0, "stage {} got no energy", s.stage);
        assert!(s.power_w > 5.0, "stage {} power {:.1} W implausible", s.stage, s.power_w);
    }
    // httpd does the most work in this request.
    let httpd = &record.stages[0];
    assert!(httpd.stage.contains("httpd"));
    let max_energy = record
        .stages
        .iter()
        .map(|s| s.energy_j)
        .fold(0.0, f64::max);
    assert_eq!(httpd.energy_j, max_energy, "httpd should dominate");
    // Stage energies are close to (less than) the container total, which
    // also includes I/O attribution.
    let stage_sum: f64 = record.stages.iter().map(|s| s.energy_j).sum();
    assert!(
        stage_sum <= record.total_energy_j * 1.02,
        "stage sum {stage_sum} vs total {}",
        record.total_energy_j
    );
    assert!(stage_sum > record.total_energy_j * 0.7);
}

#[test]
fn overhead_is_sub_10_microseconds_per_op() {
    let record = experiments::overhead::run(Scale::Quick);
    // The paper measures 0.95 µs on 2011 hardware; allow generous slack
    // for debug builds and CI noise, but the op must stay cheap.
    assert!(
        record.maintenance_ns < 100_000.0,
        "maintenance op {} ns",
        record.maintenance_ns
    );
    assert!(record.container_bytes < 1024);
}
