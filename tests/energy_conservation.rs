//! End-to-end energy conservation across every experiment cell family.
//!
//! Attribution must account for (nearly) all measured active energy in
//! every cell of the fig05 grid (machine × workload × load), every
//! fault_sweep scenario (faults may *misattribute* energy between
//! requests, but the background container catches what falls out, so
//! the total must still balance), and every node of the smallest
//! scale_sweep cell (where requests hop across nodes and a cluster cap
//! conditions duty cycles).

mod common;

use common::assert_energy_conserved;
use experiments::{scale_sweep, Lab, Scale};
use hwsim::FaultConfig;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// Model error tolerance for clean runs (the paper's Fig. 8 errors are
/// single-digit percent; quick-scale runs are noisier).
const CLEAN_TOL: f64 = 0.20;
/// Tolerance with heavy fault injection riding on the measurement path.
const FAULT_TOL: f64 = 0.40;
/// Tolerance under a tight cluster power cap: conditioning pushes duty
/// cycles far below the calibration's full-duty operating point, where
/// the linear power model is least accurate (worst on the oldest
/// machines, which get throttled hardest).
const CAP_TOL: f64 = 0.35;

#[test]
fn fig05_cells_conserve_energy() {
    let mut lab = Lab::new();
    let mut tasks = Vec::new();
    for machine in ["woodcrest", "westmere", "sandybridge"] {
        let spec = lab.spec(machine);
        let cal = lab.calibration(machine);
        for kind in WorkloadKind::ALL {
            for load in [LoadLevel::Peak, LoadLevel::Half] {
                let spec = spec.clone();
                let cal = cal.clone();
                tasks.push(move || {
                    let mut cfg = RunConfig::new(spec);
                    cfg.load = load;
                    cfg.duration = SimDuration::from_secs(Scale::Quick.run_secs() / 2 + 2);
                    let outcome = run_app(kind, &cfg, &cal);
                    (
                        format!("fig05 {machine}/{}/{}", kind.name(), load.name()),
                        outcome.attributed_energy_j(),
                        outcome.measured_active_energy_j(),
                    )
                });
            }
        }
    }
    let cells = experiments::runner::run_parallel(experiments::runner::jobs(), tasks);
    for cell in cells {
        let (label, attributed, measured) = cell.expect("fig05 cell must not panic");
        assert_energy_conserved(&label, attributed, measured, CLEAN_TOL);
    }
}

#[test]
fn fig05_cells_conserve_energy_under_every_scheduler() {
    // The scheduler decides who runs when; attribution samples what ran.
    // Swapping the kernel's pick-next policy must not unbalance the
    // energy ledger on any workload.
    let mut lab = Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut tasks = Vec::new();
    for kind in experiments::sched_sweep::swept_kinds() {
        for workload in WorkloadKind::ALL {
            let (kind, spec, cal) = (kind.clone(), spec.clone(), cal.clone());
            tasks.push(move || {
                let mut cfg = RunConfig::new(spec);
                cfg.sched = kind.clone();
                cfg.load = LoadLevel::Peak;
                cfg.duration = SimDuration::from_secs(Scale::Quick.run_secs() / 2 + 2);
                let outcome = run_app(workload, &cfg, &cal);
                (
                    format!("fig05 sandybridge/{}/peak sched={}", workload.name(), kind.name()),
                    outcome.attributed_energy_j(),
                    outcome.measured_active_energy_j(),
                )
            });
        }
    }
    let cells = experiments::runner::run_parallel(experiments::runner::jobs(), tasks);
    for cell in cells {
        let (label, attributed, measured) = cell.expect("sched fig05 cell must not panic");
        assert_energy_conserved(&label, attributed, measured, CLEAN_TOL);
    }
}

#[test]
fn chaos_rung_conserves_energy_under_every_scheduler() {
    // The heaviest conservation test crossed with the scheduler axis: a
    // crash-bearing chaos rung where every node runs the swept
    // scheduler. Crashes may lose the journaled window, but the ledger
    // must still balance per node under any pick-next policy.
    let mut lab = Lab::new();
    let sc = experiments::chaos_sweep::SCENARIOS
        .iter()
        .find(|s| s.crash_hz > 0.0)
        .expect("a crash-bearing chaos scenario");
    for kind in experiments::sched_sweep::swept_kinds() {
        let mut cfg = experiments::chaos_sweep::cell_config(Scale::Quick, sc);
        cfg.sched = vec![kind.clone()];
        let cals = experiments::chaos_sweep::cell_calibrations(&mut lab, &cfg);
        let mut policies: Vec<Box<dyn cluster::DistributionPolicy>> = (0..cfg.tiers.len())
            .map(|_| Box::new(cluster::SimpleBalance::new()) as Box<dyn cluster::DistributionPolicy>)
            .collect();
        let outcome = cluster::run_pipeline(&mut policies, &cfg, &cals);
        assert!(outcome.crashes > 0, "chaos cell `{}` must crash", sc.name);
        assert!(outcome.completed > 0, "chaos cell `{}` must keep serving", sc.name);
        for (i, node) in outcome.per_node.iter().enumerate() {
            assert_energy_conserved(
                &format!(
                    "chaos_sweep {} sched={} node {i} ({}, tier {})",
                    sc.name,
                    kind.name(),
                    node.machine,
                    node.tier
                ),
                node.attributed_energy_j + node.lost_energy_j,
                node.active_energy_j,
                FAULT_TOL,
            );
        }
    }
}

#[test]
fn fault_sweep_cells_conserve_energy() {
    let mut lab = Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let dropout = |rate: f64| FaultConfig {
        seed: 0xFA17,
        meter_dropout: rate,
        ..FaultConfig::none()
    };
    let mut points: Vec<(String, FaultConfig)> =
        vec![("clean".into(), FaultConfig::none())];
    for rate in [0.01, 0.02, 0.05] {
        points.push((format!("meter dropout {rate}"), dropout(rate)));
    }
    points.push((
        "dropout + glitches + tag faults".into(),
        FaultConfig {
            seed: 0xFA17,
            meter_dropout: 0.05,
            meter_extra_lag: 0.05,
            counter_glitch_hz: 1.0,
            counter_wrap_hz: 0.5,
            tag_loss: 0.01,
            tag_corrupt: 0.01,
            ..FaultConfig::none()
        },
    ));
    for (scenario, faults) in points {
        let clean = !faults.is_active();
        let mut cfg = RunConfig::new(spec.clone());
        cfg.approach = power_containers::Approach::Recalibrated;
        cfg.load = LoadLevel::Half;
        cfg.duration = SimDuration::from_secs(Scale::Quick.run_secs());
        cfg.faults = faults;
        let outcome = run_app(WorkloadKind::RsaCrypto, &cfg, &cal);
        assert_energy_conserved(
            &format!("fault_sweep {scenario}"),
            outcome.attributed_energy_j(),
            outcome.measured_active_energy_j(),
            if clean { CLEAN_TOL } else { FAULT_TOL },
        );
    }
}

#[test]
fn scale_sweep_cell_conserves_energy_on_every_node() {
    // The smallest sweep cell, capped: requests hop across three tiers
    // and every node conditions against its share of the cluster cap —
    // attribution must still balance per node.
    let mut lab = Lab::new();
    for cap in [None, Some(8.0 * 20.0)] {
        let cfg = scale_sweep::cell_config(Scale::Quick, 4, cap);
        let cals = scale_sweep::cell_calibrations(&mut lab, &cfg);
        let mut policies: Vec<Box<dyn cluster::DistributionPolicy>> = (0..cfg.tiers.len())
            .map(|_| Box::new(cluster::SimpleBalance::new()) as Box<dyn cluster::DistributionPolicy>)
            .collect();
        let outcome = cluster::run_pipeline(&mut policies, &cfg, &cals);
        assert!(outcome.completed > 0, "cell must serve requests");
        for (i, node) in outcome.per_node.iter().enumerate() {
            assert_energy_conserved(
                &format!(
                    "scale_sweep 4-node cap={cap:?} node {i} ({}, tier {})",
                    node.machine, node.tier
                ),
                node.attributed_energy_j,
                node.active_energy_j,
                if cap.is_some() { CAP_TOL } else { CLEAN_TOL },
            );
        }
    }
}

#[test]
fn megafleet_cell_conserves_energy_on_every_node_at_any_shard_count() {
    // The smallest megafleet cell, advanced serially and with the node
    // set sharded across 4 worker threads: per-node attribution must
    // balance identically either way (the engine's shard barriers move
    // whole nodes, never samples), and requests must conserve exactly.
    let mut lab = Lab::new();
    let mut serial_energy: Option<Vec<f64>> = None;
    for shards in [1usize, 4] {
        let mut cfg = experiments::megafleet::cell_config(48, 10_000);
        cfg.shards = shards;
        let cals = experiments::megafleet::cell_calibrations(&mut lab, &cfg);
        let outcome = cluster::run_cluster(&mut cluster::SimpleBalance::new(), &cfg, &cals);
        experiments::megafleet::assert_cell_conserved(
            &format!("megafleet 48-node shards={shards}"),
            &outcome,
        );
        for (i, node) in outcome.per_node.iter().enumerate() {
            assert_energy_conserved(
                &format!(
                    "megafleet 48-node shards={shards} node {i} ({}, tier {})",
                    node.machine, node.tier
                ),
                node.attributed_energy_j,
                node.active_energy_j,
                CLEAN_TOL,
            );
        }
        let energies: Vec<f64> = outcome.per_node.iter().map(|n| n.attributed_energy_j).collect();
        match &serial_energy {
            None => serial_energy = Some(energies),
            Some(serial) => assert_eq!(
                serial, &energies,
                "per-node attributed energy must be bit-identical across shard counts"
            ),
        }
    }
}

#[test]
fn chaos_sweep_cells_conserve_energy_modulo_loss_windows() {
    // Crash-bearing chaos cells: each node's attributed energy plus the
    // crash-journaled loss windows must cover its measured active
    // energy — crashes may *lose* attribution (the window since the
    // last checkpoint), but only the journaled amount.
    let mut lab = Lab::new();
    for sc in experiments::chaos_sweep::SCENARIOS {
        if sc.crash_hz == 0.0 {
            continue;
        }
        let cfg = experiments::chaos_sweep::cell_config(Scale::Quick, sc);
        let cals = experiments::chaos_sweep::cell_calibrations(&mut lab, &cfg);
        let mut policies: Vec<Box<dyn cluster::DistributionPolicy>> = (0..cfg.tiers.len())
            .map(|_| Box::new(cluster::SimpleBalance::new()) as Box<dyn cluster::DistributionPolicy>)
            .collect();
        let outcome = cluster::run_pipeline(&mut policies, &cfg, &cals);
        assert!(outcome.crashes > 0, "chaos cell `{}` must crash", sc.name);
        for (i, node) in outcome.per_node.iter().enumerate() {
            assert_energy_conserved(
                &format!("chaos_sweep {} node {i} ({}, tier {})", sc.name, node.machine, node.tier),
                node.attributed_energy_j + node.lost_energy_j,
                node.active_energy_j,
                FAULT_TOL,
            );
        }
    }
}
