//! Cross-crate integration: the facility accounting pipeline from
//! hardware simulation through containers.

use hwsim::{ActivityProfile, CoreId, Machine, MachineSpec};
use ossim::{Kernel, KernelConfig, Op, ScriptProgram};
use power_containers::{
    Approach, CalibrationSample, CalibrationSet, FacilityConfig, MetricVector, ModelKind,
    PowerContainerFacility,
};
use simkern::SimTime;

/// A small synthetic calibration good enough for integration checks.
fn quick_model() -> power_containers::PowerModel {
    let mut set = CalibrationSet::new(26.1);
    // Mirror the SandyBridge ground truth so attribution is meaningful.
    let truth = [8.3, 3.1 * 4.0 / 4.0, 1.5, 3.5, 2.1, 5.6, 1.7, 5.8];
    for i in 0..64 {
        let u = (i % 4 + 1) as f64 / 4.0;
        let f = i / 4 % 8;
        let mut a = [0.0; 8];
        a[0] = u;
        if f < 8 {
            a[f] = u.max(a[f]);
        }
        a[5] = 1.0;
        let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
        set.push(CalibrationSample {
            metrics: MetricVector::from_slice(&a),
            active_watts: watts,
        });
    }
    set.fit(ModelKind::WithChipShare).expect("fit")
}

fn setup() -> (Kernel, std::rc::Rc<std::cell::RefCell<power_containers::FacilityState>>) {
    let spec = MachineSpec::sandybridge();
    let facility =
        PowerContainerFacility::new(quick_model(), None, &spec, FacilityConfig::default());
    let state = facility.state();
    let mut kernel = Kernel::new(Machine::new(spec, 99), KernelConfig::default());
    kernel.install_hooks(Box::new(facility));
    (kernel, state)
}

#[test]
fn attributed_energy_tracks_true_energy() {
    let (mut kernel, state) = setup();
    for i in 0..4 {
        let ctx = kernel.alloc_context();
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles: 31.0e6 * (i + 1) as f64,
                profile: ActivityProfile::cache_heavy(),
            }])),
            Some(ctx),
        );
    }
    kernel.run_until(SimTime::from_millis(100));
    let measured = kernel.machine().true_active_energy_j();
    let s = state.borrow();
    let attributed = s.containers().total_energy_with_background_j();
    let err = (attributed - measured).abs() / measured;
    assert!(
        err < 0.15,
        "attributed {attributed:.3} J vs measured {measured:.3} J (err {err:.3})"
    );
    // All four containers were retained with energy.
    assert_eq!(s.containers().records().len(), 4);
    for r in s.containers().records() {
        assert!(r.energy_j > 0.0);
    }
}

#[test]
fn longer_requests_cost_proportionally_more_energy() {
    let (mut kernel, state) = setup();
    let short = kernel.alloc_context();
    let long = kernel.alloc_context();
    for (ctx, cycles) in [(short, 15.5e6), (long, 62.0e6)] {
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles,
                profile: ActivityProfile::high_ipc(),
            }])),
            Some(ctx),
        );
    }
    kernel.run_until(SimTime::from_millis(100));
    let s = state.borrow();
    let energy_of = |ctx| {
        s.containers()
            .records()
            .iter()
            .find(|r| r.ctx == ctx)
            .map(|r| r.energy_j)
            .expect("record")
    };
    let ratio = energy_of(long) / energy_of(short);
    // Slightly above 4x is expected: once the short request finishes, the
    // long one absorbs the whole chip-maintenance share (Eq. 3).
    assert!(
        (3.0..6.0).contains(&ratio),
        "4x work should cost ~4-5x energy, got {ratio:.2}x"
    );
}

#[test]
fn memory_intensive_requests_draw_more_power_than_spinners() {
    let (mut kernel, state) = setup();
    let spin = kernel.alloc_context();
    let churn = kernel.alloc_context();
    for (ctx, profile) in [
        (spin, ActivityProfile::cpu_spin()),
        (churn, ActivityProfile::stress()),
    ] {
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute { cycles: 31.0e6, profile }])),
            Some(ctx),
        );
    }
    kernel.run_until(SimTime::from_millis(100));
    let s = state.borrow();
    let power_of = |ctx| {
        s.containers()
            .records()
            .iter()
            .find(|r| r.ctx == ctx)
            .map(|r| r.mean_power_w)
            .expect("record")
    };
    assert!(
        power_of(churn) > power_of(spin) * 1.3,
        "stress {:.1} W vs spin {:.1} W",
        power_of(churn),
        power_of(spin)
    );
}

#[test]
fn duty_throttled_request_draws_less_power() {
    let (mut kernel, state) = setup();
    kernel
        .machine_mut()
        .set_duty_cycle(CoreId(0), hwsim::DutyCycle::new(4).expect("valid"));
    // Single-core machine view: force the task onto core 0 by having no
    // competitors and relying on spread placement picking core 0 first.
    let ctx = kernel.alloc_context();
    kernel.spawn(
        Box::new(ScriptProgram::new(vec![Op::Compute {
            cycles: 15.5e6,
            profile: ActivityProfile::stress(),
        }])),
        Some(ctx),
    );
    kernel.run_until(SimTime::from_millis(100));
    let s = state.borrow();
    let r = &s.containers().records()[0];
    // Facility saw the throttled duty.
    assert!(r.mean_duty < 0.6, "mean duty {}", r.mean_duty);
    // Unthrottled estimate recovers the full-speed power.
    assert!(
        r.unthrottled_power_w > r.mean_power_w * 1.5,
        "unthrottled {:.1} vs throttled {:.1}",
        r.unthrottled_power_w,
        r.mean_power_w
    );
}

#[test]
fn background_work_lands_in_background_container() {
    let (mut kernel, state) = setup();
    kernel.spawn(
        Box::new(ScriptProgram::new(vec![Op::Compute {
            cycles: 31.0e6,
            profile: ActivityProfile::high_ipc(),
        }])),
        None, // no request context
    );
    kernel.run_until(SimTime::from_millis(50));
    let s = state.borrow();
    assert!(s.containers().background().energy_j() > 0.0);
    assert_eq!(s.containers().total_request_energy_j(), 0.0);
}

#[test]
fn recalibrated_facility_requires_calibration_set() {
    let spec = MachineSpec::sandybridge();
    let result = std::panic::catch_unwind(|| {
        PowerContainerFacility::new(
            quick_model(),
            None,
            &spec,
            FacilityConfig {
                approach: Approach::Recalibrated,
                meter: Some("on-chip"),
                ..FacilityConfig::default()
            },
        )
    });
    assert!(result.is_err(), "missing calibration set must be rejected");
}
