//! Shared helpers for the integration-test tree.

/// Asserts the end-to-end energy-conservation invariant: the energy the
/// facility *attributed* (requests + background, CPU + I/O) must match
/// the machine's *measured* active energy within `tol` relative error.
/// This is the paper's Fig. 8 validation, promoted to an invariant every
/// experiment cell must satisfy — attribution may split energy wrongly
/// under faults, but it must never create or destroy it beyond model
/// error.
pub fn assert_energy_conserved(label: &str, attributed_j: f64, measured_j: f64, tol: f64) {
    assert!(
        measured_j > 0.0,
        "{label}: measured active energy must be positive, got {measured_j}"
    );
    assert!(
        attributed_j > 0.0,
        "{label}: attributed energy must be positive, got {attributed_j}"
    );
    let err = analysis::stats::relative_error(attributed_j, measured_j);
    assert!(
        err <= tol,
        "{label}: energy not conserved — attributed {attributed_j:.2} J vs measured \
         {measured_j:.2} J ({:.1}% > {:.1}% tolerance)",
        err * 100.0,
        tol * 100.0
    );
}
