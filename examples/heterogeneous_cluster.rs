//! Heterogeneity-aware request distribution (paper §4.4, Fig. 14):
//! per-request energy profiles from power containers steer requests to
//! the machine where they are relatively most energy-efficient.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use cluster::{
    energy_affinity, run_cluster, ClusterConfig, DistributionPolicy,
    MachineHeterogeneityAware, SimpleBalance, WorkloadHeterogeneityAware,
};
use simkern::SimDuration;
use workloads::{calibrate_machine, WorkloadKind};

fn main() {
    let cfg = {
        let mut c = ClusterConfig::paper_setup();
        c.duration = SimDuration::from_secs(5);
        c
    };
    println!("calibrating both machines ...");
    let cals: Vec<_> = cfg.nodes.iter().map(|s| calibrate_machine(s, 42)).collect();

    println!("profiling cross-machine energy affinity (Fig. 13) ...");
    let profile = energy_affinity(
        &[WorkloadKind::GaeVosao, WorkloadKind::RsaCrypto],
        (&cfg.nodes[0], &cals[0]),
        (&cfg.nodes[1], &cals[1]),
        7,
        SimDuration::from_secs(4),
    );
    for row in &profile {
        println!(
            "  {:<12} {:.2} (SandyBridge {:.3} J vs Woodcrest {:.3} J per request)",
            row.kind.name(),
            row.ratio(),
            row.new_machine_j,
            row.old_machine_j
        );
    }
    let ratios: Vec<_> = profile.iter().map(|r| (r.kind, r.ratio())).collect();

    let mut policies: Vec<Box<dyn DistributionPolicy>> = vec![
        Box::new(SimpleBalance::new()),
        Box::new(MachineHeterogeneityAware::new()),
        Box::new(WorkloadHeterogeneityAware::new(ratios)),
    ];
    println!("\nrunning the 50/50 GAE-Vosao + RSA-crypto mix under three policies:");
    let mut totals = Vec::new();
    for p in &mut policies {
        let outcome = run_cluster(p.as_mut(), &cfg, &cals);
        println!(
            "  {:<30} total {:>6.1} W  (SB {:>5.1} W @ {:.0}% util, WC {:>5.1} W @ {:.0}% util)",
            outcome.policy,
            outcome.total_energy_rate_w(),
            outcome.per_node[0].energy_rate_w,
            outcome.per_node[0].utilization * 100.0,
            outcome.per_node[1].energy_rate_w,
            outcome.per_node[1].utilization * 100.0,
        );
        totals.push(outcome.total_energy_rate_w());
    }
    println!(
        "\nworkload-aware distribution saves {:.0}% vs simple balance and {:.0}% vs \
         machine-aware — the Fig. 14 result.",
        (1.0 - totals[2] / totals[0]) * 100.0,
        (1.0 - totals[2] / totals[1]) * 100.0
    );
}
