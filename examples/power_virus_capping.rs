//! Fair power conditioning (paper §3.4, Figs. 11–12): power viruses are
//! injected into a Google App Engine workload; container-based
//! conditioning throttles *only* the viruses while normal requests keep
//! running at nearly full speed.
//!
//! ```sh
//! cargo run --release --example power_virus_capping
//! ```

fn main() {
    let data = experiments::fig11::conditioning_data(experiments::Scale::Quick);
    println!("system active-power target: {:.1} W", data.target_w);
    println!("viruses arrive at t = {}", data.virus_start);
    println!(
        "\nwithout conditioning: peak {:.1} W after viruses",
        data.baseline.0.peak_after_w
    );
    println!(
        "with conditioning:    peak {:.1} W ({}% of buckets above target)",
        data.conditioned.0.peak_after_w,
        (data.conditioned.0.frac_above_target * 100.0).round()
    );

    // Who paid for the cap? Only the viruses.
    let f = data.conditioned.1.facility.borrow();
    let mut virus = (0usize, 0.0f64);
    let mut normal = (0usize, 0.0f64);
    for r in f.containers().records() {
        if r.busy_seconds <= 0.0 || r.label.is_none() {
            continue;
        }
        if r.label == Some(workloads::POWER_VIRUS_LABEL) {
            virus.0 += 1;
            virus.1 += r.mean_duty;
        } else {
            normal.0 += 1;
            normal.1 += r.mean_duty;
        }
    }
    println!(
        "\nmean applied duty cycle: normal requests {:.2}, power viruses {:.2}",
        normal.1 / normal.0.max(1) as f64,
        virus.1 / virus.0.max(1) as f64
    );
    println!(
        "a full-machine cap would have slowed every request equally; the \
         containers throttled only the {} viruses.",
        virus.0
    );
}
