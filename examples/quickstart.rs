//! Quickstart: account for the power and energy of tagged requests on a
//! simulated multicore server.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{Kernel, KernelConfig, Op, ScriptProgram};
use power_containers::{Approach, FacilityConfig, PowerContainerFacility};
use simkern::SimTime;
use workloads::calibrate_machine;

fn main() {
    // 1. Pick a machine model and calibrate its power model offline
    //    (§4.1: microbenchmarks + least-squares fit).
    let spec = MachineSpec::sandybridge();
    println!("calibrating {} ...", spec.name);
    let cal = calibrate_machine(&spec, 42);
    println!("calibrated model: {}", cal.model_chipshare);

    // 2. Install the power-container facility into a simulated kernel.
    let facility = PowerContainerFacility::new(
        cal.model_for(Approach::ChipShare),
        None,
        &spec,
        FacilityConfig::default(),
    );
    let state = facility.state();
    let mut kernel = Kernel::new(Machine::new(spec, 7), KernelConfig::default());
    kernel.install_hooks(Box::new(facility));

    // 3. Run three concurrent requests with different activity mixes.
    let mixes = [
        ("integer-crypto", ActivityProfile::high_ipc()),
        ("search-query", ActivityProfile::cache_heavy()),
        ("memory-churn", ActivityProfile::stress()),
    ];
    let mut ctxs = Vec::new();
    for (name, profile) in mixes {
        let ctx = kernel.alloc_context();
        ctxs.push((name, ctx));
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute { cycles: 31.0e6, profile }])),
            Some(ctx),
        );
    }
    kernel.run_until(SimTime::from_millis(50));

    // 4. Read each request's power container.
    println!("\nper-request accounting (10 ms of work each):");
    let state = state.borrow();
    for record in state.containers().records() {
        let (name, _) = ctxs
            .iter()
            .find(|(_, c)| *c == record.ctx)
            .expect("known context");
        println!(
            "  {name:>14}: {:>6.1} mJ over {:>5.2} ms  (mean power {:.1} W)",
            record.energy_j * 1e3,
            record.busy_seconds * 1e3,
            record.mean_power_w
        );
    }
    println!(
        "\nsame CPU time, different energy: the memory-churning request \
         draws far more power than the integer loop — exactly what \
         per-request containers make visible."
    );
}
