//! An operator's live power dashboard: replay a captured request trace
//! and poll the facility's power report to watch per-request consumption
//! — the "pinpoint the sources of power spikes" use case from the
//! paper's introduction.
//!
//! ```sh
//! cargo run --release --example request_monitor
//! ```

use simkern::{SimDuration, SimTime};
use workloads::{calibrate_machine, prepare_app, LoadLevel, RequestTrace, RunConfig, WorkloadKind};

fn main() {
    let spec = hwsim::MachineSpec::sandybridge();
    println!("calibrating {} ...", spec.name);
    let cal = calibrate_machine(&spec, 42);

    // First, capture a trace from a live GAE-Hybrid run (Vosao requests
    // with occasional power viruses).
    let mut cfg = RunConfig::new(spec.clone());
    cfg.load = LoadLevel::Peak;
    cfg.duration = SimDuration::from_secs(4);
    let live = workloads::run_app(WorkloadKind::GaeHybrid, &cfg, &cal);
    let trace = RequestTrace::from_run(&live.stats.borrow());
    println!(
        "captured {} arrivals over {:.1} s; replaying with live monitoring\n",
        trace.len(),
        trace.span().as_secs_f64()
    );

    // Re-run the identical request stream (same seed → same arrivals as
    // the captured trace; `RequestTrace` can also replay it onto other
    // machines or approaches), this time stepping the kernel ourselves
    // and polling the live report twice a simulated second.
    let mut replay_cfg = RunConfig::new(spec);
    replay_cfg.load = LoadLevel::Peak;
    replay_cfg.duration = SimDuration::from_secs(4);
    let mut prepared = prepare_app(
        std::rc::Rc::from(WorkloadKind::GaeHybrid.app()),
        &replay_cfg,
        &cal,
    );

    println!("{:<8} {:>10} {:>12}  top consumers (ctx: W)", "t", "total(W)", "background(W)");
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(4) {
        t += SimDuration::from_millis(500);
        prepared.kernel.run_until(t);
        let f = prepared.facility.borrow();
        let report = f.power_report();
        let top: Vec<String> = report
            .top(3)
            .iter()
            .map(|l| format!("{}:{:.1}", l.ctx, l.recent_power_w))
            .collect();
        let anomalies = report.anomalies(1.18);
        print!(
            "{:<8} {:>10.1} {:>12.1}  {}",
            format!("{t}"),
            report.total_request_w,
            report.background_w,
            top.join("  ")
        );
        if !anomalies.is_empty() {
            print!("   << {} power anomaly(ies) flagged", anomalies.len());
        }
        println!();
    }
    let outcome = prepared.finish();
    let f = outcome.facility.borrow();
    println!("\nper-request-class energy rollup (client accounting):");
    for e in f.containers().energy_by_label() {
        let class = match e.label {
            100 => "power virus",
            1 => "Vosao write",
            _ => "Vosao read",
        };
        println!(
            "  label {:>3} ({:<11}): {:>5} requests, {:>7.1} mJ/request",
            e.label,
            class,
            e.requests,
            e.mean_energy_j() * 1e3
        );
    }
}
