//! Trace one multi-stage WeBWorK request through the server (paper
//! Fig. 4): Apache/PHP → MySQL → shell → latex → dvipng, with power and
//! energy attributed to each stage while the request context rides
//! socket messages and forks.
//!
//! ```sh
//! cargo run --example webwork_trace
//! ```

fn main() {
    let record = experiments::fig04::run(experiments::Scale::Quick);
    println!("\nstage summary (as in the paper's Fig. 4 annotations):");
    for s in &record.stages {
        println!(
            "  {:<20} {:>5.1} W  {:>7.2} mJ  {:>6.2} ms",
            s.stage,
            s.power_w,
            s.energy_j * 1e3,
            s.busy_ms
        );
    }
    println!(
        "\nrequest total {:.1} mJ, response time {:.1} ms — every stage was \
         attributed to one container without touching application code.",
        record.total_energy_j * 1e3,
        record.response_ms
    );
}
