//! Meta-crate re-exporting the Power Containers reproduction workspace.
//!
//! See [`power_containers`] for the paper's primary contribution and the
//! README for an architecture overview.

pub use analysis;
pub use cluster;
pub use experiments;
pub use hwsim;
pub use ossim;
pub use power_containers;
pub use simkern;
pub use workloads;
